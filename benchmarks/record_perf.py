"""Record the PR 7 stage-store win: wall-clock and per-stage hit rates
for a no-store pass (per-stage dedup disabled), a cold pass (fresh
stage store — in-run dedup only) and a warm pass (store primed by the
cold pass) on the fig6, streaming and fig6-steady-ablation scenarios,
on both simulate engines.

Each trial builds a fresh in-memory ``StageStore``, runs the scenario
with the store disabled (the pre-PR baseline), then cold against the
empty store — threshold sweeps frequently produce byte-identical
schedules, so duplicate cells skip the simulate stage *within* the
run — and finally warm against the primed store, the repeat-sweep /
cross-scenario case where every schedule and simulation is adopted
instead of recomputed.  Results must be identical across engines,
passes and store settings (bars for figure scenarios, per-cell
cycle/stall/memory digests for grid scenarios); timings, per-stage
second splits and per-stage hit/miss/store counters go to
``benchmarks/BENCH_pr7.json``.

The acceptance bar of PR 7: on fig6 the cold pass shows non-zero
simulate-store hits (duplicate schedules skip simulate entirely) and
the warm pass reuses every schedule, with bit-identical figures and a
measurable warm-vs-nostore wall-clock win.  The PR 6 recording
(``benchmarks/BENCH_pr6.json``, same container/protocol) is quoted
alongside.

Usage::

    PYTHONPATH=src python benchmarks/record_perf.py [--out PATH]
        [--skip-fig6] [--repeats N]

Single-job on purpose: the point is the per-cell dedup, not process
fan-out (which composes with it).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.engine import StageStore
from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import get_scenario, run_scenario

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_pr7.json"
PR6_RECORDING = pathlib.Path(__file__).parent / "BENCH_pr6.json"

#: The engines under comparison; both are bit-identical lockstep models.
SIM_ENGINES = ("scalar", "vectorized")
#: Store passes: "nostore" disables per-stage dedup (the pre-PR
#: baseline), "cold" primes a fresh store, "warm" replays from it.
PASSES = ("nostore", "cold", "warm")


def _digest(outcome):
    """Engine- and store-independent fingerprint of a scenario's results."""
    if outcome.figure is not None:
        return [
            (bar.group, bar.scheduler, bar.threshold,
             bar.norm_compute, bar.norm_stall)
            for bar in outcome.figure.bars
        ]
    return [
        (result.kernel, result.machine, result.scheduler, result.threshold,
         result.total_cycles, result.stall_cycles,
         result.simulation.memory.as_dict())
        for result in outcome.results
    ]


def _run_pass(scenario, sim: str, store: StageStore | None) -> dict:
    grid = ExperimentGrid(
        locality=scenario.locality.build(),
        cache=False,
        stage_store=store is not None,
    )
    if store is not None:
        grid.stage_store = store
        before = store.telemetry()
    start = time.perf_counter()
    outcome = run_scenario(scenario, grid=grid, steady="auto", sim=sim)
    seconds = time.perf_counter() - start
    sample = {
        "seconds": round(seconds, 3),
        "cells_requested": grid.stats.requested,
        "cells_computed": grid.stats.computed,
        "stage_seconds": {
            stage: round(value, 3)
            for stage, value in grid.stats.stage_seconds.items()
        },
        "digest": _digest(outcome),
    }
    if store is not None:
        after = store.telemetry()
        sample["stage_store"] = {
            stage: {
                counter: after[stage][counter] - before[stage][counter]
                for counter in ("hits", "misses", "stores")
            }
            for stage in after
        }
        sample["stage_hit_analyze"] = sample["stage_store"]["analyze"]["hits"]
        sample["stage_hit_schedule"] = (
            sample["stage_store"]["schedule"]["hits"]
        )
        sample["stage_hit_simulate"] = (
            sample["stage_store"]["simulate"]["hits"]
        )
    return sample


def _measure(scenario_name: str, sim: str, repeats: int) -> dict:
    """Best nostore/cold/warm triple over ``repeats`` trials (fresh
    store each)."""
    scenario = get_scenario(scenario_name)
    best = None
    for _ in range(repeats):
        store = StageStore()  # in-memory only: no disk layer
        trial = {
            "nostore": _run_pass(scenario, sim, None),
            "cold": _run_pass(scenario, sim, store),
            "warm": _run_pass(scenario, sim, store),
        }
        if best is None or (
            trial["warm"]["seconds"] < best["warm"]["seconds"]
        ):
            best = trial
    return best


def _pr6_baseline() -> dict:
    """Quote the PR 6 recording (same protocol) when it is available."""
    if not PR6_RECORDING.exists():
        return {"note": "BENCH_pr6.json not found"}
    data = json.loads(PR6_RECORDING.read_text())
    quoted = {}
    for name, entry in data.get("scenarios", {}).items():
        runs = entry.get("sims", {}).get("vectorized", {})
        quoted[name] = {
            pass_name: {
                "seconds": run.get("seconds"),
                "simulate_stage_seconds": run.get("stage_seconds", {}).get(
                    "simulate"
                ),
            }
            for pass_name, run in runs.items()
        }
    return quoted


def _speedup(before, after):
    # 0.0 denominators mean "unmeasurably fast" — no ratio to quote.
    if before is None or not after:
        return None
    return round(before / after, 2)


def record(scenarios, out: pathlib.Path, repeats: int) -> dict:
    pr6 = _pr6_baseline()
    results = {}
    for name in scenarios:
        runs = {}
        for sim in SIM_ENGINES:
            print(f"[{name}] sim={sim} ...", flush=True)
            runs[sim] = _measure(name, sim, repeats)
            for pass_name in PASSES:
                sample = runs[sim][pass_name]
                hits = sample.get("stage_store", {})
                line = (
                    f"[{name}]   {pass_name}: {sample['seconds']}s"
                )
                if hits:
                    line += (
                        f", stage hits sched "
                        f"{hits['schedule']['hits']}/"
                        f"{hits['schedule']['hits'] + hits['schedule']['misses']}"
                        f" sim {hits['simulate']['hits']}/"
                        f"{hits['simulate']['hits'] + hits['simulate']['misses']}"
                    )
                print(line, flush=True)
        reference = runs["scalar"]["nostore"]["digest"]
        for sim, trial in runs.items():
            for pass_name, sample in trial.items():
                if sample["digest"] != reference:
                    raise AssertionError(
                        f"{name}: sim={sim} {pass_name} pass diverges "
                        f"from the no-store scalar reference"
                    )
                del sample["digest"]
        vec = runs["vectorized"]
        pr6_entry = pr6.get(name) or {}
        results[name] = {
            "sims": runs,
            #: The PR's headline numbers: per-stage dedup within one run
            #: (cold vs the disabled-store baseline) and across runs
            #: (warm, the repeat-sweep / cross-scenario case).
            "speedup_cold_vs_nostore": _speedup(
                vec["nostore"]["seconds"], vec["cold"]["seconds"]
            ),
            "speedup_warm_vs_nostore": _speedup(
                vec["nostore"]["seconds"], vec["warm"]["seconds"]
            ),
            "speedup_warm_vs_cold": _speedup(
                vec["cold"]["seconds"], vec["warm"]["seconds"]
            ),
            #: Cross-PR: PR 6's warm pass (warm-state reuse only) vs
            #: this PR's warm pass (schedules and simulations adopted).
            "speedup_warm_vs_pr6_warm": _speedup(
                (pr6_entry.get("warm") or {}).get("seconds"),
                vec["warm"]["seconds"],
            ),
        }
    payload = {
        "pr": 7,
        "protocol": (
            "single-job ExperimentGrid, cell cache disabled, steady=auto, "
            "incremental CME analyzer, fresh in-memory StageStore per "
            "trial; each trial runs the scenario with the store disabled "
            "(baseline), cold (priming the store, in-run dedup active) "
            "and warm (replaying from it); best warm pass of "
            f"{repeats} trials per engine, identical results asserted "
            "across engines, passes and store settings"
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "pr6_baseline": pr6,
        "scenarios": results,
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--skip-fig6", action="store_true",
        help="record only the smaller scenarios (fig6 is the larger grid)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="nostore+cold+warm trials per engine; the best warm pass "
             "is recorded (default: 3)",
    )
    args = parser.parse_args(argv)
    scenarios = ["streaming", "fig6-steady-ablation"]
    if not args.skip_fig6:
        scenarios.append("fig6-2cluster")
    payload = record(scenarios, args.out, args.repeats)
    failed = False
    for name, entry in payload["scenarios"].items():
        vec = entry["sims"]["vectorized"]
        print(
            f"{name}: warm {entry['speedup_warm_vs_nostore']}x vs no-store "
            f"(cold {entry['speedup_cold_vs_nostore']}x, "
            f"warm-vs-cold {entry['speedup_warm_vs_cold']}x)"
        )
        warm_schedule = vec["warm"]["stage_store"]["schedule"]
        if warm_schedule["misses"] != 0 or warm_schedule["hits"] == 0:
            print(
                f"WARNING: {name} warm pass recomputed "
                f"{warm_schedule['misses']} schedules"
            )
            failed = True
        if name == "fig6-2cluster":
            cold_sim = vec["cold"]["stage_store"]["simulate"]
            if cold_sim["hits"] == 0:
                print(
                    f"WARNING: {name} cold pass had zero simulate-store "
                    f"hits (threshold sweep should dedup schedules)"
                )
                failed = True
            if (entry["speedup_warm_vs_nostore"] or 0) < 1.2:
                print(
                    f"WARNING: {name} warm-vs-nostore speedup is "
                    f"{entry['speedup_warm_vs_nostore']}x (< 1.2x)"
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
