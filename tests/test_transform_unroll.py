"""Tests for the loop-unrolling transform."""

import pytest

from repro.cme import SamplingCME
from repro.ir import LoopBuilder
from repro.machine import two_cluster, unified
from repro.scheduler import BaselineScheduler
from repro.scheduler.mii import rec_mii
from repro.simulator import simulate
from repro.transform import UnrollError, unroll
from repro.workloads import kernel_by_name


def _stream_kernel(n=256):
    b = LoopBuilder("stream")
    i = b.dim("i", 0, n)
    a = b.array("A", (n,))
    out = b.array("OUT", (n,))
    v = b.load(a, [b.aff(i=1)], name="ld")
    t = b.fmul(v, v, name="mul")
    b.store(out, [b.aff(i=1)], t, name="st")
    return b.build()


def _accum_kernel(n=240):
    b = LoopBuilder("accum")
    i = b.dim("i", 0, n)
    a = b.array("A", (n,))
    v = b.load(a, [b.aff(i=1)], name="ld")
    acc = b.fadd(b.prev_value("acc", 1), v, dest="acc", name="accum")
    b.store(a, [b.aff(i=1)], acc, name="st")
    return b.build()


class TestStructure:
    def test_factor_one_is_identity(self):
        kernel = _stream_kernel()
        assert unroll(kernel, 1) is kernel

    def test_op_count_scales(self):
        kernel = _stream_kernel()
        unrolled = unroll(kernel, 4)
        assert len(unrolled.loop.operations) == 4 * len(kernel.loop.operations)

    def test_trip_count_divides(self):
        kernel = _stream_kernel(256)
        unrolled = unroll(kernel, 4)
        assert unrolled.loop.n_iterations == 64
        assert unrolled.loop.inner.step == 4

    def test_indivisible_trip_rejected(self):
        kernel = _stream_kernel(255)
        with pytest.raises(UnrollError, match="not\\s+divisible"):
            unroll(kernel, 4)

    def test_bad_factor_rejected(self):
        with pytest.raises(UnrollError):
            unroll(_stream_kernel(), 0)

    def test_subscripts_shifted(self):
        kernel = _stream_kernel()
        unrolled = unroll(kernel, 4)
        loop = unrolled.loop
        point = {"i": 0}
        addresses = sorted(
            loop.ref_of(loop.operation(f"ld@u{k}")).address(point)
            for k in range(4)
        )
        assert addresses == [0, 8, 16, 24]

    def test_name_suffixed(self):
        assert unroll(_stream_kernel(), 2).loop.name == "stream_x2"

    def test_registers_renamed_per_copy(self):
        unrolled = unroll(_stream_kernel(), 2)
        dests = {op.dest for op in unrolled.loop.operations if op.dest}
        assert "v_ld@u0" in dests or any("@u0" in d for d in dests)
        assert all(
            op.dest is None or "@u" in op.dest
            for op in unrolled.loop.operations
        )


class TestSemantics:
    def test_touched_addresses_preserved(self):
        """Original and unrolled kernels touch exactly the same bytes."""
        kernel = _stream_kernel(64)
        unrolled = unroll(kernel, 4)

        def touched(k):
            addresses = set()
            for point in k.loop.iteration_points():
                for ref in k.loop.refs:
                    addresses.add((ref.array.name, ref.address(point), ref.is_store))
            return addresses

        assert touched(kernel) == touched(unrolled)

    def test_recurrence_preserved_and_scaled(self):
        kernel = _accum_kernel()
        unrolled = unroll(kernel, 3)
        assert unrolled.ddg.has_recurrences()
        machine = unified()
        # The accumulate chain serializes: RecMII scales with the factor.
        assert rec_mii(unrolled.ddg, machine) == 3 * rec_mii(kernel.ddg, machine)

    def test_intra_unroll_recurrence_edges(self):
        """Copy k consumes copy k-1's accumulator within one new iteration."""
        unrolled = unroll(_accum_kernel(), 3)
        accum1 = unrolled.loop.operation("accum@u1")
        assert "acc@u0" in accum1.srcs
        accum0 = unrolled.loop.operation("accum@u0")
        assert "acc@u2" in accum0.srcs  # carried from the previous iteration
        carried = [
            e for e in unrolled.ddg.register_edges()
            if e.src == "accum@u2" and e.dst == "accum@u0"
        ]
        assert carried and carried[0].distance == 1

    def test_mem_edges_replicated(self):
        b = LoopBuilder("memdep")
        i = b.dim("i", 0, 32)
        a = b.array("A", (64,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        b.store(a, [b.aff(1, i=1)], v, name="st")
        b.mem_dep("st", "ld", distance=1)
        kernel = b.build()
        unrolled = unroll(kernel, 2)
        mem_edges = [e for e in unrolled.ddg.edges() if e.kind == "mem"]
        assert len(mem_edges) == 2
        pairs = {(e.src, e.dst, e.distance) for e in mem_edges}
        assert ("st@u0", "ld@u1", 0) in pairs
        assert ("st@u1", "ld@u0", 1) in pairs


class TestPaperMotivation:
    def test_one_copy_misses_rest_hit(self, sampling_cme):
        """Section 4.3: after unrolling a unit-stride stream by the line
        factor, one instance always misses and the others always hit."""
        kernel = _stream_kernel()
        unrolled = unroll(kernel, 4)  # 8B elements, 32B lines
        cache = unified().cluster(0).cache
        ops = unrolled.loop.memory_operations
        ratios = {
            op.name: sampling_cme.miss_ratio(unrolled.loop, op, ops, cache)
            for op in ops
            if op.is_load
        }
        assert ratios["ld@u0"] > 0.9
        for k in (1, 2, 3):
            assert ratios[f"ld@u{k}"] < 0.1

    def test_unrolled_schedules_validate_and_simulate(self):
        kernel = _stream_kernel()
        unrolled = unroll(kernel, 4)
        machine = two_cluster()
        schedule = BaselineScheduler().schedule(unrolled, machine)
        schedule.validate()
        result = simulate(schedule)
        assert result.total_cycles > 0

    def test_per_element_cycles_comparable(self):
        """Unrolling must not change the amount of work per element."""
        kernel = _stream_kernel()
        unrolled = unroll(kernel, 4)
        machine = unified()
        base = simulate(BaselineScheduler().schedule(kernel, machine))
        opt = simulate(BaselineScheduler().schedule(unrolled, machine))
        per_element_base = base.total_cycles / 256
        per_element_opt = opt.total_cycles / 256
        assert per_element_opt <= per_element_base * 1.2

    @pytest.mark.parametrize("name", ["su2cor", "applu"])
    def test_suite_kernels_unroll(self, name):
        kernel = kernel_by_name(name)
        factor = 2 if kernel.loop.n_iterations % 2 == 0 else 3
        unrolled = unroll(kernel, factor)
        schedule = BaselineScheduler().schedule(unrolled, unified())
        schedule.validate()
