"""Schedule result objects.

A :class:`Schedule` is the scheduler's output and the simulator's input:
per-operation placements (cluster, absolute time, assumed latency) plus
the inter-cluster register communications the schedule commits to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.builder import Kernel
from ..ir.operations import Operation
from ..machine.config import MachineConfig

__all__ = ["Placement", "Communication", "Schedule", "SchedulingError"]


class SchedulingError(RuntimeError):
    """Raised when no feasible schedule exists up to the II limit."""


@dataclass(frozen=True)
class Placement:
    """Where and when one operation executes.

    ``assumed_latency`` is the latency the scheduler promised consumers:
    the hit latency normally, or the full miss latency when the load was
    binding-prefetched (Section 4.3).
    """

    op: str
    cluster: int
    time: int
    assumed_latency: int

    @property
    def stage(self) -> int:
        """Modulo-schedule stage index (needs the II; see Schedule.stage)."""
        raise AttributeError("use Schedule.stage_of(op)")


@dataclass(frozen=True)
class Communication:
    """One static inter-cluster register transfer.

    The transfer repeats every II cycles at ``start`` (absolute schedule
    time of its first instance) and keeps its bus busy for ``latency``
    cycles; the value arrives at ``start + latency``.
    """

    producer: str
    src_cluster: int
    dst_cluster: int
    bus: int
    start: int
    latency: int

    @property
    def arrival(self) -> int:
        return self.start + self.latency


@dataclass
class Schedule:
    """A complete modulo schedule for one kernel on one machine."""

    kernel: Kernel
    machine: MachineConfig
    ii: int
    placements: Dict[str, Placement]
    communications: List[Communication] = field(default_factory=list)
    mii: int = 0
    res_mii: int = 0
    rec_mii: int = 0
    scheduler_name: str = ""
    threshold: float = 1.0

    # ------------------------------------------------------------------
    @property
    def stage_count(self) -> int:
        """SC: how many iterations overlap in the kernel."""
        if not self.placements:
            return 1
        last = max(p.time for p in self.placements.values())
        return last // self.ii + 1

    def stage_of(self, op: str) -> int:
        return self.placements[op].time // self.ii

    def slot_of(self, op: str) -> int:
        return self.placements[op].time % self.ii

    @property
    def n_communications(self) -> int:
        return len(self.communications)

    def comms_per_iteration(self) -> float:
        """Average register-bus transfers per kernel iteration."""
        return float(len(self.communications))

    def cluster_of(self, op: str) -> int:
        return self.placements[op].cluster

    def cluster_assignment(self) -> Dict[str, int]:
        return {name: p.cluster for name, p in self.placements.items()}

    def ops_in_cluster(self, cluster: int) -> List[Operation]:
        loop = self.kernel.loop
        return [
            loop.operation(name)
            for name, p in self.placements.items()
            if p.cluster == cluster
        ]

    def memory_ops_in_cluster(self, cluster: int) -> List[Operation]:
        return [op for op in self.ops_in_cluster(cluster) if op.is_memory]

    def prefetched_loads(self) -> List[str]:
        """Loads scheduled with the miss latency."""
        result = []
        for name, placement in self.placements.items():
            op = self.kernel.loop.operation(name)
            if op.is_load and placement.assumed_latency > self.machine.latency(op.opclass):
                result.append(name)
        return result

    # ------------------------------------------------------------------
    def compute_cycles(self, n_iterations: int, n_times: int = 1) -> int:
        """NCYCLE_compute = NTIMES * (NITER + SC - 1) * II (Section 2.2)."""
        return n_times * (n_iterations + self.stage_count - 1) * self.ii

    def fingerprint(self) -> str:
        """Content hash of everything the simulator reads from this
        schedule: the kernel's loop (operations, references, bounds) and
        dependence graph, the full machine configuration, the II, and
        every placement and communication.  ``scheduler_name`` and
        ``threshold`` are deliberately *excluded* — they label how the
        schedule was produced, not what it is, so cells whose schedules
        land byte-identical (e.g. neighbouring thresholds that move no
        load across the miss-ratio boundary) hash equal and can share
        content-addressed warm state.
        """
        cached = getattr(self, "_content_fingerprint", None)
        if cached is not None:
            return cached
        import hashlib
        import json

        edges = sorted(
            (edge.src, edge.dst, edge.kind, edge.distance)
            for edge in self.kernel.ddg.edges()
        )
        payload = "\n".join(
            [
                repr(self.kernel.loop),
                repr(edges),
                json.dumps(self.machine.to_dict(), sort_keys=True),
                str(self.ii),
                repr(
                    sorted(
                        (name, p.cluster, p.time, p.assumed_latency)
                        for name, p in self.placements.items()
                    )
                ),
                repr(
                    sorted(
                        (c.producer, c.src_cluster, c.dst_cluster,
                         c.bus, c.start, c.latency)
                        for c in self.communications
                    )
                ),
            ]
        )
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_content_fingerprint", digest)
        return digest

    def validate(self) -> None:
        """Internal consistency checks (used heavily by the test suite).

        Verifies dependence constraints (including communication latency
        for cross-cluster flow edges), FU capacity and bounded-bus
        capacity modulo the II.
        """
        from .mii import edge_latency  # local import avoids a cycle

        loop = self.kernel.loop
        ddg = self.kernel.ddg
        missing = [op.name for op in loop.operations if op.name not in self.placements]
        if missing:
            raise AssertionError(f"unscheduled operations: {missing}")

        comms_by_key: Dict[Tuple[str, int], List[Communication]] = {}
        for comm in self.communications:
            comms_by_key.setdefault(
                (comm.producer, comm.dst_cluster), []
            ).append(comm)

        for edge in ddg.edges():
            src = self.placements[edge.src]
            dst = self.placements[edge.dst]
            producer = loop.operation(edge.src)
            lat = edge_latency(
                producer, edge.kind, self.machine,
                latency_of=lambda op: self.placements[op.name].assumed_latency,
            )
            slack = dst.time + self.ii * edge.distance - src.time
            if edge.kind == "flow" and src.cluster != dst.cluster:
                candidates = comms_by_key.get((edge.src, dst.cluster), [])
                ok = any(
                    c.start >= src.time + src.assumed_latency
                    and c.arrival <= dst.time + self.ii * edge.distance
                    for c in candidates
                )
                if not ok:
                    raise AssertionError(
                        f"flow edge {edge.src}->{edge.dst} crosses clusters "
                        f"without a timely communication"
                    )
            elif slack < lat:
                raise AssertionError(
                    f"dependence {edge.src}->{edge.dst} violated: "
                    f"slack {slack} < latency {lat}"
                )

        # FU capacity per modulo slot.
        usage: Dict[Tuple[int, int, str], int] = {}
        for name, placement in self.placements.items():
            op = loop.operation(name)
            key = (placement.time % self.ii, placement.cluster, op.fu_type.value)
            usage[key] = usage.get(key, 0) + 1
        from ..ir.operations import FUType

        for (slot, cluster, fu), used in usage.items():
            capacity = self.machine.cluster(cluster).n_units(FUType(fu))
            if used > capacity:
                raise AssertionError(
                    f"FU overuse: slot {slot} cluster {cluster} {fu}: "
                    f"{used} > {capacity}"
                )

        # Bounded register buses: per bus, per slot, one transfer.
        if self.machine.register_bus.count is not None:
            bus_slots: Dict[Tuple[int, int], int] = {}
            for comm in self.communications:
                for k in range(comm.latency):
                    key = (comm.bus, (comm.start + k) % self.ii)
                    bus_slots[key] = bus_slots.get(key, 0) + 1
            over = {k: v for k, v in bus_slots.items() if v > 1}
            if over:
                raise AssertionError(f"register-bus conflicts: {over}")

    def format_reservation_table(self) -> str:
        """Render the modulo reservation table like the paper's Figure 3.

        One row per modulo slot; one column per cluster (operations with
        their stage in brackets) plus one column per register bus (``C``
        marks busy cycles).
        """
        ii = self.ii
        n_clusters = self.machine.n_clusters
        cells: Dict[Tuple[int, int], List[str]] = {}
        for name, placement in self.placements.items():
            key = (placement.time % ii, placement.cluster)
            cells.setdefault(key, []).append(f"{name}({self.stage_of(name)})")
        bus_ids = sorted({c.bus for c in self.communications})
        bus_cells: Dict[Tuple[int, int], str] = {}
        for comm in self.communications:
            for k in range(comm.latency):
                bus_cells[((comm.start + k) % ii, comm.bus)] = "C"
        headers = ["slot"] + [f"cluster{c}" for c in range(n_clusters)] + [
            f"bus{b}" if b >= 0 else "bus*" for b in bus_ids
        ]
        rows: List[List[str]] = []
        for slot in range(ii):
            row = [str(slot)]
            for cluster in range(n_clusters):
                row.append(" ".join(sorted(cells.get((slot, cluster), []))))
            for bus in bus_ids:
                row.append(bus_cells.get((slot, bus), ""))
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel.name,
            "machine": self.machine.name,
            "scheduler": self.scheduler_name,
            "threshold": self.threshold,
            "ii": self.ii,
            "mii": self.mii,
            "sc": self.stage_count,
            "comms": self.n_communications,
            "prefetched_loads": len(self.prefetched_loads()),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.kernel.name}@{self.machine.name}: II={self.ii}, "
            f"SC={self.stage_count}, comms={self.n_communications})"
        )
