"""Unit tests for the cluster cache and MSHR."""

import pytest

from repro.machine.config import CacheConfig
from repro.memory.cache import ClusterCache, LineState, MSHR


def _cache(size=1024, assoc=1, mshr=4):
    return ClusterCache(
        CacheConfig(size=size, line_size=32, associativity=assoc,
                    mshr_entries=mshr),
        cluster_id=0,
    )


class TestMSHR:
    def test_allocates_immediately_when_free(self):
        mshr = MSHR(2)
        assert mshr.allocate(10) == 10

    def test_waits_when_full(self):
        mshr = MSHR(2)
        mshr.allocate(0); mshr.hold(20)
        mshr.allocate(0); mshr.hold(30)
        grant = mshr.allocate(5)
        assert grant == 20  # waits for the earliest release
        assert mshr.total_wait_cycles == 15

    def test_frees_after_release_time(self):
        mshr = MSHR(1)
        mshr.allocate(0); mshr.hold(10)
        assert mshr.allocate(11) == 11

    def test_occupancy(self):
        mshr = MSHR(4)
        mshr.hold(10)
        mshr.hold(20)
        assert mshr.occupancy(5) == 2
        assert mshr.occupancy(15) == 1
        assert mshr.occupancy(25) == 0

    def test_peak_occupancy(self):
        mshr = MSHR(4)
        mshr.hold(10)
        mshr.hold(10)
        mshr.hold(10)
        assert mshr.peak_occupancy == 3

    def test_needs_one_entry(self):
        with pytest.raises(ValueError):
            MSHR(0)

    def test_reset_stats(self):
        mshr = MSHR(1)
        mshr.allocate(0); mshr.hold(10)
        mshr.allocate(0)
        mshr.reset_stats()
        assert mshr.total_wait_cycles == 0
        assert mshr.peak_occupancy == 0


class TestClusterCacheStates:
    def test_starts_invalid(self):
        cache = _cache()
        assert cache.state_of(0) is LineState.INVALID

    def test_fill_shared(self):
        cache = _cache()
        cache.fill(0, LineState.SHARED)
        assert cache.state_of(0) is LineState.SHARED
        assert cache.state_of(31) is LineState.SHARED  # same line
        assert cache.state_of(32) is LineState.INVALID

    def test_read_hit_rules(self):
        cache = _cache()
        cache.fill(0, LineState.SHARED)
        assert cache.is_hit(0, is_store=False)
        assert not cache.is_hit(0, is_store=True)  # S cannot absorb a store
        cache.set_state(0, LineState.MODIFIED)
        assert cache.is_hit(0, is_store=True)

    def test_invalidate_reports_dirty(self):
        cache = _cache()
        cache.fill(0, LineState.MODIFIED)
        assert cache.invalidate(0) is True
        assert cache.state_of(0) is LineState.INVALID
        assert cache.invalidate(0) is False  # already gone

    def test_set_state_noop_when_absent(self):
        cache = _cache()
        cache.set_state(64, LineState.SHARED)
        assert cache.state_of(64) is LineState.INVALID


class TestEviction:
    def test_direct_mapped_conflict_evicts(self):
        cache = _cache(size=1024)
        cache.fill(0, LineState.SHARED)
        victim = cache.fill(1024, LineState.SHARED)  # same set
        assert victim == (0, LineState.SHARED)
        assert cache.state_of(0) is LineState.INVALID

    def test_dirty_victim_reported(self):
        cache = _cache(size=1024)
        cache.fill(0, LineState.MODIFIED)
        victim = cache.fill(1024, LineState.SHARED)
        assert victim == (0, LineState.MODIFIED)

    def test_refill_same_line_no_victim(self):
        cache = _cache()
        cache.fill(0, LineState.SHARED)
        assert cache.fill(0, LineState.MODIFIED) is None
        assert cache.state_of(0) is LineState.MODIFIED

    def test_associative_keeps_conflicting_lines(self):
        cache = _cache(size=1024, assoc=2)
        cache.fill(0, LineState.SHARED)
        victim = cache.fill(1024, LineState.SHARED)
        assert victim is None
        assert cache.state_of(0) is LineState.SHARED
        assert cache.state_of(1024) is LineState.SHARED

    def test_lru_eviction_order(self):
        cache = _cache(size=1024, assoc=2)
        cache.fill(0, LineState.SHARED)
        cache.fill(1024, LineState.SHARED)
        cache.touch(0)  # 1024 becomes LRU
        victim = cache.fill(2048, LineState.SHARED)
        assert victim[0] == 1024

    def test_victim_line_address_roundtrip(self):
        cache = _cache(size=1024)
        cache.fill(32 * 5 + 1024 * 3, LineState.SHARED)
        victim = cache.fill(32 * 5 + 1024 * 7, LineState.SHARED)
        assert victim[0] == 32 * 5 + 1024 * 3

    def test_resident_lines_and_clear(self):
        cache = _cache()
        cache.fill(0, LineState.SHARED)
        cache.fill(64, LineState.MODIFIED)
        assert cache.resident_lines() == 2
        cache.clear()
        assert cache.resident_lines() == 0
