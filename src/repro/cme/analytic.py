"""Analytic (closed-form) miss estimation for direct-mapped caches.

A light-weight analytic counterpart to the sampled solver, in the spirit
of the original Cache Miss Equations [9] restricted to the reference
patterns our kernels use.  Per reference the model composes:

* **compulsory/self misses** — ``stride / line_size`` for spatially-reusing
  streams (clamped to 1 for non-unit strides past the line size), 0 for
  temporally-reusing references,
* **group-reuse discounts** — a follower of a uniformly generated leader
  at distance < line trails in the leader's lines and only misses on the
  fraction of iterations where its access enters a new line,
* **conflict (interference) misses** — a pairwise ping-pong test: two
  references whose addresses map to the same cache set at (nearly) every
  iteration evict each other in a direct-mapped cache, forcing both to
  miss on every access, exactly the pathology of the motivating example.

The analytic model is intentionally simpler than the exact CME; the
ablation benchmark (`benchmarks/test_ablations.py`) quantifies its
agreement with the sampled solver, and the schedulers accept either
backend through the same protocol.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..ir.loop import Loop
from ..ir.operations import Operation
from ..machine.config import CacheConfig
from .reuse import group_pairs, innermost_stride
from .trace import loop_fingerprint

__all__ = ["AnalyticCME"]

#: Fraction of set-overlap probes that must collide before two streams are
#: considered ping-pong conflicting.
_CONFLICT_FRACTION = 0.5
_PROBE_POINTS = 64


class AnalyticCME:
    """Closed-form locality analyzer (direct-mapped focus)."""

    name = "analytic"

    def __init__(self):
        # Content-fingerprint keys (see SamplingCME): immune to id reuse
        # after GC and safe to keep across pickling.
        self._memo: Dict[Tuple, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    def per_op_miss_ratio(
        self,
        loop: Loop,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> Dict[str, float]:
        """Estimated steady-state miss ratio for every memory op in ``ops``."""
        mem_ops = [op for op in loop.operations if op in tuple(ops) and op.is_memory]
        key = (
            loop_fingerprint(loop),
            tuple(op.name for op in mem_ops),
            cache.size,
            cache.line_size,
            cache.associativity,
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        ratios = self._estimate(loop, mem_ops, cache)
        self._memo[key] = ratios
        return ratios

    def _estimate(
        self,
        loop: Loop,
        ops: List[Operation],
        cache: CacheConfig,
    ) -> Dict[str, float]:
        refs = [loop.ref_of(op) for op in ops]
        line = cache.line_size

        # Base: self reuse only.
        ratios: Dict[str, float] = {}
        for op, ref in zip(ops, refs):
            stride = abs(innermost_stride(ref, loop))
            if stride == 0:
                ratios[op.name] = 0.0
            elif stride < line:
                ratios[op.name] = stride / line
            else:
                ratios[op.name] = 1.0

        # Group reuse: follower rides the leader's lines.
        for leader, follower, gap in group_pairs(refs, loop, line):
            if gap >= line:
                continue
            lead_op, follow_op = ops[leader], ops[follower]
            stride = abs(innermost_stride(refs[follower], loop))
            if stride == 0:
                ratios[follow_op.name] = 0.0
            else:
                # The follower only misses when it crosses into a line the
                # leader has not yet touched — at most the boundary fraction.
                boundary = gap / line * (stride / line)
                ratios[follow_op.name] = min(ratios[follow_op.name], boundary)

        # Conflicts: pairwise ping-pong detection overrides reuse.
        conflicting = self._conflict_sets(loop, refs, cache)
        for index in conflicting:
            ratios[ops[index].name] = 1.0
        return ratios

    def _conflict_sets(
        self,
        loop: Loop,
        refs: Sequence,
        cache: CacheConfig,
    ) -> List[int]:
        """Indices of references involved in a ping-pong conflict."""
        if cache.associativity > 1:
            return []  # pathological ping-pong needs direct mapping
        points = list(loop.iteration_points(limit=_PROBE_POINTS))
        conflicting: List[int] = []
        for i in range(len(refs)):
            for j in range(i + 1, len(refs)):
                if refs[i].array.name == refs[j].array.name:
                    continue  # same-array refs covered by group analysis
                collisions = 0
                for point in points:
                    set_i = cache.set_index(refs[i].address(point))
                    set_j = cache.set_index(refs[j].address(point))
                    if set_i == set_j:
                        collisions += 1
                if points and collisions / len(points) >= _CONFLICT_FRACTION:
                    conflicting.extend((i, j))
        return sorted(set(conflicting))

    # ------------------------------------------------------------------
    # LocalityAnalyzer protocol
    # ------------------------------------------------------------------
    def miss_count(
        self,
        loop: Loop,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        """Expected misses per full innermost-loop execution."""
        ratios = self.per_op_miss_ratio(loop, ops, cache)
        return sum(ratios.values()) * loop.n_iterations

    def miss_ratio(
        self,
        loop: Loop,
        op: Operation,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        return self.per_op_miss_ratio(loop, ops, cache).get(op.name, 0.0)
