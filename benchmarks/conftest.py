"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the experiment once (``benchmark.pedantic(..., rounds=1)``), prints the
rows/series the paper reports, saves the rendering under
``benchmarks/results/`` and asserts the paper's qualitative claims.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.cme import IncrementalCME
from repro.harness.grid import ExperimentGrid

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def locality():
    """One memoized analyzer shared by all benchmarks.

    The incremental engine is bit-identical to the from-scratch sampled
    solver (same fingerprint), so the recorded figures are unchanged.
    """
    return IncrementalCME(max_points=512)


@pytest.fixture(scope="session")
def grid(locality):
    """One experiment grid shared by every figure benchmark.

    The figures submit their cells through this grid, so the Unified
    normalization reference (and any other shared cell) is computed once
    per session instead of once per figure.  ``REPRO_BENCH_JOBS`` fans
    the cells out over worker processes; results are identical either
    way.
    """
    return ExperimentGrid(
        locality=locality,
        n_jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
    )


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendering and echo it to stdout (-s shows it live)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
