"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cme import AnalyticCME, SamplingCME
from repro.ir import LoopBuilder
from repro.machine import BusConfig, four_cluster, two_cluster, unified
from repro.workloads import motivating_kernel, motivating_machine


@pytest.fixture
def saxpy():
    """Y[i] = alpha*X[i] + Y[i] over 256 doubles."""
    b = LoopBuilder("saxpy")
    i = b.dim("i", 0, 256)
    x = b.array("X", (256,))
    y = b.array("Y", (256,))
    xi = b.load(x, [b.aff(i=1)], name="ld_x")
    yi = b.load(y, [b.aff(i=1)], name="ld_y")
    s = b.fmul(xi, b.fconst("alpha"), name="mul")
    t = b.fadd(s, yi, name="add")
    b.store(y, [b.aff(i=1)], t, name="st_y")
    return b.build()


@pytest.fixture
def stencil():
    """5-point 2-D stencil with group reuse (tomcatv-like, small)."""
    b = LoopBuilder("stencil")
    j = b.dim("j", 1, 15)
    i = b.dim("i", 1, 15)
    a = b.array("A", (16, 16))
    out = b.array("OUT", (16, 16))
    c = b.load(a, [b.aff(j=1), b.aff(i=1)], name="ld_c")
    w = b.load(a, [b.aff(j=1), b.aff(-1, i=1)], name="ld_w")
    e = b.load(a, [b.aff(j=1), b.aff(1, i=1)], name="ld_e")
    n = b.load(a, [b.aff(-1, j=1), b.aff(i=1)], name="ld_n")
    s = b.load(a, [b.aff(1, j=1), b.aff(i=1)], name="ld_s")
    t = b.fadd(b.fadd(w, e), b.fadd(n, s), name="sum")
    u = b.fsub(t, c, name="diff")
    b.store(out, [b.aff(j=1), b.aff(i=1)], u, name="st")
    return b.build()


@pytest.fixture
def recurrence():
    """Accumulation with a loop-carried dependence (RecMII > 1)."""
    b = LoopBuilder("accum")
    i = b.dim("i", 0, 128)
    x = b.array("X", (128,))
    xi = b.load(x, [b.aff(i=1)], name="ld_x")
    acc = b.fadd(b.prev_value("acc", distance=1), xi, dest="acc", name="accum")
    return b.build()


@pytest.fixture
def unified_machine():
    return unified()


@pytest.fixture
def two_cluster_machine():
    return two_cluster()


@pytest.fixture
def four_cluster_machine():
    return four_cluster()


@pytest.fixture
def unbounded_two_cluster():
    return two_cluster(
        register_bus=BusConfig(count=None, latency=1),
        memory_bus=BusConfig(count=None, latency=1),
    )


@pytest.fixture
def sampling_cme():
    return SamplingCME(max_points=512)


@pytest.fixture
def analytic_cme():
    return AnalyticCME()


@pytest.fixture
def motivating():
    return motivating_kernel(), motivating_machine()
