"""Cross-process fingerprint stability.

``loop_fingerprint``, ``kernel_fingerprint`` and
``Schedule.fingerprint()`` are stage-store and warm-store *keys*: a
fingerprint that drifted after pickling, or differed between the parent
process and an ``n_jobs>1`` worker, would silently poison dedup —
either missing every cross-process hit or, far worse, serving the wrong
entry.  These tests pin the contract: fingerprints are pure functions
of content, byte-identical across pickling, process pools and fresh
interpreters.
"""

import pickle
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.cme import IncrementalCME
from repro.cme.trace import _FINGERPRINT_ATTR, loop_fingerprint
from repro.engine.stages import make_scheduler
from repro.engine.stagestore import kernel_fingerprint
from repro.machine import two_cluster
from repro.workloads import spec_suite

MAX_POINTS = 512


@pytest.fixture(scope="module")
def analyzer():
    return IncrementalCME(max_points=MAX_POINTS)


@pytest.fixture(scope="module")
def schedules(analyzer):
    return [
        make_scheduler("rmca", 1.0, analyzer).schedule(
            kernel, two_cluster()
        )
        for kernel in spec_suite(["applu", "su2cor"])
    ]


# Module-level so a ProcessPoolExecutor can pickle them into workers.
def _worker_loop_fp(loop):
    return loop_fingerprint(loop)


def _worker_kernel_fp(kernel):
    return kernel_fingerprint(kernel)


def _worker_schedule_fp(schedule):
    return schedule.fingerprint()


class TestPickleStability:
    def test_loop_fingerprint_survives_pickling(self):
        for kernel in spec_suite():
            expected = loop_fingerprint(kernel.loop)
            clone = pickle.loads(pickle.dumps(kernel.loop))
            # Recompute from content, not from a pickled memo attribute:
            clone.__dict__.pop(_FINGERPRINT_ATTR, None)
            assert loop_fingerprint(clone) == expected, kernel.name

    def test_kernel_fingerprint_survives_pickling(self):
        for kernel in spec_suite():
            expected = kernel_fingerprint(kernel)
            clone = pickle.loads(pickle.dumps(kernel))
            assert kernel_fingerprint(clone) == expected, kernel.name

    def test_schedule_fingerprint_survives_pickling(self, schedules):
        for schedule in schedules:
            expected = schedule.fingerprint()
            clone = pickle.loads(pickle.dumps(schedule))
            if hasattr(clone, "_content_fingerprint"):
                object.__delattr__(clone, "_content_fingerprint")
            assert clone.fingerprint() == expected

    def test_fresh_kernel_objects_agree(self):
        """Two independent instantiations of the same suite kernel hash
        equal — the fingerprint reads content, not identity."""
        for a, b in zip(spec_suite(), spec_suite()):
            assert loop_fingerprint(a.loop) == loop_fingerprint(b.loop)
            assert kernel_fingerprint(a) == kernel_fingerprint(b)


class TestProcessFanout:
    def test_fingerprints_identical_in_pool_workers(self, schedules):
        kernels = spec_suite(["applu", "su2cor"])
        with ProcessPoolExecutor(max_workers=2) as pool:
            loop_fps = list(
                pool.map(_worker_loop_fp, [k.loop for k in kernels])
            )
            kernel_fps = list(pool.map(_worker_kernel_fp, kernels))
            schedule_fps = list(pool.map(_worker_schedule_fp, schedules))
        assert loop_fps == [loop_fingerprint(k.loop) for k in kernels]
        assert kernel_fps == [kernel_fingerprint(k) for k in kernels]
        assert schedule_fps == [s.fingerprint() for s in schedules]

    def test_fingerprints_identical_in_fresh_interpreter(self):
        """A brand-new Python process building the suite from source
        computes the same loop/kernel fingerprints — no dependence on
        interpreter state, hash seeds or import order."""
        kernels = spec_suite(["applu", "tomcatv"])
        script = (
            "from repro.cme.trace import loop_fingerprint\n"
            "from repro.engine.stagestore import kernel_fingerprint\n"
            "from repro.workloads import spec_suite\n"
            "for k in spec_suite(['applu', 'tomcatv']):\n"
            "    print(k.name, loop_fingerprint(k.loop), "
            "kernel_fingerprint(k))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        ).stdout
        expected = "".join(
            f"{k.name} {loop_fingerprint(k.loop)} {kernel_fingerprint(k)}\n"
            for k in kernels
        )
        assert output == expected
