"""VLIW instruction encoding (Figure 2 of the paper).

A multiVLIWprocessor instruction is the concatenation of one *cluster
instruction* per cluster.  Each cluster instruction carries:

* one operation field per functional unit of that cluster (``FUj``),
* one IN BUS field per register bus — the local register into which the
  IRV (Incoming Register Value) latch is stored this cycle, if any,
* one OUT BUS field per register bus — the local register whose value is
  driven onto the bus this cycle, if any (bypassed from the producing
  unit when the register is written in the same cycle).

:func:`encode_kernel` lowers a modulo :class:`~repro.scheduler.result.Schedule`
into the II VLIW instructions of the kernel, assigning operations to
concrete unit indices and communications to their IN/OUT fields.  All
register-communication control is static, exactly as the ISA prescribes
("no additional hardware is needed to manage and arbitrate register
buses").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.operations import FUType
from ..scheduler.result import Schedule

__all__ = [
    "FUField",
    "ClusterInstruction",
    "VLIWInstruction",
    "KernelProgram",
    "EncodingError",
    "encode_kernel",
]

#: Order in which unit fields appear inside a cluster instruction.
_FU_ORDER = (FUType.INTEGER, FUType.FP, FUType.MEMORY)


class EncodingError(ValueError):
    """Raised when a schedule cannot be lowered to the VLIW ISA."""


@dataclass(frozen=True)
class FUField:
    """One functional-unit slot: the operation issued, or a no-op."""

    fu_type: FUType
    unit: int
    op: Optional[str] = None  # operation name; None encodes a no-op

    def render(self) -> str:
        return self.op if self.op is not None else "nop"


@dataclass(frozen=True)
class ClusterInstruction:
    """One cluster's share of a VLIW instruction."""

    cluster: int
    fu_fields: Tuple[FUField, ...]
    #: IN BUS fields, one per register bus: local register receiving the
    #: IRV latch, or None.
    in_bus: Tuple[Optional[str], ...]
    #: OUT BUS fields, one per register bus: local register driven onto
    #: the bus, or None.
    out_bus: Tuple[Optional[str], ...]

    @property
    def is_nop(self) -> bool:
        return (
            all(f.op is None for f in self.fu_fields)
            and all(r is None for r in self.in_bus)
            and all(r is None for r in self.out_bus)
        )

    def render(self) -> str:
        units = " ".join(f.render() for f in self.fu_fields)
        buses = []
        for index, (in_r, out_r) in enumerate(zip(self.in_bus, self.out_bus)):
            if in_r is not None:
                buses.append(f"in{index}->{in_r}")
            if out_r is not None:
                buses.append(f"out{index}<-{out_r}")
        tail = (" | " + " ".join(buses)) if buses else ""
        return f"[{units}{tail}]"


@dataclass(frozen=True)
class VLIWInstruction:
    """One long instruction: every cluster's fields for one cycle."""

    slot: int
    clusters: Tuple[ClusterInstruction, ...]

    def render(self) -> str:
        body = "  ".join(c.render() for c in self.clusters)
        return f"{self.slot:3d}: {body}"


@dataclass
class KernelProgram:
    """The encoded kernel: II VLIW instructions, repeated every II cycles."""

    schedule: Schedule
    instructions: List[VLIWInstruction] = field(default_factory=list)

    @property
    def ii(self) -> int:
        return len(self.instructions)

    def operation_field(self, op: str) -> Tuple[int, int, FUField]:
        """Locate the (slot, cluster, field) encoding an operation."""
        for instruction in self.instructions:
            for cluster_instr in instruction.clusters:
                for fu_field in cluster_instr.fu_fields:
                    if fu_field.op == op:
                        return instruction.slot, cluster_instr.cluster, fu_field
        raise KeyError(f"operation {op!r} not encoded")

    def render(self) -> str:
        header = (
            f"; kernel of {self.schedule.kernel.name} on "
            f"{self.schedule.machine.name}: II={self.schedule.ii}, "
            f"SC={self.schedule.stage_count}"
        )
        return "\n".join([header] + [i.render() for i in self.instructions])

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural checks: every op encoded once, fields consistent."""
        seen: Dict[str, int] = {}
        for instruction in self.instructions:
            for cluster_instr in instruction.clusters:
                for fu_field in cluster_instr.fu_fields:
                    if fu_field.op is not None:
                        seen[fu_field.op] = seen.get(fu_field.op, 0) + 1
        expected = set(self.schedule.placements)
        if set(seen) != expected or any(n != 1 for n in seen.values()):
            raise EncodingError(
                f"operations encoded {seen}, expected each of {sorted(expected)} once"
            )
        n_buses = self.schedule.machine.register_bus.count or 0
        for instruction in self.instructions:
            for cluster_instr in instruction.clusters:
                if len(cluster_instr.in_bus) != n_buses:
                    raise EncodingError("IN BUS field count mismatch")
                if len(cluster_instr.out_bus) != n_buses:
                    raise EncodingError("OUT BUS field count mismatch")


def encode_kernel(schedule: Schedule) -> KernelProgram:
    """Lower a modulo schedule into its kernel's VLIW instructions.

    Requires a bounded register-bus pool (the ISA has one IN/OUT field
    pair per physical bus; an unbounded pool is a modeling device with no
    encoding).  Unit indices are assigned per (slot, cluster, FU type) in
    deterministic op-name order.
    """
    machine = schedule.machine
    if machine.register_bus.count is None:
        raise EncodingError(
            "cannot encode for an unbounded register-bus pool; "
            "use a machine with a concrete bus count"
        )
    n_buses = machine.register_bus.count
    ii = schedule.ii
    loop = schedule.kernel.loop

    # (slot, cluster, fu_type) -> ordered ops
    by_slot: Dict[Tuple[int, int, FUType], List[str]] = {}
    for name, placement in schedule.placements.items():
        op = loop.operation(name)
        key = (placement.time % ii, placement.cluster, op.fu_type)
        by_slot.setdefault(key, []).append(name)
    for ops in by_slot.values():
        ops.sort()

    # (slot, cluster, bus) -> registers for IN/OUT fields.
    out_fields: Dict[Tuple[int, int, int], str] = {}
    in_fields: Dict[Tuple[int, int, int], str] = {}
    for comm in schedule.communications:
        producer = loop.operation(comm.producer)
        if producer.dest is None:  # pragma: no cover - comms carry values
            raise EncodingError(f"communication of value-less {comm.producer!r}")
        out_key = (comm.start % ii, comm.src_cluster, comm.bus)
        in_key = (comm.arrival % ii, comm.dst_cluster, comm.bus)
        for key, table in ((out_key, out_fields), (in_key, in_fields)):
            if key in table and table[key] != producer.dest:
                raise EncodingError(f"bus field collision at {key}")
        out_fields[out_key] = producer.dest
        in_fields[in_key] = producer.dest

    instructions: List[VLIWInstruction] = []
    for slot in range(ii):
        cluster_instrs = []
        for cluster_id, cluster in enumerate(machine.clusters):
            fu_fields: List[FUField] = []
            for fu_type in _FU_ORDER:
                ops = by_slot.get((slot, cluster_id, fu_type), [])
                capacity = cluster.n_units(fu_type)
                if len(ops) > capacity:
                    raise EncodingError(
                        f"slot {slot} cluster {cluster_id} {fu_type.value}: "
                        f"{len(ops)} ops on {capacity} units"
                    )
                for unit in range(capacity):
                    fu_fields.append(
                        FUField(
                            fu_type=fu_type,
                            unit=unit,
                            op=ops[unit] if unit < len(ops) else None,
                        )
                    )
            cluster_instrs.append(
                ClusterInstruction(
                    cluster=cluster_id,
                    fu_fields=tuple(fu_fields),
                    in_bus=tuple(
                        in_fields.get((slot, cluster_id, bus))
                        for bus in range(n_buses)
                    ),
                    out_bus=tuple(
                        out_fields.get((slot, cluster_id, bus))
                        for bus in range(n_buses)
                    ),
                )
            )
        instructions.append(
            VLIWInstruction(slot=slot, clusters=tuple(cluster_instrs))
        )
    program = KernelProgram(schedule=schedule, instructions=instructions)
    program.validate()
    return program
