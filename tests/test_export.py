"""Tests for the artifact export module (repro.service.export)."""

import math

import numpy as np
import pytest

from repro.harness.io import load_records
from repro.harness.scenarios import (
    GroupSpec,
    MachineSpec,
    ScenarioSpec,
    run_scenario,
)
from repro.service import (
    EXPORT_FORMATS,
    export_outcome,
    export_records,
    load_npz,
    outcome_records,
    records_to_npz,
)


def _tiny_outcome():
    scenario = ScenarioSpec(
        name="export-tiny",
        description="export test scenario",
        groups=(
            GroupSpec(
                label="unified",
                machine=MachineSpec(preset="unified"),
                scheduler="baseline",
            ),
        ),
        thresholds=(1.0,),
        kernels=("tomcatv", "swim"),
        n_iterations=8,
        n_times=2,
    )
    return run_scenario(scenario)


class TestOutcomeRecords:
    def test_grid_outcome_flattens_with_group_labels(self):
        outcome = _tiny_outcome()
        records = outcome_records(outcome)
        assert len(records) == 2
        rows = list(outcome.iter_rows())
        for record, (label, _thr, kernel, result) in zip(records, rows):
            assert record["group"] == label
            assert record["kernel"] == kernel
            assert record["total_cycles"] == result.total_cycles
            assert record["mii"] == result.schedule.mii

    def test_figure_outcome_reuses_figure_records(self):
        outcome = run_scenario(
            ScenarioSpec(
                name="export-fig",
                description="figure export test",
                figure="figure6",
                figure_args=(
                    ("bus_counts", (1,)),
                    ("bus_latencies", (1,)),
                    ("n_clusters", 2),
                ),
                kernels=("tomcatv",),
            )
        )
        records = outcome_records(outcome)
        assert records == outcome.figure.records
        assert records is not outcome.figure.records  # defensive copies
        assert all("norm_total" in record for record in records)


class TestNpzRoundTrip:
    SYNTHETIC = [
        {"count": 3, "ratio": 0.25, "label": "a", "opt": 1},
        {"count": 4, "ratio": 1.5, "label": "b", "opt": None},
    ]

    def test_column_typing(self, tmp_path):
        path = records_to_npz(self.SYNTHETIC, tmp_path / "t.npz")
        with np.load(path) as archive:
            assert archive["count"].dtype == np.int64
            assert archive["ratio"].dtype == np.float64
            # int column with a missing value promotes to float64/NaN
            assert archive["opt"].dtype == np.float64
            assert math.isnan(archive["opt"][1])
            assert archive["label"].dtype.kind == "U"

    def test_round_trip(self, tmp_path):
        path = records_to_npz(self.SYNTHETIC, tmp_path / "t.npz")
        loaded = load_npz(path)
        assert loaded[0] == self.SYNTHETIC[0]
        assert loaded[1]["count"] == 4 and loaded[1]["label"] == "b"
        assert math.isnan(loaded[1]["opt"])  # None comes back as NaN

    def test_suffix_is_appended(self, tmp_path):
        path = records_to_npz(self.SYNTHETIC, tmp_path / "bare")
        assert path.suffix == ".npz" and path.exists()

    def test_scenario_records_round_trip(self, tmp_path):
        records = outcome_records(_tiny_outcome())
        loaded = load_npz(records_to_npz(records, tmp_path / "cells.npz"))
        assert loaded == records

    def test_no_pickled_objects(self, tmp_path):
        # allow_pickle=False must be sufficient to read every column.
        path = records_to_npz(outcome_records(_tiny_outcome()), tmp_path / "c")
        with np.load(path, allow_pickle=False) as archive:
            assert archive.files


class TestExportDispatch:
    def test_formats_constant(self):
        assert set(EXPORT_FORMATS) == {"npz", "csv"}

    def test_csv_export_loads_back(self, tmp_path):
        outcome = _tiny_outcome()
        path = export_outcome(outcome, tmp_path / "cells.csv", "csv")
        loaded = load_records(path)
        records = outcome_records(outcome)
        assert len(loaded) == len(records)
        # CSV stringifies; compare on a couple of stable columns
        assert loaded[0]["kernel"] == records[0]["kernel"]
        assert int(loaded[0]["total_cycles"]) == records[0]["total_cycles"]

    def test_npz_export_loads_back(self, tmp_path):
        outcome = _tiny_outcome()
        path = export_outcome(outcome, tmp_path / "cells.npz", "npz")
        assert load_npz(path) == outcome_records(outcome)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown export format"):
            export_records([{"a": 1}], tmp_path / "x", "parquet")

    def test_empty_records_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no records"):
            export_records([], tmp_path / "x.npz", "npz")
