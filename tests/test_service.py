"""End-to-end and unit tests for the experiment service (repro.service).

The expensive part — three ``fig6-smoke`` submissions against one live
server plus the in-process reference run — happens once in a
module-scoped fixture; the tests then assert the ISSUE's acceptance
criteria against it: results bit-identical to ``run_scenario``, the
second identical job answered from the persistent stage stores, and an
engine-override job answered from the engine-agnostic warm-state store.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.harness.grid import ExperimentGrid
from repro.harness.io import figure_payload
from repro.harness.scenarios import (
    GroupSpec,
    MachineSpec,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_listing,
)
from repro.service import (
    DiskBackend,
    JobManager,
    MemoryBackend,
    ServerThread,
    ServiceClient,
    ServiceError,
    export_records,
    load_npz,
    make_backend,
    outcome_records,
)
from repro.service.jobs import Job


def _tiny_spec_dict(name="svc-tiny", kernels=("tomcatv",)):
    return ScenarioSpec(
        name=name,
        description="service test scenario",
        groups=(
            GroupSpec(
                label="unified",
                machine=MachineSpec(preset="unified"),
                scheduler="baseline",
            ),
        ),
        thresholds=(1.0,),
        kernels=tuple(kernels),
        n_iterations=8,
        n_times=2,
    ).to_dict()


@pytest.fixture(scope="module")
def service():
    with ServerThread() as srv:
        yield srv, ServiceClient(srv.url, timeout=120.0)


@pytest.fixture(scope="module")
def smoke_run(service):
    """The acceptance flow: three fig6-smoke jobs against one server."""
    _srv, client = service
    local = run_scenario("fig6-smoke")

    job1 = client.submit(scenario="fig6-smoke")
    events1 = list(client.events(job1["id"]))
    result1 = client.result(job1["id"])

    job2 = client.submit(scenario="fig6-smoke")
    result2 = client.wait(job2["id"])

    job3 = client.submit(scenario="fig6-smoke", sim="scalar")
    result3 = client.wait(job3["id"])

    return {
        "local": local,
        "jobs": (job1, job2, job3),
        "events1": events1,
        "results": (result1, result2, result3),
    }


class TestEndToEnd:
    def test_health_and_scenarios(self, service):
        _srv, client = service
        assert client.health() == {"ok": True}
        # The endpoint and the CLI share one serializer.
        assert client.scenarios() == json.loads(
            json.dumps(scenario_listing())
        )

    def test_event_stream_shape(self, smoke_run):
        events = smoke_run["events1"]
        assert [e["seq"] for e in events] == list(range(len(events)))
        states = [e["state"] for e in events if e["type"] == "state"]
        assert states == ["queued", "running", "done"]
        cells = [e for e in events if e["type"] == "cell"]
        assert cells, "per-cell progress events must stream"
        assert [c["done"] for c in cells] == list(range(1, len(cells) + 1))
        assert cells[-1]["done"] == cells[-1]["total"]
        assert {c["source"] for c in cells} <= {
            "computed", "memory", "disk", "dedup"
        }

    def test_result_bit_identical_to_in_process(self, smoke_run):
        remote = smoke_run["results"][0]["result"]
        assert remote["kind"] == "figure"
        local_payload = json.loads(
            json.dumps(figure_payload(smoke_run["local"].figure))
        )
        assert remote["figure"] == local_payload

    def test_jobs_report_identical_results(self, smoke_run):
        result1, result2, result3 = smoke_run["results"]
        assert result1["result"] == result2["result"]
        # The scalar engine is bit-identical to the vectorized default.
        assert result1["result"] == result3["result"]

    def test_second_job_served_by_stage_stores(self, smoke_run):
        telemetry = smoke_run["results"][1]["telemetry"]
        assert telemetry["store_hits"] > 0
        assert telemetry["stages"]["schedule"]["hits"] > 0
        assert telemetry["stages"]["simulate"]["hits"] > 0
        assert telemetry["stages"]["schedule"]["misses"] == 0
        assert telemetry["stages"]["simulate"]["misses"] == 0

    def test_engine_override_served_by_warm_store(self, smoke_run):
        # The warm-state key excludes the sim engine, the simulate-store
        # key includes it: a scalar re-run re-simulates, but adopts the
        # vectorized run's schedules and warm-up prefixes.
        telemetry = smoke_run["results"][2]["telemetry"]
        assert telemetry["stages"]["schedule"]["hits"] > 0
        assert telemetry["sim_warm_hits"] > 0

    def test_event_cursor_resume_and_replay(self, service, smoke_run):
        _srv, client = service
        job_id = smoke_run["jobs"][0]["id"]
        all_events = list(client.events(job_id, follow=False))
        assert all_events == smoke_run["events1"]
        tail = list(client.events(job_id, cursor=len(all_events) - 1))
        assert tail == all_events[-1:]

    def test_job_listing_and_describe(self, service, smoke_run):
        _srv, client = service
        ids = [job["id"] for job in client.jobs()]
        submitted = [job["id"] for job in smoke_run["jobs"]]
        assert [i for i in ids if i in submitted] == submitted
        description = client.job(submitted[0])
        assert description["state"] == "done"
        assert description["scenario"] == "fig6-smoke"
        assert description["finished"] >= description["started"]

    def test_export_matches_in_process_records(
        self, service, smoke_run, tmp_path
    ):
        _srv, client = service
        job_id = smoke_run["jobs"][0]["id"]
        records = outcome_records(smoke_run["local"])

        npz_path = tmp_path / "remote.npz"
        npz_path.write_bytes(client.export(job_id, "npz"))
        assert load_npz(npz_path) == records

        local_csv = export_records(records, tmp_path / "local.csv", "csv")
        assert client.export(job_id, "csv") == local_csv.read_bytes()

    def test_stats_shape(self, service, smoke_run):
        _srv, client = service
        stats = client.stats()
        assert stats["jobs"]["done"] >= 3
        assert stats["jobs"]["failed"] == 0
        assert stats["scenarios"] == len(scenario_listing())
        grid_stats = list(stats["grids"].values())
        assert grid_stats, "the persistent grid must be reported"
        assert grid_stats[0]["stages"]["schedule"]["hits"] > 0


class TestValidationOverHttp:
    def test_unknown_scenario_is_400(self, service):
        _srv, client = service
        with pytest.raises(ServiceError, match="unknown scenario") as info:
            client.submit(scenario="fig7")
        assert info.value.status == 400

    def test_unknown_submit_key_is_400_and_named(self, service):
        srv, _client = service
        body = json.dumps({"scenario": "fig6-smoke", "prio": 3}).encode()
        request = urllib.request.Request(
            srv.url + "/jobs", data=body, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        assert "'prio'" in json.loads(info.value.read())["error"]

    def test_scenario_and_spec_together_is_400(self, service):
        _srv, client = service
        with pytest.raises(ServiceError, match="exactly one") as info:
            client.submit(scenario="fig6-smoke", spec=_tiny_spec_dict())
        assert info.value.status == 400

    def test_bad_inline_spec_is_400_and_named(self, service):
        _srv, client = service
        spec = _tiny_spec_dict()
        spec["n_iterations"] = "many"
        with pytest.raises(ServiceError, match="'n_iterations'") as info:
            client.submit(spec=spec)
        assert info.value.status == 400

    def test_bad_override_is_400(self, service):
        _srv, client = service
        with pytest.raises(ServiceError, match="'sim'") as info:
            client.submit(scenario="fig6-smoke", sim="quantum")
        assert info.value.status == 400

    def test_malformed_json_body_is_400(self, service):
        srv, _client = service
        request = urllib.request.Request(
            srv.url + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_unknown_job_is_404(self, service):
        _srv, client = service
        with pytest.raises(ServiceError, match="unknown job") as info:
            client.job("deadbeef")
        assert info.value.status == 404

    def test_unknown_route_is_404(self, service):
        _srv, client = service
        with pytest.raises(ServiceError, match="no route") as info:
            client._get_json("/teapots")
        assert info.value.status == 404

    def test_result_before_terminal_is_409(self, service):
        srv, client = service
        # White-box: a job parked in 'queued' (never handed to the
        # worker), so the race-free way to observe the 409.
        job = Job("stalled0409", 9_999, get_scenario("fig6-smoke"), {})
        srv.manager._jobs[job.id] = job
        try:
            with pytest.raises(ServiceError, match="queued") as info:
                client.result(job.id)
            assert info.value.status == 409
            with pytest.raises(ServiceError) as info:
                client.export(job.id)
            assert info.value.status == 409
            events = list(client.events(job.id, follow=False))
            assert [e["state"] for e in events] == ["queued"]
        finally:
            del srv.manager._jobs[job.id]

    def test_bad_export_format_is_400(self, service, smoke_run):
        _srv, client = service
        job_id = smoke_run["jobs"][0]["id"]
        with pytest.raises(ServiceError, match="parquet") as info:
            client.export(job_id, "parquet")
        assert info.value.status == 400

    def test_bad_event_cursor_is_400(self, service, smoke_run):
        _srv, client = service
        job_id = smoke_run["jobs"][0]["id"]
        with pytest.raises(ServiceError, match="cursor") as info:
            client._get_json(f"/jobs/{job_id}/events?cursor=later")
        assert info.value.status == 400


class TestFailedJob:
    def test_failure_is_observable_not_fatal(self, monkeypatch):
        def _boom(*_args, **_kwargs):
            raise RuntimeError("scheduler exploded")

        monkeypatch.setattr("repro.service.jobs.run_scenario", _boom)
        with ServerThread() as srv:
            client = ServiceClient(srv.url)
            job = client.submit(spec=_tiny_spec_dict())
            events = list(client.events(job["id"]))
            assert events[-1]["state"] == "failed"
            assert "scheduler exploded" in events[-1]["error"]
            result = client.result(job["id"])
            assert result["state"] == "failed"
            assert "RuntimeError" in result["error"]
            assert result["result"] is None
            with pytest.raises(ServiceError) as info:
                client.export(job["id"])
            assert info.value.status == 409
            # The service stays alive and healthy after a failed job.
            assert client.health() == {"ok": True}


class TestConcurrency:
    def test_one_grid_survives_two_concurrent_scenarios(self):
        """Two threads drive one grid at once (the service's sharing
        pattern, minus the serializing executor): no exceptions, and
        both results bit-identical to serial reference runs."""
        spec_a = ScenarioSpec.from_dict(_tiny_spec_dict("conc-a", ("tomcatv",)))
        spec_b = ScenarioSpec.from_dict(
            _tiny_spec_dict("conc-b", ("swim", "tomcatv"))
        )
        reference = {
            spec.name: [r.canonical() for r in run_scenario(spec).results]
            for spec in (spec_a, spec_b)
        }
        grid = ExperimentGrid(
            locality=spec_a.locality.build(), cell_cache=False
        )
        outcomes = {}
        errors = []

        def _run(spec):
            try:
                outcomes[spec.name] = run_scenario(spec, grid=grid)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=_run, args=(spec,))
            for spec in (spec_a, spec_b)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for spec in (spec_a, spec_b):
            got = [r.canonical() for r in outcomes[spec.name].results]
            assert got == reference[spec.name]
        assert grid.stats.requested == 3

    def test_concurrent_submissions_both_complete(self, service):
        _srv, client = service
        results = {}

        def _submit(name, kernels):
            job = client.submit(spec=_tiny_spec_dict(name, kernels))
            results[name] = client.wait(job["id"])

        threads = [
            threading.Thread(target=_submit, args=(f"conc-sub-{i}", ("swim",)))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(results) == 2
        first, second = results.values()
        assert first["state"] == second["state"] == "done"
        assert first["result"] == second["result"]


class TestBackends:
    def test_memory_backend_round_trip(self):
        backend = MemoryBackend()
        backend.save({"id": "a", "sequence": 1, "state": "done"})
        backend.save({"id": "b", "sequence": 2, "state": "queued"})
        assert backend.load("a")["state"] == "done"
        assert backend.load("missing") is None
        assert backend.job_ids() == ["a", "b"]
        assert backend.delete("a") and not backend.delete("a")
        assert backend.job_ids() == ["b"]

    def test_disk_backend_round_trip(self, tmp_path):
        backend = DiskBackend(tmp_path / "jobs")
        backend.save({"id": "b", "sequence": 2, "state": "done"})
        backend.save({"id": "a", "sequence": 1, "state": "done"})
        assert backend.load("a")["sequence"] == 1
        assert backend.job_ids() == ["a", "b"]  # creation order, not name
        assert backend.delete("b") and not backend.delete("b")
        assert backend.job_ids() == ["a"]

    def test_disk_backend_tolerates_rot(self, tmp_path):
        backend = DiskBackend(tmp_path)
        (tmp_path / "corrupt.json").write_text("{truncated")
        (tmp_path / "foreign.json").write_text(json.dumps({"id": "other"}))
        assert backend.load("corrupt") is None
        assert backend.load("foreign") is None
        assert backend.job_ids() == []

    def test_make_backend(self, tmp_path):
        assert isinstance(make_backend("memory"), MemoryBackend)
        assert isinstance(make_backend("disk", tmp_path), DiskBackend)
        with pytest.raises(ValueError, match="needs a directory"):
            make_backend("disk")
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("redis")

    def test_served_jobs_persist_through_disk_backend(self, tmp_path):
        manager = JobManager(backend=DiskBackend(tmp_path / "jobs"))
        with ServerThread(manager=manager) as srv:
            client = ServiceClient(srv.url)
            job = client.submit(spec=_tiny_spec_dict("persist"))
            client.wait(job["id"])
        record = DiskBackend(tmp_path / "jobs").load(job["id"])
        assert record["state"] == "done"
        assert record["result"]["kind"] == "grid"
        assert record["telemetry"]["grid"]["computed"] == 1
        assert record["export_records"]


class TestParsePayload:
    def test_non_object_rejected(self):
        manager = JobManager()
        with pytest.raises(ValueError, match="JSON object"):
            manager.parse_payload(["fig6-smoke"])

    def test_unknown_keys_named(self):
        manager = JobManager()
        with pytest.raises(ValueError, match="'priority'"):
            manager.parse_payload(
                {"scenario": "fig6-smoke", "priority": "high"}
            )

    def test_exactly_one_of_scenario_or_spec(self):
        manager = JobManager()
        with pytest.raises(ValueError, match="exactly one"):
            manager.parse_payload({})
        with pytest.raises(ValueError, match="exactly one"):
            manager.parse_payload(
                {"scenario": "fig6-smoke", "spec": _tiny_spec_dict()}
            )

    def test_overrides_validated_and_named(self):
        manager = JobManager()
        with pytest.raises(ValueError, match="'steady'"):
            manager.parse_payload(
                {"scenario": "fig6-smoke", "steady": "sometimes"}
            )
        with pytest.raises(ValueError, match="'sim'"):
            manager.parse_payload({"scenario": "fig6-smoke", "sim": 3})

    def test_valid_payloads_resolve(self):
        manager = JobManager()
        spec, overrides = manager.parse_payload(
            {"scenario": "fig6-smoke", "sim": "scalar"}
        )
        assert spec.name == "fig6-smoke"
        assert overrides == {"sim": "scalar"}
        spec, overrides = manager.parse_payload({"spec": _tiny_spec_dict()})
        assert spec.kernels == ("tomcatv",)
        assert overrides == {}
