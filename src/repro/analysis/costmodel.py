"""Closed-form cycle model of Section 2.2.

The paper models a modulo-scheduled loop's execution as::

    NCYCLE_total   = NCYCLE_compute + NCYCLE_stall
    NCYCLE_compute = NTIMES * (NITER + SC - 1) * II

and the latency of one memory access as::

    LAT = LAT_cache
        + MISS_LC * ( NC_waiting_entry + NC_waiting_bus + LAT_memory_bus
                      + (MISS_RC ? LAT_main_memory : LAT_cache) )

This module provides those formulas directly (useful for analytical
what-ifs and for validating the simulator) plus a *static stall
predictor* that combines a schedule with locality-analyzer miss ratios to
estimate NCYCLE_stall without running the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cme.locality import LocalityAnalyzer
from ..machine.config import MachineConfig
from ..scheduler.result import Schedule

__all__ = [
    "ncycle_compute",
    "memory_access_latency",
    "CyclePrediction",
    "predict_cycles",
]


def ncycle_compute(ii: int, stage_count: int, niter: int, ntimes: int = 1) -> int:
    """``NTIMES * (NITER + SC - 1) * II`` — the static part of the model."""
    if ii < 1 or stage_count < 1:
        raise ValueError("II and SC must be >= 1")
    if niter < 0 or ntimes < 0:
        raise ValueError("iteration counts cannot be negative")
    return ntimes * (niter + stage_count - 1) * ii


def memory_access_latency(
    cache_latency: int,
    miss_local: bool,
    miss_remote: bool,
    memory_bus_latency: int,
    main_memory_latency: int,
    waiting_entry: int = 0,
    waiting_bus: int = 0,
) -> int:
    """The paper's LAT_MemAccess composition for one access.

    ``miss_local`` / ``miss_remote`` are the MISS_LC / MISS_RC binaries:
    an access that hits locally costs only ``cache_latency``; a local
    miss adds MSHR and bus waiting plus the transfer, then either a
    remote-cache access (``miss_remote=False``) or main memory.
    """
    total = cache_latency
    if miss_local:
        fill = main_memory_latency if miss_remote else cache_latency
        total += waiting_entry + waiting_bus + memory_bus_latency + fill
    return total


@dataclass(frozen=True)
class CyclePrediction:
    """Statically predicted cycle breakdown for one schedule."""

    compute_cycles: int
    stall_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.stall_cycles

    @property
    def stall_fraction(self) -> float:
        total = self.total_cycles
        return self.stall_cycles / total if total else 0.0


def predict_cycles(
    schedule: Schedule,
    locality: LocalityAnalyzer,
    niter: Optional[int] = None,
    ntimes: Optional[int] = None,
) -> CyclePrediction:
    """Estimate the cycle breakdown of a schedule without simulating.

    Compute cycles come straight from the closed form.  Stall cycles are
    estimated per load: a load scheduled with the hit latency stalls its
    consumers by ``miss_ratio * (miss_latency - hit_latency)`` per
    iteration (the expected underestimation), where the miss ratio is the
    locality analyzer's estimate for the load among the memory operations
    co-located in its cluster.  Loads already scheduled with the miss
    latency contribute nothing, mirroring the binding-prefetch rationale
    of Section 4.3.  Bus/MSHR contention is not predicted (the paper's
    scheduler cannot know it either) so the prediction is a lower bound
    under bandwidth saturation.
    """
    loop = schedule.kernel.loop
    machine = schedule.machine
    niter = loop.n_iterations if niter is None else niter
    ntimes = loop.n_times if ntimes is None else ntimes
    compute = ncycle_compute(schedule.ii, schedule.stage_count, niter, ntimes)

    stall_per_iter = 0.0
    for name, placement in schedule.placements.items():
        op = loop.operation(name)
        if not op.is_load:
            continue
        has_consumer = any(
            edge.kind == "flow" for edge in schedule.kernel.ddg.out_edges(name)
        )
        if not has_consumer:
            continue
        extra = machine.miss_latency - placement.assumed_latency
        if extra <= 0:
            continue  # binding-prefetched: consumers already wait it out
        cluster_ops = schedule.memory_ops_in_cluster(placement.cluster)
        cache = machine.cluster(placement.cluster).cache
        ratio = locality.miss_ratio(loop, op, cluster_ops, cache)
        stall_per_iter += ratio * extra
    return CyclePrediction(
        compute_cycles=compute,
        stall_cycles=stall_per_iter * niter * ntimes,
    )
