"""Scheduler-facing locality-analysis protocol.

The schedulers only need two statistics (Section 4.2 of the paper):

* the number of misses incurred by a *set* of memory references sharing
  one cache configuration, and
* the miss ratio of one particular memory instruction within that set.

Any object implementing :class:`LocalityAnalyzer` can drive the RMCA
scheduler; the package ships the incremental sampled engine (primary —
the paper's sampled estimator, answered incrementally over shared
traces), the from-scratch sampled reference and a closed-form analytic
model (ablation).

Analyzers may additionally expose the *batched* probe API
(``probe_clusters(loop, op, residents, caches)``) the schedulers use to
answer all candidate clusters' ``resident + [op]`` probes in one sweep;
the schedulers fall back to the per-call protocol when it is absent.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from ..ir.loop import Loop
from ..ir.operations import Operation
from ..machine.config import CacheConfig
from .analytic import AnalyticCME
from .incremental import IncrementalCME
from .sampling import SamplingCME

__all__ = [
    "LocalityAnalyzer",
    "SAMPLED_ENGINES",
    "default_analyzer",
    "locality_fingerprint",
]

#: The two implementations of the sampled estimator, by engine name —
#: the single registry the CLI and the benchmarks select from.  Both are
#: bit-identical and share the ``"sampling"`` fingerprint.
SAMPLED_ENGINES = {
    "incremental": lambda points: IncrementalCME(max_points=points),
    "sampling": lambda points: SamplingCME(max_points=points),
}


@runtime_checkable
class LocalityAnalyzer(Protocol):
    """Protocol both CME backends implement."""

    name: str

    def miss_count(
        self, loop: Loop, ops: Sequence[Operation], cache: CacheConfig
    ) -> float:
        """Misses incurred by ``ops`` sharing one cache over ``loop``."""
        ...

    def miss_ratio(
        self,
        loop: Loop,
        op: Operation,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        """Miss ratio of ``op`` when co-located with ``ops``."""
        ...


def default_analyzer(max_points: int = 2048) -> IncrementalCME:
    """The analyzer used throughout the paper's experiments.

    The incremental engine computes exactly the sampled estimator of
    the paper (bit-identical to :class:`SamplingCME`, enforced by the
    equivalence suites) and shares its ``"sampling"`` fingerprint, so
    grid cache entries and golden recordings are interchangeable
    between the two.
    """
    return IncrementalCME(max_points=max_points)


def locality_fingerprint(analyzer: LocalityAnalyzer) -> str:
    """Stable description of a locality analyzer's configuration.

    Part of every grid cache key: two analyzers with equal fingerprints
    must drive the schedulers to identical decisions.
    """
    name = getattr(analyzer, "name", type(analyzer).__name__)
    max_points = getattr(analyzer, "max_points", None)
    if max_points is not None:
        return f"{name}:{max_points}"
    return str(name)
