"""Tests for the composable cell pipeline (repro.engine)."""

import pytest

from repro.analysis.compare import run_cell
from repro.engine import (
    CELL_EXECUTIONS,
    AnalyzeStage,
    BuildStage,
    CellPipeline,
    CellRequest,
    MeasureStage,
    RunResult,
    ScheduleStage,
    SimulateStage,
    default_stages,
    execute_cell,
    make_scheduler,
)
from repro.machine import four_cluster, two_cluster, unified
from repro.workloads import kernel_by_name

STAGE_NAMES = ["build", "analyze", "schedule", "simulate", "measure"]


class TestPipelineShape:
    def test_default_stage_order(self):
        assert [stage.name for stage in default_stages()] == STAGE_NAMES

    def test_report_records_every_stage(self, saxpy, sampling_cme):
        outcome = execute_cell(
            CellRequest(
                kernel=saxpy,
                machine=unified(),
                scheduler="baseline",
                locality=sampling_cme,
            )
        )
        assert [r.stage for r in outcome.report.records] == STAGE_NAMES
        assert all(r.seconds >= 0 for r in outcome.report.records)
        assert outcome.report.total_seconds == pytest.approx(
            sum(r.seconds for r in outcome.report.records)
        )

    def test_stage_lookup(self, saxpy, sampling_cme):
        outcome = execute_cell(
            CellRequest(
                kernel=saxpy,
                machine=two_cluster(),
                scheduler="rmca",
                threshold=0.25,
                locality=sampling_cme,
            )
        )
        schedule_record = outcome.report.stage("schedule")
        assert schedule_record.stats["ii"] >= schedule_record.stats["mii"]
        assert outcome.report.stage("build").stats["kernel"] == "saxpy"
        with pytest.raises(KeyError, match="no stage 'paint'"):
            outcome.report.stage("paint")

    def test_missing_measure_stage_rejected(self, saxpy, sampling_cme):
        pipeline = CellPipeline(
            [BuildStage(), AnalyzeStage(), ScheduleStage(), SimulateStage()]
        )
        with pytest.raises(RuntimeError, match="without producing a result"):
            pipeline.run(
                CellRequest(
                    kernel=saxpy,
                    machine=unified(),
                    scheduler="baseline",
                    locality=sampling_cme,
                )
            )


class TestPipelineSemantics:
    def test_matches_run_cell_shim(self, stencil, sampling_cme):
        """The shim and the pipeline are the same computation."""
        via_pipeline = execute_cell(
            CellRequest(
                kernel=stencil,
                machine=two_cluster(),
                scheduler="rmca",
                threshold=0.25,
                locality=sampling_cme,
            )
        ).result
        via_shim = run_cell(
            stencil, two_cluster(), "rmca", 0.25, sampling_cme
        )
        assert isinstance(via_shim, RunResult)
        assert via_pipeline.canonical() == via_shim.canonical()

    def test_kernel_resolved_by_suite_name(self, sampling_cme):
        outcome = execute_cell(
            CellRequest(
                kernel="applu",
                machine=unified(),
                scheduler="baseline",
                locality=sampling_cme,
            )
        )
        assert outcome.result.kernel == "applu"

    def test_kernel_resolved_from_registry(self, saxpy, sampling_cme):
        outcome = execute_cell(
            CellRequest(
                kernel="saxpy",
                machine=unified(),
                scheduler="baseline",
                locality=sampling_cme,
                kernels={"saxpy": saxpy},
            )
        )
        assert outcome.result.kernel == "saxpy"

    def test_unknown_kernel_name_rejected(self, sampling_cme):
        with pytest.raises(KeyError, match="unknown kernel"):
            execute_cell(
                CellRequest(
                    kernel="gcc",
                    machine=unified(),
                    scheduler="baseline",
                    locality=sampling_cme,
                )
            )

    def test_unknown_scheduler_rejected(self, saxpy, sampling_cme):
        with pytest.raises(KeyError, match="unknown scheduler"):
            execute_cell(
                CellRequest(
                    kernel=saxpy,
                    machine=unified(),
                    scheduler="greedy",
                    locality=sampling_cme,
                )
            )

    def test_execution_counter_increments(self, saxpy, sampling_cme):
        before = CELL_EXECUTIONS.count
        execute_cell(
            CellRequest(
                kernel=saxpy,
                machine=unified(),
                scheduler="baseline",
                locality=sampling_cme,
            )
        )
        assert CELL_EXECUTIONS.count == before + 1

    def test_default_analyzer_when_none_given(self, saxpy):
        outcome = execute_cell(
            CellRequest(
                kernel=saxpy, machine=unified(), scheduler="baseline"
            )
        )
        assert "sampling" in str(
            outcome.report.stage("analyze").stats["analyzer"]
        )


class TestExactFlag:
    def test_exact_disables_memoization(self, sampling_cme):
        kernel = kernel_by_name("tomcatv")
        request = CellRequest(
            kernel=kernel,
            machine=four_cluster(),
            scheduler="baseline",
            locality=sampling_cme,
            exact=True,
        )
        stats = execute_cell(request).report.stage("simulate").stats
        assert stats["exact"] is True
        assert stats["entries_replayed"] == 0

    def test_memoized_reports_replay_and_matches_exact(self, sampling_cme):
        kernel = kernel_by_name("tomcatv")
        base = dict(
            kernel=kernel,
            machine=four_cluster(),
            scheduler="baseline",
            locality=sampling_cme,
        )
        memo = execute_cell(CellRequest(**base))
        exact = execute_cell(CellRequest(**base, exact=True))
        stats = memo.report.stage("simulate").stats
        assert stats["entries_replayed"] > 0
        assert stats["steady_state_period"] >= 1
        assert (
            stats["entries_simulated"] + stats["entries_replayed"]
            == stats["entries"]
        )
        assert memo.result.canonical() == exact.result.canonical()

    def test_iteration_overrides_flow_through(self, saxpy, sampling_cme):
        outcome = execute_cell(
            CellRequest(
                kernel=saxpy,
                machine=unified(),
                scheduler="baseline",
                locality=sampling_cme,
                n_iterations=8,
                n_times=2,
            )
        )
        assert outcome.result.simulation.n_iterations == 8
        assert outcome.result.simulation.n_times == 2


class TestCompatibilityExports:
    def test_compare_reexports_engine_objects(self):
        from repro.analysis import compare

        assert compare.RunResult is RunResult
        assert compare.make_scheduler is make_scheduler
        assert compare.CELL_EXECUTIONS is CELL_EXECUTIONS
