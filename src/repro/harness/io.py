"""Result serialization: CSV and JSON export of experiment records.

Figures return per-kernel record dictionaries (see
:class:`~repro.harness.sweep.FigureData`); these helpers persist them so
external tooling (spreadsheets, plotting) can consume the sweeps without
re-running them.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .sweep import FigureData

__all__ = [
    "records_to_csv",
    "records_to_json",
    "figure_to_csv",
    "figure_payload",
    "figure_to_json",
    "load_records",
]

PathLike = Union[str, pathlib.Path]


def _fieldnames(records: Sequence[Dict[str, object]]) -> List[str]:
    names: Dict[str, None] = {}
    for record in records:
        for key in record:
            names.setdefault(key, None)
    return list(names)


def records_to_csv(
    records: Sequence[Dict[str, object]], path: PathLike
) -> pathlib.Path:
    """Write record dictionaries as CSV (union of keys as the header)."""
    path = pathlib.Path(path)
    if not records:
        raise ValueError("no records to write")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_fieldnames(records))
        writer.writeheader()
        writer.writerows(records)
    return path


def records_to_json(
    records: Sequence[Dict[str, object]], path: PathLike
) -> pathlib.Path:
    """Write record dictionaries as a JSON array."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(list(records), indent=1, sort_keys=True))
    return path


def figure_to_csv(figure: FigureData, path: PathLike) -> pathlib.Path:
    """Persist a figure's per-kernel records as CSV."""
    return records_to_csv(figure.records, path)


def figure_payload(figure: FigureData) -> Dict[str, object]:
    """A figure (title, bars and records) as a JSON-serializable dict.

    The single serialization both :func:`figure_to_json` and the
    experiment service's result payloads use — byte-identical figure
    JSON whichever path produced it.
    """
    return {
        "title": figure.title,
        "bars": [
            {
                "group": bar.group,
                "scheduler": bar.scheduler,
                "threshold": bar.threshold,
                "norm_compute": bar.norm_compute,
                "norm_stall": bar.norm_stall,
                "norm_total": bar.norm_total,
            }
            for bar in figure.bars
        ],
        "records": figure.records,
    }


def figure_to_json(figure: FigureData, path: PathLike) -> pathlib.Path:
    """Persist a figure (title, bars and records) as JSON."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(figure_payload(figure), indent=1, sort_keys=True)
    )
    return path


def load_records(path: PathLike) -> List[Dict[str, object]]:
    """Read records back from a CSV or JSON file (by extension)."""
    path = pathlib.Path(path)
    if path.suffix == ".json":
        data = json.loads(path.read_text())
        if isinstance(data, dict):
            return list(data.get("records", []))
        return list(data)
    if path.suffix == ".csv":
        with path.open() as handle:
            return [dict(row) for row in csv.DictReader(handle)]
    raise ValueError(f"unsupported extension {path.suffix!r}")
