"""Record the PR 5 vectorized-simulate win: simulate-stage seconds for
the scalar reference vs the vectorized engine on the fig6, streaming and
streaming-long scenarios.

Runs each scenario once per simulate engine — the per-instance scalar
reference (``LockstepSimulator``) and the array-at-a-time vectorized
engine (``VectorizedSimulator``) — on a cold, cache-disabled, single-job
grid with steady-state detection in its default ``auto`` mode and the
incremental CME analyzer (the PR 4 default).  Results must be identical
across engines (bars for figure scenarios, per-cell cycle/stall/memory
digests for grid scenarios); timings, the per-stage second split (the
simulate stage is where the engines differ) and the derived speedups go
to ``benchmarks/BENCH_pr5.json``.

The acceptance bar of PR 5 is the **simulate-stage** speedup against the
PR 4 recording (``benchmarks/BENCH_pr4.json``, same container/protocol):
>= 2x on fig6 with bit-identical figures.  The in-run scalar/vectorized
A/B is quoted alongside — conservative, because the scalar side already
benefits from this PR's shared-path work (ready-ring, numpy instance
tables, affine entry tables, wider steady-state detection coverage).

Usage::

    PYTHONPATH=src python benchmarks/record_perf.py [--out PATH]
        [--skip-fig6] [--repeats N]

Single-job on purpose: the point is the per-cell speedup, not process
fan-out (which composes with it).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import get_scenario, run_scenario

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_pr5.json"
PR4_RECORDING = pathlib.Path(__file__).parent / "BENCH_pr4.json"

#: The engines under comparison; both are bit-identical lockstep models.
SIM_ENGINES = ("scalar", "vectorized")


def _digest(outcome):
    """Engine-independent fingerprint of a scenario's results."""
    if outcome.figure is not None:
        return [
            (bar.group, bar.scheduler, bar.threshold,
             bar.norm_compute, bar.norm_stall)
            for bar in outcome.figure.bars
        ]
    return [
        (result.kernel, result.machine, result.scheduler, result.threshold,
         result.total_cycles, result.stall_cycles,
         result.simulation.memory.as_dict())
        for result in outcome.results
    ]


def _measure(scenario_name: str, sim: str, repeats: int) -> dict:
    scenario = get_scenario(scenario_name)
    best = None
    for _ in range(repeats):
        grid = ExperimentGrid(locality=scenario.locality.build(), cache=False)
        start = time.perf_counter()
        outcome = run_scenario(scenario, grid=grid, steady="auto", sim=sim)
        seconds = time.perf_counter() - start
        sample = {
            "seconds": round(seconds, 3),
            "cells_requested": grid.stats.requested,
            "cells_computed": grid.stats.computed,
            "stage_seconds": {
                stage: round(value, 3)
                for stage, value in grid.stats.stage_seconds.items()
            },
            "digest": _digest(outcome),
        }
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    return best


def _pr4_baseline() -> dict:
    """Quote the PR 4 recording (same protocol) when it is available."""
    if not PR4_RECORDING.exists():
        return {"note": "BENCH_pr4.json not found"}
    data = json.loads(PR4_RECORDING.read_text())
    quoted = {}
    for name, entry in data.get("scenarios", {}).items():
        run = entry.get("engines", {}).get("incremental", {})
        quoted[name] = {
            "seconds": run.get("seconds"),
            "simulate_stage_seconds": run.get("stage_seconds", {}).get(
                "simulate"
            ),
        }
    return quoted


def record(scenarios, out: pathlib.Path, repeats: int) -> dict:
    results = {}
    for name in scenarios:
        runs = {}
        for sim in SIM_ENGINES:
            print(f"[{name}] sim={sim} ...", flush=True)
            runs[sim] = _measure(name, sim, repeats)
            print(
                f"[{name}]   {runs[sim]['seconds']}s "
                f"(simulate "
                f"{runs[sim]['stage_seconds'].get('simulate')}s), "
                f"{runs[sim]['cells_computed']} cells computed",
                flush=True,
            )
        reference = runs["scalar"]["digest"]
        for sim, run in runs.items():
            if run["digest"] != reference:
                raise AssertionError(
                    f"{name}: sim={sim} results diverge from the scalar "
                    f"reference"
                )
            del run["digest"]
        simulate_ref = runs["scalar"]["stage_seconds"].get("simulate")
        simulate_vec = runs["vectorized"]["stage_seconds"].get("simulate")
        results[name] = {
            "sims": runs,
            "speedup_total": round(
                runs["scalar"]["seconds"]
                / runs["vectorized"]["seconds"], 2
            ),
            #: In-run engine A/B — conservative: the 'scalar' side
            #: already benefits from this PR's shared-path work
            #: (ready-ring, numpy instance tables, affine entry tables,
            #: live-scar detection coverage), so this isolates the
            #: batched walk alone.
            "speedup_simulate_stage": (
                round(simulate_ref / simulate_vec, 2)
                if simulate_ref is not None
                and simulate_vec  # 0.0 denominator: unmeasurably fast
                else None
            ),
        }
    pr4 = _pr4_baseline()
    for name, entry in results.items():
        before = (pr4.get(name) or {}).get("simulate_stage_seconds")
        after = entry["sims"]["vectorized"]["stage_seconds"].get("simulate")
        #: The PR's actual before/after: PR 4 code vs this PR, same
        #: protocol.  This is the acceptance number.
        entry["speedup_simulate_vs_pr4"] = (
            round(before / after, 2)
            if before is not None
            and after  # 0.0 denominator: unmeasurably fast
            else None
        )
    payload = {
        "pr": 5,
        "protocol": (
            "single-job ExperimentGrid, cell cache disabled, steady=auto, "
            "incremental CME analyzer, best of "
            f"{repeats} cold runs per engine, identical results asserted "
            "across engines; 'scalar' is the per-instance reference walk, "
            "'vectorized' the batched array-at-a-time engine (both "
            "bit-identical lockstep models)"
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "pr4_baseline": pr4,
        "scenarios": results,
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--skip-fig6", action="store_true",
        help="record only the streaming suites (fig6 is the larger grid)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold runs per engine; the fastest is recorded (default: 3)",
    )
    args = parser.parse_args(argv)
    scenarios = ["streaming", "streaming-long"]
    if not args.skip_fig6:
        scenarios.append("fig6-2cluster")
    payload = record(scenarios, args.out, args.repeats)
    failed = False
    for name, entry in payload["scenarios"].items():
        # The acceptance number is the PR's before/after (PR 4 recording
        # vs this PR); the in-run engine A/B is quoted alongside as the
        # engine-isolated view.  streaming-long is new in this PR, so it
        # only has the in-run comparison.
        speedup = entry.get("speedup_simulate_vs_pr4")
        if speedup is None:
            speedup = entry["speedup_simulate_stage"]
        print(
            f"{name}: simulate stage {speedup}x vs PR 4 "
            f"({entry['speedup_simulate_stage']}x vs in-run scalar)"
        )
        if name == "fig6-2cluster" and (speedup is None or speedup < 2.0):
            print(
                f"WARNING: {name} simulate-stage speedup is "
                f"{speedup}x (< 2x)"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
