"""The long-running experiment service.

``repro serve`` turns the experiment stack into a persistent asyncio
HTTP service: one warm process owns the
:class:`~repro.harness.grid.ExperimentGrid` and its content-addressed
stores (trace, warm-state, per-stage results) across every job it runs,
so the second submission of a scenario — or the first submission of a
*neighbouring* one — reuses analyze/schedule/simulate products instead
of recomputing them the way a fresh CLI process would.

Layering (each module usable on its own):

* :mod:`repro.service.http` — a minimal zero-dependency HTTP/1.1 layer
  over ``asyncio`` streams (request parsing, JSON responses, NDJSON
  streaming);
* :mod:`repro.service.backend` — the pluggable :class:`ResultBackend`
  protocol for job-record persistence (in-proc dict → disk directory);
* :mod:`repro.service.jobs` — the :class:`JobManager` that owns the
  persistent grid, runs jobs off the event loop and publishes per-cell
  progress events;
* :mod:`repro.service.server` — the endpoint routing and the asyncio
  server (:class:`ExperimentServer`, plus the test-friendly
  :class:`ServerThread`);
* :mod:`repro.service.export` — npz/csv quick-look artifacts from any
  result set;
* :mod:`repro.service.client` — the stdlib ``urllib`` client behind
  ``repro submit`` and the end-to-end tests.
"""

from .backend import BACKEND_KINDS, DiskBackend, MemoryBackend, ResultBackend, make_backend
from .client import ServiceClient, ServiceError
from .export import (
    EXPORT_FORMATS,
    export_outcome,
    export_records,
    load_npz,
    outcome_records,
    records_to_npz,
)
from .jobs import Job, JobManager
from .server import ExperimentServer, ServerThread, run_server

__all__ = [
    "BACKEND_KINDS",
    "DiskBackend",
    "EXPORT_FORMATS",
    "ExperimentServer",
    "Job",
    "JobManager",
    "MemoryBackend",
    "ResultBackend",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "export_outcome",
    "export_records",
    "load_npz",
    "make_backend",
    "outcome_records",
    "records_to_npz",
    "run_server",
]
