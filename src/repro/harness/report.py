"""Plain-text tables for experiment output.

Every benchmark prints the rows the paper's tables/figures report; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_float", "figure_table"]


def format_float(value: object, digits: int = 3) -> str:
    """Uniform float rendering (ints and strings pass through)."""
    if isinstance(value, bool) or not isinstance(value, float):
        return str(value)
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    digits: int = 3,
) -> str:
    """Render an ASCII table with a header rule and aligned columns."""
    rendered = [[format_float(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def figure_table(figure, digits: int = 3) -> str:
    """Tabulate a :class:`~repro.harness.sweep.FigureData`'s bars."""
    headers = ["group", "scheduler", "threshold", "compute", "stall", "total"]
    rows = [
        (
            bar.group,
            bar.scheduler,
            bar.threshold,
            bar.norm_compute,
            bar.norm_stall,
            bar.norm_total,
        )
        for bar in figure.bars
    ]
    return f"{figure.title}\n" + format_table(headers, rows, digits)
