"""Tests for result serialization (CSV/JSON)."""

import json

import pytest

from repro.harness.io import (
    figure_to_csv,
    figure_to_json,
    load_records,
    records_to_csv,
    records_to_json,
)
from repro.harness.sweep import Bar, FigureData


@pytest.fixture
def records():
    return [
        {"kernel": "a", "total": 10, "norm": 1.0},
        {"kernel": "b", "total": 20, "norm": 2.0},
    ]


@pytest.fixture
def figure(records):
    figure = FigureData(title="T")
    figure.bars.append(
        Bar(group="g", scheduler="rmca", threshold=0.0,
            norm_compute=0.3, norm_stall=0.1)
    )
    figure.records = records
    return figure


class TestCsv:
    def test_roundtrip(self, records, tmp_path):
        path = records_to_csv(records, tmp_path / "r.csv")
        loaded = load_records(path)
        assert len(loaded) == 2
        assert loaded[0]["kernel"] == "a"
        assert loaded[1]["total"] == "20"  # CSV strings

    def test_union_of_keys(self, tmp_path):
        path = records_to_csv(
            [{"a": 1}, {"a": 2, "b": 3}], tmp_path / "r.csv"
        )
        loaded = load_records(path)
        assert set(loaded[0]) == {"a", "b"}

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no records"):
            records_to_csv([], tmp_path / "r.csv")


class TestJson:
    def test_roundtrip(self, records, tmp_path):
        path = records_to_json(records, tmp_path / "r.json")
        loaded = load_records(path)
        assert loaded == records

    def test_figure_json_structure(self, figure, tmp_path):
        path = figure_to_json(figure, tmp_path / "f.json")
        payload = json.loads(path.read_text())
        assert payload["title"] == "T"
        assert payload["bars"][0]["scheduler"] == "rmca"
        assert payload["bars"][0]["norm_total"] == pytest.approx(0.4)
        assert len(payload["records"]) == 2

    def test_figure_json_loads_records(self, figure, tmp_path):
        path = figure_to_json(figure, tmp_path / "f.json")
        assert len(load_records(path)) == 2

    def test_figure_csv(self, figure, tmp_path):
        path = figure_to_csv(figure, tmp_path / "f.csv")
        assert len(load_records(path)) == 2


class TestLoadErrors:
    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("x")
        with pytest.raises(ValueError, match="unsupported"):
            load_records(path)
