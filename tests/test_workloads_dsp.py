"""Tests for the DSP/multimedia kernel suite."""

import pytest

from repro.cme.reuse import analyze_reuse
from repro.machine import four_cluster, two_cluster, unified
from repro.scheduler import BaselineScheduler, RMCAScheduler
from repro.scheduler.mii import rec_mii, res_mii
from repro.cme import SamplingCME
from repro.simulator import simulate
from repro.workloads import DSP_KERNELS, dsp_suite


class TestRegistry:
    def test_six_kernels(self):
        assert list(DSP_KERNELS) == [
            "fir", "iir", "dotprod", "vecsum", "complex_mac", "autocorr",
        ]

    def test_subset(self):
        assert [k.name for k in dsp_suite(["iir", "fir"])] == ["iir", "fir"]

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            dsp_suite(["mp3"])


class TestStructure:
    @pytest.mark.parametrize("name", list(DSP_KERNELS))
    def test_wellformed(self, name):
        kernel = DSP_KERNELS[name]()
        loop = kernel.loop
        assert loop.memory_operations
        for op in loop.memory_operations:
            loop.ref_of(op)
        for point in loop.iteration_points(limit=32):
            for ref in loop.refs:
                element = ref.element(point)
                for index, extent in zip(element, ref.array.shape):
                    assert 0 <= index < extent

    def test_fir_group_reuse_chain(self):
        kernel = DSP_KERNELS["fir"]()
        infos = analyze_reuse(kernel.loop.refs, kernel.loop, 32)
        followers = [info for info in infos if info.group_leaders]
        # Taps within one line of each other reuse the leader's lines.
        assert len(followers) >= 3

    def test_iir_recurrence_bounds_ii(self):
        kernel = DSP_KERNELS["iir"]()
        machine = unified()
        # Feedback path out -> fb1 -> fbsum -> out: 2+2+2 over distance 1.
        assert rec_mii(kernel.ddg, machine) == 6

    def test_dotprod_reduction_recurrence(self):
        kernel = DSP_KERNELS["dotprod"]()
        assert rec_mii(kernel.ddg, unified()) == 2

    def test_fir_is_fp_bound(self):
        kernel = DSP_KERNELS["fir"]()
        machine = four_cluster()
        # 15 FP ops on 4 FP units dominate 9 memory ops on 4 units.
        assert res_mii(kernel.ddg, machine) == 4

    def test_autocorr_lag_pair_uniform(self):
        kernel = DSP_KERNELS["autocorr"]()
        ref_a, ref_b = kernel.loop.refs
        assert ref_a.is_uniformly_generated_with(ref_b)
        assert ref_b.constant_distance_to(ref_a) == (-16,)


class TestScheduling:
    @pytest.mark.parametrize("name", list(DSP_KERNELS))
    def test_schedulable_everywhere(self, name):
        kernel = DSP_KERNELS[name]()
        for machine in (unified(), two_cluster(), four_cluster()):
            schedule = BaselineScheduler().schedule(kernel, machine)
            schedule.validate()

    @pytest.mark.parametrize("name", ["fir", "complex_mac"])
    def test_rmca_simulates(self, name):
        kernel = DSP_KERNELS[name]()
        locality = SamplingCME(max_points=256)
        schedule = RMCAScheduler(locality).schedule(kernel, two_cluster())
        schedule.validate()
        result = simulate(schedule)
        assert result.total_cycles > 0

    def test_iir_ii_equals_recmii_on_unified(self):
        kernel = DSP_KERNELS["iir"]()
        schedule = BaselineScheduler().schedule(kernel, unified())
        assert schedule.ii == schedule.rec_mii == 6

    def test_hot_kernels_mostly_hit(self):
        """DSP working sets fit the 8KB unified cache: few misses after
        warmup."""
        kernel = DSP_KERNELS["vecsum"]()
        schedule = BaselineScheduler().schedule(kernel, unified())
        result = simulate(schedule)
        # 3 streams x 4KB footprint on 8KB: X and Y fit, Z collides with
        # X; still most accesses hit.
        assert result.memory.local_miss_ratio < 0.6
