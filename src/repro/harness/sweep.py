"""Experiment sweeps reproducing the paper's evaluation (Section 5).

The two figure generators mirror the paper's methodology:

* every cell schedules all suite kernels with one scheduler and one
  miss threshold on one machine, simulates them, and normalizes each
  kernel's total cycles to the Unified reference (threshold 1.00),
* bars average the normalized compute and stall components over kernels
  (the paper reports "normalized number of cycles averaged for all
  benchmarks" with each bar split into compute and stall).

:func:`figure5` sweeps register-bus × memory-bus latencies with an
*unbounded* number of buses (Section 5.2); :func:`figure6` fixes
2 register buses @ 1 cycle and sweeps the number and latency of memory
buses (Section 5.3).

Both figures enumerate their cells as :class:`~repro.harness.grid.CellSpec`
grids and submit them through one
:class:`~repro.harness.grid.ExperimentGrid` run, so cells shared between
sweeps (most importantly the Unified normalization reference) are
computed once, and ``n_jobs > 1`` fans the whole figure out over worker
processes without changing any result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.compare import RunResult
from ..cme.locality import LocalityAnalyzer
from ..ir.builder import Kernel
from ..machine.config import BusConfig, MachineConfig
from ..machine.presets import four_cluster, two_cluster, unified
from ..simulator import DEFAULT_SIM_ENGINE
from ..workloads.suite import spec_suite
from .grid import (
    CellSpec,
    ExperimentGrid,
    ProgressCallback,
    locality_fingerprint,
)

__all__ = [
    "Bar",
    "FigureData",
    "DEFAULT_THRESHOLDS",
    "unified_reference",
    "suite_bar",
    "figure5",
    "figure6",
]

DEFAULT_THRESHOLDS: Tuple[float, ...] = (1.0, 0.75, 0.25, 0.0)

_CLUSTER_PRESETS = {2: two_cluster, 4: four_cluster}

#: The bandwidth-free memory system the normalization reference runs on.
_REFERENCE_BUS = BusConfig(count=None, latency=1)


@dataclass(frozen=True)
class Bar:
    """One averaged bar of a figure (compute + stall, normalized)."""

    group: str
    scheduler: str
    threshold: float
    norm_compute: float
    norm_stall: float

    @property
    def norm_total(self) -> float:
        return self.norm_compute + self.norm_stall

    @property
    def label(self) -> str:
        return f"{self.group} {self.scheduler} thr={self.threshold:.2f}"


@dataclass
class FigureData:
    """All bars of one figure plus the raw per-kernel records."""

    title: str
    bars: List[Bar] = field(default_factory=list)
    records: List[Dict[str, object]] = field(default_factory=list)

    def bars_in_group(self, group: str) -> List[Bar]:
        return [bar for bar in self.bars if bar.group == group]

    def bar(self, group: str, scheduler: str, threshold: float) -> Bar:
        for candidate in self.bars:
            if (
                candidate.group == group
                and candidate.scheduler == scheduler
                and math.isclose(
                    candidate.threshold, threshold,
                    rel_tol=1e-9, abs_tol=1e-9,
                )
            ):
                return candidate
        raise KeyError(f"no bar ({group!r}, {scheduler!r}, {threshold})")

    @property
    def groups(self) -> List[str]:
        seen: Dict[str, None] = {}
        for bar in self.bars:
            seen.setdefault(bar.group, None)
        return list(seen)


def _resolve_grid(
    locality: Optional[LocalityAnalyzer],
    grid: Optional[ExperimentGrid],
    n_jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentGrid:
    """The grid a sweep runs on; refuses silently-conflicting analyzers.

    An explicit ``grid`` carries its own analyzer, so a ``locality``
    argument naming a *different* configuration would be ignored —
    raise instead of computing bars the caller didn't ask for.
    """
    if grid is None:
        return ExperimentGrid(
            locality=locality, n_jobs=n_jobs, progress=progress
        )
    if locality is not None and locality_fingerprint(
        locality
    ) != locality_fingerprint(grid.locality):
        raise ValueError(
            f"conflicting locality analyzers: the sweep was given "
            f"{locality_fingerprint(locality)!r} but the grid runs "
            f"{locality_fingerprint(grid.locality)!r}; pass one or the "
            f"other"
        )
    return grid


def _aggregate(
    group: str,
    kernels: Sequence[Kernel],
    results: Sequence[RunResult],
    scheduler: str,
    threshold: float,
    reference: Dict[str, int],
) -> Tuple[Bar, List[Dict[str, object]]]:
    """Average one bar's per-kernel cells (fixed kernel order)."""
    records: List[Dict[str, object]] = []
    compute_sum = 0.0
    stall_sum = 0.0
    for kernel, result in zip(kernels, results):
        denom = reference[kernel.name]
        compute_sum += result.compute_cycles / denom
        stall_sum += result.stall_cycles / denom
        records.append(
            {
                "group": group,
                **result.simulation.as_dict(),
                "norm_compute": result.compute_cycles / denom,
                "norm_stall": result.stall_cycles / denom,
                "norm_total": result.total_cycles / denom,
            }
        )
    n = len(kernels)
    bar = Bar(
        group=group,
        scheduler=scheduler,
        threshold=threshold,
        norm_compute=compute_sum / n,
        norm_stall=stall_sum / n,
    )
    return bar, records


def unified_reference(
    kernels: Sequence[Kernel],
    locality: Optional[LocalityAnalyzer] = None,
    memory_bus: Optional[BusConfig] = None,
    grid: Optional[ExperimentGrid] = None,
    steady: str = "auto",
    sim: str = DEFAULT_SIM_ENGINE,
) -> Dict[str, int]:
    """Per-kernel total cycles on Unified at threshold 1.00.

    This is the figures' normalization denominator.  The memory bus
    defaults to an unbounded 1-cycle pool so the reference measures the
    machine, not bus starvation; pass an explicit bus to reproduce a
    bandwidth-limited reference.
    """
    grid = _resolve_grid(locality, grid)
    grid.register(kernels)
    machine = unified(
        memory_bus=_REFERENCE_BUS if memory_bus is None else memory_bus
    )
    specs = [
        CellSpec.of(kernel, machine, "baseline", 1.0, steady=steady, sim=sim)
        for kernel in kernels
    ]
    results = grid.run(specs)
    return {
        kernel.name: result.total_cycles
        for kernel, result in zip(kernels, results)
    }


def suite_bar(
    group: str,
    kernels: Sequence[Kernel],
    machine: MachineConfig,
    scheduler: str,
    threshold: float,
    locality: Optional[LocalityAnalyzer],
    reference: Dict[str, int],
    grid: Optional[ExperimentGrid] = None,
    steady: str = "auto",
    sim: str = DEFAULT_SIM_ENGINE,
) -> Tuple[Bar, List[Dict[str, object]]]:
    """Run one bar's cells (through the grid) and average them."""
    grid = _resolve_grid(locality, grid)
    grid.register(kernels)
    specs = [
        CellSpec.of(kernel, machine, scheduler, threshold, steady=steady, sim=sim)
        for kernel in kernels
    ]
    results = grid.run(specs)
    return _aggregate(
        group, kernels, results, scheduler, threshold, reference
    )


def _assemble_figure(
    title: str,
    kernels: Sequence[Kernel],
    thresholds: Sequence[float],
    unified_machine: MachineConfig,
    groups: Sequence[Tuple[str, MachineConfig, str]],
    grid: ExperimentGrid,
    steady: str = "auto",
    sim: str = DEFAULT_SIM_ENGINE,
) -> FigureData:
    """Enumerate every cell of a figure, run them in one grid wave.

    ``groups`` lists ``(group name, machine, scheduler)`` in figure
    order; the Unified reference cells lead the submission so their
    totals normalize everything else.  Bar and record ordering is fully
    determined by the enumeration, never by completion order.
    """
    grid.register(kernels)
    reference_machine = unified(memory_bus=_REFERENCE_BUS)
    specs: List[CellSpec] = [
        CellSpec.of(
            kernel, reference_machine, "baseline", 1.0, steady=steady, sim=sim
        )
        for kernel in kernels
    ]
    bar_plan: List[Tuple[str, str, float, int]] = []

    def plan(
        group: str, machine: MachineConfig, scheduler: str, threshold: float
    ) -> None:
        bar_plan.append((group, scheduler, threshold, len(specs)))
        specs.extend(
            CellSpec.of(
                kernel, machine, scheduler, threshold, steady=steady, sim=sim
            )
            for kernel in kernels
        )

    for threshold in thresholds:
        plan("unified", unified_machine, "baseline", threshold)
    for group, machine, scheduler in groups:
        for threshold in thresholds:
            plan(group, machine, scheduler, threshold)

    results = grid.run(specs)
    n = len(kernels)
    reference = {
        kernel.name: result.total_cycles
        for kernel, result in zip(kernels, results[:n])
    }
    figure = FigureData(title=title)
    for group, scheduler, threshold, start in bar_plan:
        bar, records = _aggregate(
            group,
            kernels,
            results[start:start + n],
            scheduler,
            threshold,
            reference,
        )
        figure.bars.append(bar)
        figure.records.extend(records)
    return figure


def figure5(
    n_clusters: int = 2,
    latencies: Sequence[int] = (1, 2, 4),
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    kernels: Optional[Sequence[Kernel]] = None,
    locality: Optional[LocalityAnalyzer] = None,
    grid: Optional[ExperimentGrid] = None,
    n_jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    steady: str = "auto",
    sim: str = DEFAULT_SIM_ENGINE,
) -> FigureData:
    """Figure 5: unbounded buses, LRB × LMB latency sweep.

    Groups are named ``LRB=x,LMB=y baseline|rmca`` plus the leading
    ``unified`` group; each group holds one bar per threshold.  Pass a
    shared :class:`ExperimentGrid` (or ``n_jobs``/``progress`` to build
    one) to parallelize and to reuse cached cells across figures.
    """
    if n_clusters not in _CLUSTER_PRESETS:
        raise ValueError(f"n_clusters must be one of {sorted(_CLUSTER_PRESETS)}")
    kernels = list(kernels) if kernels is not None else spec_suite()
    grid = _resolve_grid(locality, grid, n_jobs, progress)
    preset = _CLUSTER_PRESETS[n_clusters]
    groups: List[Tuple[str, MachineConfig, str]] = []
    for lrb in latencies:
        for lmb in latencies:
            machine = preset(
                register_bus=BusConfig(count=None, latency=lrb),
                memory_bus=BusConfig(count=None, latency=lmb),
            )
            for scheduler in ("baseline", "rmca"):
                groups.append(
                    (f"LRB={lrb},LMB={lmb} {scheduler}", machine, scheduler)
                )
    return _assemble_figure(
        title=f"Figure 5 ({n_clusters}-cluster): unbounded buses",
        kernels=kernels,
        thresholds=thresholds,
        unified_machine=unified(memory_bus=_REFERENCE_BUS),
        groups=groups,
        grid=grid,
        steady=steady,
        sim=sim,
    )


def figure6(
    n_clusters: int = 2,
    bus_counts: Sequence[int] = (1, 2),
    bus_latencies: Sequence[int] = (1, 4),
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    kernels: Optional[Sequence[Kernel]] = None,
    locality: Optional[LocalityAnalyzer] = None,
    grid: Optional[ExperimentGrid] = None,
    n_jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    steady: str = "auto",
    sim: str = DEFAULT_SIM_ENGINE,
) -> FigureData:
    """Figure 6: realistic buses — 2 register buses @ 1 cycle, NMB × LMB.

    Groups are named ``NMB=n,LMB=y baseline|rmca`` plus ``unified``
    (which shares the clustered runs' single-bus memory system so the
    comparison isolates clustering, not bus bandwidth).
    """
    if n_clusters not in _CLUSTER_PRESETS:
        raise ValueError(f"n_clusters must be one of {sorted(_CLUSTER_PRESETS)}")
    kernels = list(kernels) if kernels is not None else spec_suite()
    grid = _resolve_grid(locality, grid, n_jobs, progress)
    preset = _CLUSTER_PRESETS[n_clusters]
    register_bus = BusConfig(count=2, latency=1)
    groups: List[Tuple[str, MachineConfig, str]] = []
    for nmb in bus_counts:
        for lmb in bus_latencies:
            machine = preset(
                register_bus=register_bus,
                memory_bus=BusConfig(count=nmb, latency=lmb),
            )
            for scheduler in ("baseline", "rmca"):
                groups.append(
                    (f"NMB={nmb},LMB={lmb} {scheduler}", machine, scheduler)
                )
    return _assemble_figure(
        title=f"Figure 6 ({n_clusters}-cluster): realistic buses",
        kernels=kernels,
        thresholds=thresholds,
        unified_machine=unified(memory_bus=BusConfig(count=1, latency=1)),
        groups=groups,
        grid=grid,
        steady=steady,
        sim=sim,
    )
