"""Unit tests for repro.ir.loop."""

import pytest

from repro.ir.loop import Loop, LoopDim
from repro.ir.operations import OpClass, Operation
from repro.ir.references import AffineExpr, Array, ArrayReference


def _simple_loop(dims=None):
    a = Array("A", (64,))
    ref = ArrayReference(a, (AffineExpr.of(0, i=1),))
    ops = (
        Operation("ld", OpClass.LOAD, dest="v", ref_index=0),
        Operation("add", OpClass.FADD, dest="w", srcs=("v", "v")),
    )
    return Loop(
        "test",
        dims or (LoopDim("i", 0, 8),),
        ops,
        (ref,),
    )


class TestLoopDim:
    def test_trip_count_basic(self):
        assert LoopDim("i", 0, 10).trip_count == 10

    def test_trip_count_with_step(self):
        assert LoopDim("i", 0, 10, 2).trip_count == 5
        assert LoopDim("i", 0, 9, 2).trip_count == 5

    def test_trip_count_negative_step(self):
        assert LoopDim("i", 10, 0, -1).trip_count == 10
        assert LoopDim("i", 10, 0, -3).trip_count == 4

    def test_trip_count_empty(self):
        assert LoopDim("i", 5, 5).trip_count == 0
        assert LoopDim("i", 5, 3).trip_count == 0

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            LoopDim("i", 0, 10, 0)

    def test_values(self):
        assert list(LoopDim("i", 1, 7, 2).values()) == [1, 3, 5]


class TestLoop:
    def test_needs_dims(self):
        with pytest.raises(ValueError, match="at least one dim"):
            Loop("l", (), (), ())

    def test_duplicate_op_names_rejected(self):
        a = Array("A", (8,))
        ref = ArrayReference(a, (AffineExpr.of(0, i=1),))
        ops = (
            Operation("x", OpClass.LOAD, dest="v", ref_index=0),
            Operation("x", OpClass.FADD, dest="w", srcs=("v",)),
        )
        with pytest.raises(ValueError, match="duplicate"):
            Loop("l", (LoopDim("i", 0, 4),), ops, (ref,))

    def test_ref_index_bounds_checked(self):
        ops = (Operation("ld", OpClass.LOAD, dest="v", ref_index=2),)
        with pytest.raises(ValueError, match="out of range"):
            Loop("l", (LoopDim("i", 0, 4),), ops, ())

    def test_inner_and_outer(self):
        loop = _simple_loop(
            (LoopDim("j", 0, 4), LoopDim("i", 0, 8))
        )
        assert loop.inner.var == "i"
        assert [d.var for d in loop.outer_dims] == ["j"]

    def test_niter_ntimes(self):
        loop = _simple_loop(
            (LoopDim("k", 0, 3), LoopDim("j", 0, 4), LoopDim("i", 0, 8))
        )
        assert loop.n_iterations == 8
        assert loop.n_times == 12

    def test_single_dim_ntimes_is_one(self):
        assert _simple_loop().n_times == 1

    def test_memory_operations(self):
        loop = _simple_loop()
        assert [op.name for op in loop.memory_operations] == ["ld"]

    def test_operation_lookup(self):
        loop = _simple_loop()
        assert loop.operation("add").name == "add"
        with pytest.raises(KeyError):
            loop.operation("missing")

    def test_ref_of(self):
        loop = _simple_loop()
        assert loop.ref_of(loop.operation("ld")).array.name == "A"
        with pytest.raises(ValueError):
            loop.ref_of(loop.operation("add"))

    def test_iteration_points_order(self):
        loop = _simple_loop((LoopDim("j", 0, 2), LoopDim("i", 0, 2)))
        points = list(loop.iteration_points())
        assert points == [
            {"j": 0, "i": 0},
            {"j": 0, "i": 1},
            {"j": 1, "i": 0},
            {"j": 1, "i": 1},
        ]

    def test_iteration_points_limit(self):
        loop = _simple_loop()
        assert len(list(loop.iteration_points(limit=3))) == 3

    def test_stats(self):
        stats = _simple_loop().stats()
        assert stats["operations"] == 2
        assert stats["memory_operations"] == 1
        assert stats["niter"] == 8
