"""Warm-state store equivalence and robustness.

The load-bearing contract of content-addressed warm-state reuse: for
every cell the repository can run, a simulation that *adopts* a stored
warm-up prefix produces a **bit-identical** :class:`SimulationResult` —
including memory statistics, steady-state reports and the final memory
``state_signature``/``counters`` — compared to a cold run.  Coverage
mirrors ``tests/test_simulator_vectorized.py``: every registered
grid-scenario cell, the golden figure panels' reduced grids, and
cross-engine sharing (warm state recorded by either engine serves
both).  The disk layer is exercised for rot-robustness the same way the
cell cache is: corrupt, truncated and version-mismatched entries are
misses, never errors.
"""

import pickle
import random
from dataclasses import replace

import pytest

from repro.cme import IncrementalCME
from repro.engine import CellRequest, execute_cell
from repro.engine.stages import make_scheduler
from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import run_scenario
from repro.machine import two_cluster, unified
from repro.memory.hierarchy import DistributedMemorySystem
from repro.simulator import (
    WARM_STATE_VERSION,
    LockstepSimulator,
    VectorizedSimulator,
    WarmRecord,
    WarmStateStore,
)
from repro.workloads import spec_suite
from repro.workloads.suite import streaming_long_suite
from test_simulator_vectorized import (
    _figure_panel_cells,
    _grid_scenario_cells,
)

MAX_POINTS = 512


@pytest.fixture(scope="module")
def analyzer():
    return IncrementalCME(max_points=MAX_POINTS)


def _run(schedule, engine_cls=VectorizedSimulator, store=None, **kwargs):
    simulator = engine_cls(schedule, warm_store=store, **kwargs)
    result = simulator.run()
    return simulator, result


def _assert_same(a, b, context=""):
    a_sim, a_result = a
    b_sim, b_result = b
    assert b_result.as_dict() == a_result.as_dict(), context
    assert b_sim.memory.counters() == a_sim.memory.counters(), context
    assert (
        b_sim.memory.state_signature(0) == a_sim.memory.state_signature(0)
    ), context
    assert b_sim.steady_report == a_sim.steady_report, context
    assert b_sim.steady_state == a_sim.steady_state, context


class TestWarmStoreUnit:
    def test_key_composition(self):
        base = WarmStateStore.key("fp", "auto", None, None)
        assert WarmStateStore.key("fp2", "auto", None, None) != base
        assert WarmStateStore.key("fp", "entry", None, None) != base
        assert WarmStateStore.key("fp", "auto", 8, None) != base
        assert WarmStateStore.key("fp", "auto", None, 3) != base
        assert WarmStateStore.key("fp", "auto", None, None) == base

    def test_fingerprint_ignores_scheduler_labels(self, analyzer):
        kernel = spec_suite(["applu"])[0]
        schedule = make_scheduler("rmca", 1.0, analyzer).schedule(
            kernel, two_cluster()
        )
        relabeled = replace(
            schedule, scheduler_name="other", threshold=0.125
        )
        assert relabeled.fingerprint() == schedule.fingerprint()

    def _record(self):
        return WarmRecord(
            version=WARM_STATE_VERSION,
            entries_simulated=2,
            records=((3, {"local_hits": 1}),) * 2,
            match_start=0,
            snapshot={"caches": []},
        )

    def test_disk_roundtrip(self, tmp_path):
        store = WarmStateStore(cache_dir=tmp_path)
        store.store("k", self._record())
        fresh = WarmStateStore(cache_dir=tmp_path)
        assert fresh.lookup("k") == self._record()
        assert fresh.hits == 1
        assert fresh.lookup("other") is None
        assert fresh.misses == 1

    @pytest.mark.parametrize(
        "rot",
        [
            b"not a pickle",
            None,  # truncation marker, handled below
            pickle.dumps({"foreign": "object"}),
        ],
        ids=["garbage", "truncated", "foreign"],
    )
    def test_disk_rot_is_a_miss_and_unlinked(self, tmp_path, rot):
        store = WarmStateStore(cache_dir=tmp_path)
        store.store("k", self._record())
        paths = list(tmp_path.glob("*/*.pkl"))
        assert len(paths) == 1
        if rot is None:
            rot = paths[0].read_bytes()[: paths[0].stat().st_size // 2]
        paths[0].write_bytes(rot)
        fresh = WarmStateStore(cache_dir=tmp_path)
        assert fresh.lookup("k") is None
        assert not paths[0].exists()  # rot dropped, slot reusable

    def test_version_mismatch_is_a_miss(self, tmp_path):
        store = WarmStateStore(cache_dir=tmp_path)
        store.store("k", replace(self._record(), version=-1))
        fresh = WarmStateStore(cache_dir=tmp_path)
        assert fresh.lookup("k") is None

    def test_clear_disk(self, tmp_path):
        store = WarmStateStore(cache_dir=tmp_path)
        store.store("k", self._record())
        store.clear_disk()
        assert not list(tmp_path.glob("*/*.pkl"))


class TestSnapshotRestore:
    def _exercise(self, memory, seed=7, n=200):
        rng = random.Random(seed)
        n_clusters = len(memory.caches)
        time = 0
        for _ in range(n):
            time += rng.randrange(0, 4)
            memory.access(
                rng.randrange(n_clusters),
                rng.randrange(0, 4096) * rng.choice([1, 4, 8]),
                rng.random() < 0.35,
                time,
            )
        return time

    def test_roundtrip_bit_identical(self):
        machine = two_cluster()
        source = DistributedMemorySystem(machine)
        time = self._exercise(source)
        snap = pickle.loads(pickle.dumps(source.snapshot()))
        target = DistributedMemorySystem(machine)
        target.restore(snap)
        assert target.counters() == source.counters()
        assert target.state_signature(0) == source.state_signature(0)
        assert target.state_signature(time) == source.state_signature(time)
        # The restored system must keep *behaving* identically:
        self._exercise(source, seed=11, n=50)
        self._exercise(target, seed=11, n=50)
        assert target.counters() == source.counters()
        assert target.state_signature(0) == source.state_signature(0)

    def test_snapshot_is_a_deep_copy(self):
        memory = DistributedMemorySystem(two_cluster())
        self._exercise(memory)
        snap = memory.snapshot()
        before = memory.state_signature(0)
        self._exercise(memory, seed=13, n=50)
        fresh = DistributedMemorySystem(two_cluster())
        fresh.restore(snap)
        assert fresh.state_signature(0) == before


class TestWarmEquivalence:
    def test_every_grid_scenario_cell(self, analyzer):
        """cold == store pass == warm-hit pass, for every registered
        grid-scenario cell."""
        checked = hits = 0
        for (label, kernel, machine, scheduler, threshold, steady,
             n_iterations, n_times) in _grid_scenario_cells():
            schedule = make_scheduler(scheduler, threshold, analyzer).schedule(
                kernel, machine
            )
            kwargs = dict(
                steady=steady, n_iterations=n_iterations, n_times=n_times
            )
            cold = _run(schedule, **kwargs)
            store = WarmStateStore()
            first = _run(schedule, store=store, **kwargs)
            second = _run(schedule, store=store, **kwargs)
            _assert_same(cold, first, label)
            _assert_same(cold, second, label)
            assert second[0].warm_stats["hits"] == store.hits, label
            hits += store.hits
            checked += 1
        assert checked > 0
        assert hits > 0  # the sweep must actually exercise adoption

    def test_golden_figure_panels(self, analyzer):
        hits = 0
        for label, kernel, machine, scheduler, threshold in _figure_panel_cells():
            schedule = make_scheduler(scheduler, threshold, analyzer).schedule(
                kernel, machine
            )
            store = WarmStateStore()
            cold = _run(schedule, store=store, steady="auto")
            warm = _run(schedule, store=store, steady="auto")
            _assert_same(cold, warm, label)
            hits += store.hits
        assert hits > 0

    def test_cross_engine_sharing(self, analyzer):
        """Warm state recorded by one engine must serve the other,
        bit-identically, in both directions."""
        for kernel in streaming_long_suite():
            schedule = make_scheduler("rmca", 1.0, analyzer).schedule(
                kernel, two_cluster()
            )
            store = WarmStateStore()
            cold = _run(schedule, LockstepSimulator, store=store)
            assert store.stores == 1, kernel.name
            warm_vector = _run(schedule, VectorizedSimulator, store=store)
            _assert_same(cold, warm_vector, kernel.name)
            assert warm_vector[0].warm_stats["hits"] == 1, kernel.name
            other = WarmStateStore()
            _run(schedule, VectorizedSimulator, store=other)
            warm_scalar = _run(schedule, LockstepSimulator, store=other)
            _assert_same(cold, warm_scalar, kernel.name)
            assert warm_scalar[0].warm_stats["hits"] == 1, kernel.name

    def test_disk_layer_serves_fresh_store(self, analyzer, tmp_path):
        kernel = streaming_long_suite()[0]
        schedule = make_scheduler("rmca", 1.0, analyzer).schedule(
            kernel, two_cluster()
        )
        cold = _run(schedule, store=WarmStateStore(cache_dir=tmp_path))
        fresh = WarmStateStore(cache_dir=tmp_path)
        warm = _run(schedule, store=fresh)
        _assert_same(cold, warm)
        assert fresh.hits == 1 and fresh.stores == 0

    def test_steady_off_and_exact_bypass_store(self, analyzer):
        kernel = spec_suite(["applu"])[0]
        schedule = make_scheduler("rmca", 1.0, analyzer).schedule(
            kernel, two_cluster()
        )
        store = WarmStateStore()
        _run(schedule, store=store, steady="off")
        _run(schedule, store=store, exact=True)
        assert store.hits == store.misses == store.stores == 0

    def test_unsound_record_falls_back_to_cold(self, analyzer):
        """A record whose replay proof fails for the consuming run must
        degrade to a cold simulation, not corrupt it."""
        kernel = spec_suite(["applu"])[0]
        schedule = make_scheduler("rmca", 1.0, analyzer).schedule(
            kernel, two_cluster()
        )
        cold = _run(schedule)
        store = WarmStateStore()
        seeded = _run(schedule, store=store)
        key, record = next(iter(store._memory.items()))
        # Corrupt the evidence: an impossible match window.
        store._memory[key] = replace(
            record, match_start=record.entries_simulated + 5
        )
        survived = _run(schedule, store=store)
        _assert_same(cold, survived)
        assert survived[0].warm_stats["hits"] == 0
        _assert_same(cold, seeded)


class TestWarmGridEndToEnd:
    def _canonical(self, results):
        return [result.canonical() for result in results]

    def test_scenario_cold_vs_warm_disk(self, tmp_path):
        cold = run_scenario("streaming", cache_dir=tmp_path)
        assert cold.grid.warm_store.stores > 0
        # Fresh grid, cell cache off: every cell recomputes, but the
        # warm-ups come off the shared disk layer.
        warm_grid = ExperimentGrid(
            cache=False, locality=cold.scenario.locality.build()
        )
        warm_grid.warm_store.cache_dir = tmp_path / "warm"
        warm = run_scenario("streaming", grid=warm_grid)
        assert warm_grid.warm_store.hits == len(warm.results)
        assert warm_grid.warm_store.stores == 0
        assert self._canonical(warm.results) == self._canonical(cold.results)

    def test_scenario_warm_disabled_identical(self, tmp_path):
        warm = run_scenario("streaming", cache=False)
        off = run_scenario("streaming", cache=False, warm=False)
        assert off.grid.warm_store is None
        assert self._canonical(off.results) == self._canonical(warm.results)

    def test_parallel_fanout_identical(self, tmp_path):
        serial = run_scenario("streaming", cache=False)
        fanned = run_scenario(
            "streaming", cache=True, cache_dir=tmp_path, n_jobs=2
        )
        assert self._canonical(fanned.results) == self._canonical(
            serial.results
        )

    def test_clear_cache_drops_warm_entries(self, tmp_path):
        outcome = run_scenario("streaming", cache_dir=tmp_path)
        assert list((tmp_path / "warm").glob("*/*.pkl"))
        outcome.grid.clear_cache()
        assert not list((tmp_path / "warm").glob("*/*.pkl"))
        assert not outcome.grid.warm_store._memory

    def test_simulate_stage_reports_warm_telemetry(self, analyzer):
        store = WarmStateStore()
        request = CellRequest(
            kernel=streaming_long_suite()[0],
            machine=two_cluster(),
            scheduler="rmca",
            locality=analyzer,
            warm_store=store,
        )
        first = execute_cell(request).report.stage("simulate").stats
        assert first["sim_warm_hits"] == 0
        assert first["sim_warm_stores"] == 1
        second = execute_cell(request).report.stage("simulate").stats
        assert second["sim_warm_hits"] == 1
        assert second["sim_warm_stores"] == 0

    def test_cli_no_warm_store_flag(self):
        from repro.cli import _build_grid, build_parser

        on = build_parser().parse_args(["run", "streaming"])
        off = build_parser().parse_args(
            ["run", "streaming", "--no-warm-store"]
        )
        grid_on = _build_grid(on, IncrementalCME(max_points=8))
        grid_off = _build_grid(off, IncrementalCME(max_points=8))
        assert grid_on.warm_store is not None
        assert grid_off.warm_store is None

    def test_exact_grid_never_touches_store(self, analyzer):
        grid = ExperimentGrid(
            locality=analyzer, cache=False, exact=True
        )
        run_scenario("streaming", grid=grid)
        store = grid.warm_store
        assert store.hits == store.misses == store.stores == 0
