"""Vectorized lockstep simulate engine.

The scalar :class:`~repro.simulator.executor.LockstepSimulator` walks
every ``NITER × ops`` instance in Python, paying one interpreted loop
body per instance and one :meth:`~repro.memory.hierarchy
.DistributedMemorySystem.access` call per memory instance.  This engine
executes the same lockstep model array-at-a-time:

* per-entry instance tables (nominal times, iterations, op indices,
  addresses) are materialized with numpy in a handful of array ops;
* non-memory instances are never visited at all — a static per-schedule
  proof shows their flow operands can never stall (the scheduler placed
  every consumer at least ``latency + bus`` slots after its producer,
  and the lockstep offset is monotone), so their ready times are a pure
  function ``base + nominal + offset + latency`` reconstructed on
  demand from the offset changepoint log;
* memory instances run through
  :meth:`~repro.memory.hierarchy.DistributedMemorySystem.access_batch`:
  whole hazard-free runs — every access whose result provably cannot
  stall a consumer — resolve in one Python call with all per-access
  machinery inlined, and the batch stops exactly at results that might;
* the only instances simulated individually are *hazard checks*: the
  consumers of late memory results, replayed in exact instance order
  through a position-keyed heap so the stall offset evolves bit for bit
  as in the scalar walk.

Results are **bit-identical** to the scalar engine — same
:class:`~repro.simulator.stats.SimulationResult`, same memory-system
state and statistics, same steady-state reports — proven by
``tests/test_simulator_vectorized.py`` across every scenario cell and
both steady detectors.  Schedules that violate the static no-stall
proof (none of the repository's schedulers produce them) fall back to
the scalar walk for the whole cell, flagged in :attr:`vector_stats`.

Steady-state detectors plug in unchanged: the entry detector observes
entry boundaries exactly as before, and the iteration detector drives
the same group-partitioned walk — the engine hands it a reconstructing
ready view instead of the scalar ring buffer.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from heapq import heappop, heappush
from typing import Dict, List, Optional

import numpy as np

from .executor import LockstepSimulator

__all__ = ["VectorizedSimulator"]

#: Slack for memory results nobody consumes: never a hazard.
_NO_HAZARD = 1 << 60


class _EntryContext:
    """Per-loop-entry walk state of the vectorized engine."""

    __slots__ = (
        "base", "addresses", "ready", "hazards", "cp_pos", "cp_off",
        "frontier",
    )

    def __init__(self, base: int, addresses: List[int], n_mem: int):
        self.base = base
        self.addresses = addresses
        #: Ready time per memory instance (mem-flat order); ``None``
        #: doubles as the not-yet-executed tag the detectors expect.
        self.ready: List[Optional[int]] = [None] * n_mem
        #: Pending consumer stall checks: (position, nominal, iteration,
        #: required ready time) heap, ordered by instance position.
        self.hazards: List[tuple] = []
        #: Offset changepoint log: offset becomes ``cp_off[i]`` at
        #: instance position ``cp_pos[i]`` (inclusive).
        self.cp_pos: List[int] = [-1]
        self.cp_off: List[int] = [0]
        #: First instance position not yet walked.
        self.frontier = 0


class _ReadyView:
    """The detector-facing ``get(iteration, op)`` ready view.

    Memory results come from the entry's stored batch outputs; the
    never-visited non-memory instances are reconstructed from the offset
    changepoint log — exactly the value the scalar walk would have
    stored, because their issue time is ``base + nominal + offset`` by
    the no-stall proof.
    """

    __slots__ = ("sim", "ctx")

    def __init__(self, sim: "VectorizedSimulator", ctx: _EntryContext):
        self.sim = sim
        self.ctx = ctx

    def get(self, iteration: int, op_index: int) -> Optional[int]:
        sim = self.sim
        ctx = self.ctx
        flat = iteration * sim._n_ops + op_index
        if sim._is_memory[op_index]:
            mem_index = sim._vm_index_of[flat]
            return None if mem_index < 0 else ctx.ready[mem_index]
        position = sim._vm_pos_of[flat]
        if position >= ctx.frontier:
            return None
        offset = ctx.cp_off[bisect_right(ctx.cp_pos, position) - 1]
        nominal = iteration * sim.schedule.ii + sim._op_time[op_index]
        return ctx.base + nominal + offset + sim._fu_latency[op_index]


class _BatchAddressProvider:
    """Shared address materialization for co-batched simulators.

    Members simulate the same kernel under the same iteration geometry,
    so they visit the same outer points; for each outer point the
    provider computes every member's per-instance address list in one
    wide ``base + stride * iteration`` numpy expression instead of one
    per member.  The values are bit-identical to the per-member
    computation in :meth:`VectorizedSimulator._run_once` — identical
    int64 element-wise arithmetic, merely concatenated.
    """

    __slots__ = ("members", "_slots", "_cache")

    def __init__(self, members: List["VectorizedSimulator"]):
        self.members = members
        self._slots = {id(member): i for i, member in enumerate(members)}
        self._cache: Dict[tuple, list] = {}

    def tables(self, member: "VectorizedSimulator", outer):
        """``(mem_base, mem_stride, addresses)`` for one member/point."""
        key = tuple(sorted(outer.items()))
        entry = self._cache.get(key)
        if entry is None:
            entry = self._materialize(outer)
            self._cache[key] = entry
        return entry[self._slots[id(member)]]

    def _materialize(self, outer) -> list:
        bases, strides, iters, tables = [], [], [], []
        for member in self.members:
            mem_base, mem_stride = member._entry_tables(outer)
            tables.append((mem_base, mem_stride))
            ops = member._vm_op_np
            bases.append(np.asarray(mem_base, dtype=np.int64)[ops])
            strides.append(np.asarray(mem_stride, dtype=np.int64)[ops])
            iters.append(member._vm_iter_np)
        flat = (
            np.concatenate(bases)
            + np.concatenate(strides) * np.concatenate(iters)
        ).tolist()
        entry, start = [], 0
        for member, (mem_base, mem_stride) in zip(self.members, tables):
            end = start + member._vm_n
            entry.append((mem_base, mem_stride, flat[start:end]))
            start = end
        return entry


class VectorizedSimulator(LockstepSimulator):
    """Array-at-a-time lockstep execution, bit-identical to the scalar
    reference (see module docstring for the how and the proof sketch)."""

    #: Installed by :meth:`run_batch` while co-batched members run; the
    #: provider supplies each entry's address tables from one stacked
    #: computation shared across the batch.
    _batch_addresses: Optional[_BatchAddressProvider] = None

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Engine telemetry, surfaced as ``sim_*`` stage statistics.
        self.vector_stats: Dict[str, object] = {
            "engine": "vectorized",
            "fallback": False,
            "batches": 0,
            "batched_accesses": 0,
            "hazard_checks": 0,
        }
        self._build_vector_tables()

    # ------------------------------------------------------------------
    def _build_vector_tables(self) -> None:
        ii = self.schedule.ii
        n_ops = self._n_ops
        times = self._op_time
        # Static no-stall proof for non-memory flow edges, and consumer
        # tables for memory producers.  An edge is *live* when its
        # producer instance executes before its consumer in the sorted
        # order (dead edges read an unwritten slot in the scalar walk
        # and are skipped there, so they are simply dropped here).
        self._vector_ok = True
        consumers: List[List[tuple]] = [[] for _ in range(n_ops)]
        slack = [_NO_HAZARD] * n_ops
        names = self._op_names
        rank = {name: position for position, name in enumerate(sorted(names))}
        for dst in range(n_ops):
            for src, distance, extra in self._flows[dst]:
                gap = distance * ii + times[dst] - times[src]
                if gap < 0:
                    continue  # producer nominally later: dead edge
                if gap == 0:
                    # Nominal tie: the tuple sort breaks it by
                    # (iteration, name); the producer runs first only
                    # when it wins that comparison.
                    if distance == 0 and rank[names[src]] > rank[names[dst]]:
                        continue
                if self._is_memory[src]:
                    consumers[src].append(
                        (dst, distance, extra, times[dst])
                    )
                    if gap - extra < slack[src]:
                        slack[src] = gap - extra
                elif self._fu_latency[src] + extra > gap:
                    # A non-memory producer could stall this consumer:
                    # the vectorized walk's core assumption fails for
                    # the whole schedule — use the scalar reference.
                    self._vector_ok = False
        self._vm_consumers = consumers
        if not self._vector_ok:
            self.vector_stats["engine"] = "scalar-fallback"
            self.vector_stats["fallback"] = True
            return

        is_memory = np.fromiter(self._is_memory, dtype=bool, count=n_ops)
        mem_mask = is_memory[self._inst_op]
        mem_positions = np.nonzero(mem_mask)[0]
        self._vm_iter_np = self._inst_iter[mem_positions]
        self._vm_op_np = self._inst_op[mem_positions]
        vm_nominal_np = self._inst_nominal[mem_positions]
        self._vm_pos = mem_positions.tolist()
        self._vm_iter = self._vm_iter_np.tolist()
        self._vm_op = self._vm_op_np.tolist()
        self._vm_nominal = vm_nominal_np.tolist()
        n_mem = len(self._vm_pos)
        self._vm_n = n_mem
        cluster = np.fromiter(self._cluster, dtype=np.int64, count=n_ops)
        store = np.fromiter(self._is_store, dtype=bool, count=n_ops)
        slack_arr = np.fromiter(slack, dtype=np.int64, count=n_ops)
        self._vm_cluster = cluster[self._vm_op_np].tolist()
        self._vm_store = store[self._vm_op_np].tolist()
        self._vm_slack = slack_arr[self._vm_op_np].tolist()
        # (iteration, op) -> instance position / memory-flat index.
        flat = self._inst_iter * n_ops + self._inst_op
        pos_of = np.empty(flat.size, dtype=np.int64)
        pos_of[flat] = np.arange(flat.size, dtype=np.int64)
        self._vm_pos_of = pos_of.tolist()
        index_of = np.full(flat.size, -1, dtype=np.int64)
        index_of[self._vm_iter_np * n_ops + self._vm_op_np] = np.arange(
            n_mem, dtype=np.int64
        )
        self._vm_index_of = index_of.tolist()
        # Per-group bounds over the memory-instance list (lazy: only the
        # iteration-detector path partitions the walk at groups).
        self._vm_group_bounds: Optional[List[int]] = None
        self._vm_mem_base = np.zeros(n_ops, dtype=np.int64)
        self._vm_mem_stride = np.zeros(n_ops, dtype=np.int64)

    def _vm_group_mem_bounds(self) -> List[int]:
        if self._vm_group_bounds is None:
            ii = self.schedule.ii
            _bounds, n_groups = self.instance_group_bounds()
            mem_group = np.asarray(self._vm_nominal, dtype=np.int64) // ii
            self._vm_group_bounds = np.searchsorted(
                mem_group, np.arange(n_groups + 1, dtype=np.int64)
            ).tolist()
        return self._vm_group_bounds

    # ------------------------------------------------------------------
    def _run_once(self, outer, lrb, base, entry=0, detector=None):
        if not self._vector_ok:
            return super()._run_once(outer, lrb, base, entry, detector)
        provider = self._batch_addresses
        if provider is not None:
            mem_base, mem_stride, addresses = provider.tables(self, outer)
        else:
            mem_base, mem_stride = self._entry_tables(outer)
            bases = self._vm_mem_base
            strides = self._vm_mem_stride
            for op, value in enumerate(mem_base):
                bases[op] = value
                strides[op] = mem_stride[op]
            addresses = (
                bases[self._vm_op_np]
                + strides[self._vm_op_np] * self._vm_iter_np
            ).tolist()
        ctx = _EntryContext(base, addresses, self._vm_n)

        run = (
            detector.begin_entry(
                entry, base, _ReadyView(self, ctx), mem_base, mem_stride,
                final_entry=(entry == self.n_times - 1),
            )
            if detector is not None
            else None
        )
        if run is None:
            n_instances = int(self._inst_nominal.size)
            return self._walk_span(
                ctx, 0, n_instances, 0, self._vm_n, 0, self.n_iterations
            )

        # The same group-partitioned walk the scalar engine drives the
        # iteration detector through (see executor._run_once).
        bounds = detector.group_bounds
        mem_bounds = self._vm_group_mem_bounds()
        max_stage = detector.max_stage
        effective_niter = self.n_iterations
        offset = 0
        extra_stall = 0
        for k in range(detector.n_groups):
            if run.active:
                replay = run.boundary(k, offset)
                if replay is not None:
                    effective_niter -= replay.skipped
                    extra_stall += replay.stall_cycles
            offset = self._walk_span(
                ctx, bounds[k], bounds[k + 1],
                mem_bounds[k], mem_bounds[k + 1],
                offset, effective_niter,
            )
            if k + 1 >= effective_niter + max_stage:
                break
        run.finish()
        return offset + extra_stall

    # ------------------------------------------------------------------
    @classmethod
    def run_batch(cls, sims: List[LockstepSimulator]) -> list:
        """Run several simulators, co-batching the vectorizable ones.

        Members that are vectorized instances with the no-stall proof
        intact share one :class:`_BatchAddressProvider`, so each outer
        point's address tables are materialized once for the whole
        batch; the rest (scalar engines, fallback schedules) run solo.
        Results are bit-identical to calling ``run()`` member by member
        and align with ``sims`` by index.
        """
        results: list = [None] * len(sims)
        batchable = [
            i for i, sim in enumerate(sims)
            if isinstance(sim, cls) and sim._vector_ok
        ]
        provider = (
            _BatchAddressProvider([sims[i] for i in batchable])
            if len(batchable) > 1
            else None
        )
        try:
            if provider is not None:
                for i in batchable:
                    sims[i]._batch_addresses = provider
                    sims[i].vector_stats["co_batch_width"] = len(batchable)
            for i, sim in enumerate(sims):
                results[i] = sim.run()
        finally:
            if provider is not None:
                for i in batchable:
                    sims[i]._batch_addresses = None
        return results

    # ------------------------------------------------------------------
    def _walk_span(
        self,
        ctx: _EntryContext,
        start_pos: int,
        end_pos: int,
        mem_start: int,
        mem_end: int,
        offset: int,
        n_iterations: int,
    ) -> int:
        """Walk instance positions ``start_pos..end_pos``: batched
        memory accesses interleaved, in exact position order, with the
        pending consumer stall checks.  Returns the updated offset."""
        base = ctx.base
        hazards = ctx.hazards
        ready = ctx.ready
        addresses = ctx.addresses
        vm_pos = self._vm_pos
        vm_iter = self._vm_iter
        vm_op = self._vm_op
        vm_nominal = self._vm_nominal
        vm_slack = self._vm_slack
        consumers = self._vm_consumers
        pos_of = self._vm_pos_of
        ii = self.schedule.ii
        n_ops = self._n_ops
        access_batch = self.memory.access_batch
        stats = self.vector_stats
        filtered = n_iterations < self.n_iterations

        mem_index = mem_start
        # Skip leading instances a steady-state fast-forward replayed.
        while (
            filtered
            and mem_index < mem_end
            and vm_iter[mem_index] >= n_iterations
        ):
            mem_index += 1

        while True:
            next_hazard = hazards[0][0] if hazards else None
            if mem_index < mem_end:
                position = vm_pos[mem_index]
                if next_hazard is not None and next_hazard <= position:
                    pass  # fall through to the hazard pop below
                else:
                    # Batch every access before the next pending check.
                    limit = mem_end
                    if next_hazard is not None:
                        limit = bisect_left(
                            vm_pos, next_hazard, mem_index, mem_end
                        )
                    if filtered:
                        # Post-fast-forward tail: stop the contiguous
                        # run at the first replayed iteration.
                        scan = mem_index
                        while (
                            scan < limit and vm_iter[scan] < n_iterations
                        ):
                            scan += 1
                        limit = scan
                    if limit > mem_index:
                        consumed = access_batch(
                            self._vm_cluster, addresses, self._vm_store,
                            vm_nominal, base + offset, vm_slack,
                            ready, mem_index, limit,
                        )
                        stats["batches"] += 1
                        stats["batched_accesses"] += consumed
                        last = mem_index + consumed - 1
                        mem_index += consumed
                        result = ready[last]
                        if result > base + offset + vm_nominal[last] + vm_slack[last]:
                            # Late result: queue exact stall checks at
                            # each consumer's instance position.
                            producer_op = vm_op[last]
                            iteration = vm_iter[last]
                            for dst, distance, extra, t_dst in consumers[
                                producer_op
                            ]:
                                cons_iter = iteration + distance
                                if cons_iter >= n_iterations:
                                    continue
                                needed = result + extra
                                cons_nominal = cons_iter * ii + t_dst
                                if needed <= base + cons_nominal + offset:
                                    continue
                                heappush(
                                    hazards,
                                    (
                                        pos_of[cons_iter * n_ops + dst],
                                        cons_nominal,
                                        cons_iter,
                                        needed,
                                    ),
                                )
                    if filtered:
                        while (
                            mem_index < mem_end
                            and vm_iter[mem_index] >= n_iterations
                        ):
                            mem_index += 1
                    continue
            elif next_hazard is None or next_hazard >= end_pos:
                break
            # Replay the earliest pending consumer check in exact order.
            position, cons_nominal, cons_iter, needed = heappop(hazards)
            stats["hazard_checks"] += 1
            if cons_iter >= n_iterations:
                continue  # its iteration was replayed by a fast-forward
            lack = needed - (base + cons_nominal + offset)
            if lack > 0:
                offset += lack
                ctx.cp_pos.append(position)
                ctx.cp_off.append(offset)
        ctx.frontier = end_pos
        return offset
