"""Lockstep execution of a modulo-scheduled loop.

All clusters run in lockstep: any stall in one cluster stalls every
cluster (Section 2.1), so the simulator keeps a single global *stall
offset*.  Operation instances are replayed in nominal schedule order
(iteration ``i`` of operation ``v`` nominally issues at ``i*II + t_v``);
when an instance's operand is not ready at its (offset-adjusted) issue
time the offset grows by the difference — that is exactly the paper's
NCYCLE_stall.

Memory instances run through the full distributed-memory timing model
(:class:`~repro.memory.hierarchy.DistributedMemorySystem`): local MSI
lookup, MSHR allocation, memory-bus arbitration, remote-cache or
main-memory fill, in-flight merging.  The scheduler's *assumed* latency
only influenced where consumers were placed; actual readiness comes from
the memory system, which is how optimistic hit-latency scheduling turns
into stalls when a load misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..ir.loop import Loop
from ..machine.config import MachineConfig
from ..memory.hierarchy import DistributedMemorySystem
from ..scheduler.result import Schedule
from .stats import SimulationResult

__all__ = ["LockstepSimulator", "simulate"]


@dataclass(frozen=True)
class _FlowInput:
    producer: str
    distance: int
    cross_cluster: bool


class LockstepSimulator:
    """Executes one schedule on one machine instance.

    Parameters
    ----------
    schedule:
        The modulo schedule to execute.
    n_iterations:
        Override NITER (defaults to the loop's own trip count).
    n_times:
        Override NTIMES (defaults to the loop's outer trip-count product).
        Cache state persists across executions, as on real hardware.
    """

    def __init__(
        self,
        schedule: Schedule,
        n_iterations: Optional[int] = None,
        n_times: Optional[int] = None,
    ):
        self.schedule = schedule
        self.loop: Loop = schedule.kernel.loop
        self.machine: MachineConfig = schedule.machine
        self.n_iterations = n_iterations or self.loop.n_iterations
        self.n_times = n_times or self.loop.n_times
        self.memory = DistributedMemorySystem(self.machine)
        self._flow_inputs = self._collect_flow_inputs()
        self._instance_order = self._build_instance_order()

    # ------------------------------------------------------------------
    def _collect_flow_inputs(self) -> Dict[str, List[_FlowInput]]:
        """Flow operands of every operation, with cross-cluster flags."""
        ddg = self.schedule.kernel.ddg
        placements = self.schedule.placements
        inputs: Dict[str, List[_FlowInput]] = {}
        for edge in ddg.edges():
            if edge.kind != "flow":
                continue
            src = placements[edge.src]
            dst = placements[edge.dst]
            inputs.setdefault(edge.dst, []).append(
                _FlowInput(
                    producer=edge.src,
                    distance=edge.distance,
                    cross_cluster=src.cluster != dst.cluster,
                )
            )
        return inputs

    def _build_instance_order(self) -> List[Tuple[int, int, str]]:
        """All (nominal_time, iteration, op) instances of one execution,
        sorted by nominal time (ties: schedule slot order)."""
        placements = self.schedule.placements
        ii = self.schedule.ii
        instances: List[Tuple[int, int, str]] = []
        for i in range(self.n_iterations):
            for name, placement in placements.items():
                instances.append((i * ii + placement.time, i, name))
        instances.sort()
        return instances

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute NTIMES entries of the loop and aggregate the cycles."""
        loop = self.loop
        schedule = self.schedule
        lrb = self.machine.register_bus.latency
        total_stall = 0

        outer_points = list(self._outer_points())
        entry_compute = (self.n_iterations + schedule.stage_count - 1) * schedule.ii
        clock = 0  # global time: memory-system state spans loop entries
        for execution in range(self.n_times):
            outer = outer_points[execution % len(outer_points)]
            stall = self._run_once(outer, lrb, clock)
            total_stall += stall
            clock += entry_compute + stall

        compute = schedule.compute_cycles(self.n_iterations, self.n_times)
        comms = schedule.n_communications * self.n_iterations * self.n_times
        return SimulationResult(
            kernel=schedule.kernel.name,
            machine=self.machine.name,
            scheduler=schedule.scheduler_name,
            threshold=schedule.threshold,
            ii=schedule.ii,
            stage_count=schedule.stage_count,
            n_times=self.n_times,
            n_iterations=self.n_iterations,
            compute_cycles=compute,
            stall_cycles=total_stall,
            memory=self.memory.stats,
            register_comms=comms,
        )

    def _outer_points(self) -> Iterator[Dict[str, int]]:
        """Iteration points of the outer dims (one per loop entry)."""
        outer = self.loop.outer_dims
        if not outer:
            yield {}
            return

        def walk(depth: int, partial: Dict[str, int]) -> Iterator[Dict[str, int]]:
            if depth == len(outer):
                yield dict(partial)
                return
            for value in outer[depth].values():
                partial[outer[depth].var] = value
                yield from walk(depth + 1, partial)
            partial.pop(outer[depth].var, None)

        yield from walk(0, {})

    def _run_once(self, outer: Dict[str, int], lrb: int, base: int) -> int:
        """One entry of the innermost loop starting at global time ``base``;
        returns its stall cycles."""
        loop = self.loop
        placements = self.schedule.placements
        inner = loop.inner
        offset = 0
        ready: Dict[Tuple[str, int], int] = {}

        for nominal, iteration, name in self._instance_order:
            placement = placements[name]
            op = loop.operation(name)
            issue = base + nominal + offset

            # Lockstep operand wait.
            for flow in self._flow_inputs.get(name, ()):
                src_iter = iteration - flow.distance
                if src_iter < 0:
                    continue  # live-in from before this loop entry
                produced = ready.get((flow.producer, src_iter))
                if produced is None:
                    continue
                operand_ready = produced + (lrb if flow.cross_cluster else 0)
                if operand_ready > issue:
                    stall = operand_ready - issue
                    offset += stall
                    issue += stall

            if op.is_memory:
                point = dict(outer)
                point[inner.var] = inner.lower + iteration * inner.step
                address = loop.ref_of(op).address(point)
                result = self.memory.access(
                    placement.cluster, address, op.is_store, issue
                )
                ready[(name, iteration)] = result.ready_time
            else:
                ready[(name, iteration)] = issue + self.machine.latency(op.opclass)
        return offset


def simulate(
    schedule: Schedule,
    n_iterations: Optional[int] = None,
    n_times: Optional[int] = None,
) -> SimulationResult:
    """Convenience one-shot simulation."""
    return LockstepSimulator(
        schedule, n_iterations=n_iterations, n_times=n_times
    ).run()
