"""Tests for the scenario registry and runner (repro.harness.scenarios)."""

import json

import pytest

from repro.cli import main
from repro.cme import SamplingCME
from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import (
    ABLATION_KERNELS,
    GroupSpec,
    LocalitySpec,
    MachineSpec,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_listing,
    scenario_names,
)

EXPECTED_BUILTINS = {
    "fig5-2cluster",
    "fig5-4cluster",
    "fig6-2cluster",
    "fig6-4cluster",
    "fig6-smoke",
    "fig6-steady-ablation",
    "streaming",
    "dsp-4cluster",
    "unified-reference",
    "ablation-cme-sampling",
    "ablation-cme-equations",
    "ablation-cme-analytic",
}


def _tiny_scenario(name="tiny", **overrides) -> ScenarioSpec:
    """One kernel, one group, clamped iteration counts: runs in ~10ms."""
    settings = dict(
        name=name,
        description="test scenario",
        groups=(
            GroupSpec(
                label="unified",
                machine=MachineSpec(preset="unified"),
                scheduler="baseline",
            ),
        ),
        thresholds=(1.0,),
        kernels=("tomcatv",),
        n_iterations=8,
        n_times=2,
    )
    settings.update(overrides)
    return ScenarioSpec(**settings)


class TestRegistry:
    def test_builtins_registered(self):
        assert EXPECTED_BUILTINS <= set(scenario_names())

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("fig7")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("dsp-4cluster")
        with pytest.raises(KeyError, match="already registered"):
            register_scenario(scenario)
        # explicit replace is allowed and idempotent here
        assert register_scenario(scenario, replace=True) is scenario

    def test_every_builtin_round_trips_through_json(self):
        for scenario in all_scenarios():
            clone = ScenarioSpec.from_json(scenario.to_json())
            assert clone.to_dict() == scenario.to_dict()
            assert json.loads(scenario.to_json())  # valid JSON


class TestSpecValidation:
    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown machine preset"):
            MachineSpec(preset="16-cluster")

    def test_unknown_scheduler(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            GroupSpec(
                label="x",
                machine=MachineSpec(preset="unified"),
                scheduler="greedy",
            )

    def test_unknown_locality_kind(self):
        with pytest.raises(KeyError, match="unknown locality kind"):
            LocalitySpec(kind="oracle")

    def test_unknown_suite(self):
        with pytest.raises(KeyError, match="unknown suite"):
            _tiny_scenario(suite="specint")

    def test_unknown_kernel_selection(self):
        with pytest.raises(KeyError, match="unknown spec kernels"):
            _tiny_scenario(kernels=("tomcatv", "gcc"))

    def test_grid_scenario_needs_groups(self):
        with pytest.raises(ValueError, match="needs groups"):
            ScenarioSpec(name="empty", description="nothing")

    def test_unknown_figure(self):
        with pytest.raises(KeyError, match="unknown figure"):
            ScenarioSpec(name="f7", description="x", figure="figure7")


class TestFromDictValidation:
    """``from_dict`` hardening: untrusted JSON (the service's POST body)
    must fail with a ``ValueError`` naming the offending key."""

    def _data(self, **overrides):
        data = _tiny_scenario().to_dict()
        data.update(overrides)
        return data

    def test_non_object_rejected_at_every_level(self):
        for cls in (ScenarioSpec, MachineSpec, LocalitySpec, GroupSpec):
            with pytest.raises(ValueError, match="must be a JSON object"):
                cls.from_dict(["not", "an", "object"])

    def test_unknown_scenario_key_named(self):
        with pytest.raises(ValueError, match="'schedulers'"):
            ScenarioSpec.from_dict(self._data(schedulers=["rmca"]))

    def test_unknown_machine_key_named(self):
        with pytest.raises(ValueError, match="'presett'.*machine spec"):
            MachineSpec.from_dict({"preset": "unified", "presett": "x"})

    def test_unknown_locality_key_named(self):
        with pytest.raises(ValueError, match="'points'"):
            LocalitySpec.from_dict({"kind": "sampling", "points": 4})

    def test_unknown_group_key_named(self):
        group = _tiny_scenario().groups[0].to_dict()
        group["threshold"] = 0.5
        with pytest.raises(ValueError, match="'threshold'.*group spec"):
            GroupSpec.from_dict(group)

    def test_missing_required_key_named(self):
        data = self._data()
        del data["name"]
        with pytest.raises(ValueError, match="missing required key 'name'"):
            ScenarioSpec.from_dict(data)

    def test_group_missing_machine_named(self):
        with pytest.raises(ValueError, match="missing required key 'machine'"):
            GroupSpec.from_dict({"label": "g", "scheduler": "rmca"})

    def test_wrong_typed_field_names_key(self):
        with pytest.raises(ValueError, match="'n_iterations'.*integer"):
            ScenarioSpec.from_dict(self._data(n_iterations="many"))
        with pytest.raises(ValueError, match="'suite'"):
            ScenarioSpec.from_dict(self._data(suite=7))

    def test_bool_is_not_an_integer(self):
        # bool passes isinstance(int) — the validator must still reject
        # it wherever a number is expected.
        with pytest.raises(ValueError, match="'n_times'"):
            ScenarioSpec.from_dict(self._data(n_times=True))
        with pytest.raises(ValueError, match="'thresholds'"):
            ScenarioSpec.from_dict(self._data(thresholds=[True]))

    def test_bad_threshold_list_names_key(self):
        with pytest.raises(ValueError, match="'thresholds'"):
            ScenarioSpec.from_dict(self._data(thresholds="1.0"))
        with pytest.raises(ValueError, match="'thresholds'"):
            ScenarioSpec.from_dict(self._data(thresholds=[1.0, "x"]))

    def test_bad_groups_shape_named(self):
        with pytest.raises(ValueError, match="'groups'"):
            ScenarioSpec.from_dict(self._data(groups={"label": "g"}))

    def test_bad_bus_spec_named(self):
        for bad in ([1], [1, 2, 3], ["one", 2], [True, 2], 7):
            with pytest.raises(ValueError, match="'memory_bus'"):
                MachineSpec.from_dict(
                    {"preset": "unified", "memory_bus": bad}
                )
        # null count (unbounded pool) stays legal
        spec = MachineSpec.from_dict(
            {"preset": "unified", "memory_bus": [None, 1]}
        )
        assert spec.memory_bus == (None, 1)

    def test_bad_figure_args_shape_named(self):
        with pytest.raises(ValueError, match="'figure_args'"):
            ScenarioSpec.from_dict(
                self._data(groups=[], figure="figure6", figure_args=[1, 2])
            )


class TestScenarioListing:
    def test_listing_matches_registry(self):
        listing = scenario_listing()
        assert [entry["name"] for entry in listing] == scenario_names()
        for entry in listing:
            assert set(entry) == {
                "name", "kind", "cells", "description", "spec"
            }
            spec = ScenarioSpec.from_dict(entry["spec"])
            assert spec.to_dict() == entry["spec"]
            if entry["kind"] == "figure":
                assert entry["cells"] is None
            else:
                assert entry["cells"] == spec.n_cells()

    def test_listing_is_json_serializable(self):
        assert json.loads(json.dumps(scenario_listing()))


class TestExpansion:
    def test_cell_count_matches_expansion(self):
        for scenario in all_scenarios():
            if scenario.is_figure:
                assert scenario.n_cells() is None
                with pytest.raises(ValueError, match="delegates enumeration"):
                    scenario.expand()
            else:
                assert len(scenario.expand()) == scenario.n_cells()

    def test_expansion_order_is_group_threshold_kernel(self):
        scenario = _tiny_scenario(
            groups=(
                GroupSpec(
                    label="a",
                    machine=MachineSpec(preset="unified"),
                    scheduler="baseline",
                ),
                GroupSpec(
                    label="b",
                    machine=MachineSpec(preset="2-cluster"),
                    scheduler="rmca",
                ),
            ),
            thresholds=(1.0, 0.0),
            kernels=("tomcatv", "swim"),
        )
        specs = scenario.expand()
        assert [s.scheduler for s in specs] == ["baseline"] * 4 + ["rmca"] * 4
        assert [s.threshold for s in specs] == [1.0, 1.0, 0.0, 0.0] * 2
        assert [s.kernel for s in specs] == ["tomcatv", "swim"] * 4

    def test_sim_overrides_reach_cellspecs(self):
        specs = _tiny_scenario().expand()
        assert all(s.n_iterations == 8 and s.n_times == 2 for s in specs)

    def test_machine_bus_overrides(self):
        machine = MachineSpec(
            preset="2-cluster",
            register_bus=(None, 2),
            memory_bus=(4, 3),
        ).build()
        assert machine.register_bus.count is None
        assert machine.register_bus.latency == 2
        assert machine.memory_bus.count == 4
        assert machine.memory_bus.latency == 3

    def test_ablation_kernels_constant(self):
        scenario = get_scenario("ablation-cme-sampling")
        assert scenario.kernels == ABLATION_KERNELS


class TestSteadySelection:
    def test_scenario_steady_reaches_cellspecs(self):
        specs = _tiny_scenario(steady="entry").expand()
        assert all(spec.steady == "entry" for spec in specs)

    def test_group_steady_overrides_scenario_default(self):
        scenario = get_scenario("fig6-steady-ablation")
        specs = scenario.expand()
        modes = sorted({spec.steady for spec in specs})
        assert modes == ["auto", "entry", "iteration", "off"]
        # The cache key must separate the modes, or the ablation would
        # serve one mode's timing run from another's cached cells.
        by_mode = {}
        for spec in specs:
            by_mode.setdefault(spec.steady, spec)
        keys = {spec.cache_key("sampling:512") for spec in by_mode.values()}
        assert len(keys) == len(by_mode)

    def test_unknown_steady_rejected(self):
        with pytest.raises(KeyError, match="unknown steady mode"):
            _tiny_scenario(steady="mostly")
        with pytest.raises(KeyError, match="unknown steady mode"):
            GroupSpec(
                label="x",
                machine=MachineSpec(preset="unified"),
                scheduler="baseline",
                steady="never",
            )

    def test_run_scenario_steady_override(self):
        outcome = run_scenario(_tiny_scenario(), cache=False, steady="off")
        assert outcome.scenario.steady == "off"
        assert outcome.results is not None

    def test_streaming_scenario_shape(self):
        scenario = get_scenario("streaming")
        assert scenario.kernels == ("su2cor", "applu", "turb3d")
        assert scenario.n_cells() == 9
        kernels = scenario.build_kernels()
        assert all(kernel.loop.n_times == 1 for kernel in kernels)


class TestRunScenario:
    def test_grid_scenario_end_to_end(self):
        outcome = run_scenario(_tiny_scenario(), cache=False)
        assert outcome.results is not None and len(outcome.results) == 1
        rows = list(outcome.iter_rows())
        assert rows[0][0] == "unified"
        assert rows[0][2] == "tomcatv"
        assert rows[0][3].simulation.n_times == 2
        assert outcome.grid.stats.computed == 1

    def test_result_for_lookup(self):
        outcome = run_scenario(_tiny_scenario(), cache=False)
        result = outcome.result_for("unified", 1.0, "tomcatv")
        assert result.kernel == "tomcatv"
        with pytest.raises(KeyError, match="no cell"):
            outcome.result_for("unified", 0.5, "tomcatv")

    def test_shared_grid_caches_across_runs(self):
        grid = ExperimentGrid(locality=SamplingCME(max_points=512))
        scenario = _tiny_scenario()
        run_scenario(scenario, grid=grid)
        computed_before = grid.stats.computed
        run_scenario(scenario, grid=grid)
        assert grid.stats.computed == computed_before  # warm: zero compute

    def test_conflicting_grid_analyzer_rejected(self):
        grid = ExperimentGrid(locality=SamplingCME(max_points=64))
        with pytest.raises(ValueError, match="declares analyzer"):
            run_scenario(_tiny_scenario(), grid=grid)

    def test_dsp_scenario_runs_on_its_suite(self):
        scenario = get_scenario("dsp-4cluster")
        outcome = run_scenario(
            ScenarioSpec.from_dict(
                {
                    **scenario.to_dict(),
                    "name": "dsp-tiny",
                    "kernels": ["dotprod"],
                    "n_iterations": 16,
                    "n_times": 1,
                }
            ),
            cache=False,
        )
        assert [row[2] for row in outcome.iter_rows()] == ["dotprod"] * 2
        schedulers = [row[3].scheduler for row in outcome.iter_rows()]
        assert schedulers == ["baseline", "rmca"]

    def test_figure_scenario_produces_figure(self):
        scenario = ScenarioSpec(
            name="fig6-tiny",
            description="reduced figure-6 panel over two kernels",
            figure="figure6",
            figure_args=(
                ("bus_counts", (1,)),
                ("bus_latencies", (1,)),
                ("thresholds", (1.0,)),
            ),
            kernels=("applu", "su2cor"),
        )
        outcome = run_scenario(scenario, cache=False)
        assert outcome.figure is not None
        assert outcome.results is None
        groups = outcome.figure.groups
        assert "unified" in groups
        assert any("NMB=1,LMB=1" in group for group in groups)
        with pytest.raises(ValueError, match="figure scenario"):
            list(outcome.iter_rows())


class TestScenarioCLI:
    def test_scenarios_command_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_BUILTINS:
            assert name in out

    def test_run_spec_prints_json(self, capsys):
        assert main(["run", "fig6-smoke", "--spec"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "fig6-smoke"
        assert data["figure"] == "figure6"

    def test_run_executes_grid_scenario(self, capsys):
        assert (
            main(
                ["run", "dsp-4cluster", "--no-cache", "--no-progress"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "dotprod" in out
        assert "rmca" in out

    def test_run_unknown_scenario_fails(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["run", "fig7"])
