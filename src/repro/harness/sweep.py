"""Experiment sweeps reproducing the paper's evaluation (Section 5).

The two figure generators mirror the paper's methodology:

* every cell schedules all suite kernels with one scheduler and one
  miss threshold on one machine, simulates them, and normalizes each
  kernel's total cycles to the Unified reference (threshold 1.00),
* bars average the normalized compute and stall components over kernels
  (the paper reports "normalized number of cycles averaged for all
  benchmarks" with each bar split into compute and stall).

:func:`figure5` sweeps register-bus × memory-bus latencies with an
*unbounded* number of buses (Section 5.2); :func:`figure6` fixes
2 register buses @ 1 cycle and sweeps the number and latency of memory
buses (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.compare import RunResult, run_cell
from ..cme.locality import LocalityAnalyzer, default_analyzer
from ..ir.builder import Kernel
from ..machine.config import BusConfig, MachineConfig
from ..machine.presets import four_cluster, two_cluster, unified
from ..workloads.suite import spec_suite

__all__ = [
    "Bar",
    "FigureData",
    "DEFAULT_THRESHOLDS",
    "unified_reference",
    "suite_bar",
    "figure5",
    "figure6",
]

DEFAULT_THRESHOLDS: Tuple[float, ...] = (1.0, 0.75, 0.25, 0.0)

_CLUSTER_PRESETS = {2: two_cluster, 4: four_cluster}


@dataclass(frozen=True)
class Bar:
    """One averaged bar of a figure (compute + stall, normalized)."""

    group: str
    scheduler: str
    threshold: float
    norm_compute: float
    norm_stall: float

    @property
    def norm_total(self) -> float:
        return self.norm_compute + self.norm_stall

    @property
    def label(self) -> str:
        return f"{self.group} {self.scheduler} thr={self.threshold:.2f}"


@dataclass
class FigureData:
    """All bars of one figure plus the raw per-kernel records."""

    title: str
    bars: List[Bar] = field(default_factory=list)
    records: List[Dict[str, object]] = field(default_factory=list)

    def bars_in_group(self, group: str) -> List[Bar]:
        return [bar for bar in self.bars if bar.group == group]

    def bar(self, group: str, scheduler: str, threshold: float) -> Bar:
        for candidate in self.bars:
            if (
                candidate.group == group
                and candidate.scheduler == scheduler
                and abs(candidate.threshold - threshold) < 1e-9
            ):
                return candidate
        raise KeyError(f"no bar ({group!r}, {scheduler!r}, {threshold})")

    @property
    def groups(self) -> List[str]:
        seen: Dict[str, None] = {}
        for bar in self.bars:
            seen.setdefault(bar.group, None)
        return list(seen)


def unified_reference(
    kernels: Sequence[Kernel],
    locality: Optional[LocalityAnalyzer] = None,
    memory_bus: Optional[BusConfig] = None,
) -> Dict[str, int]:
    """Per-kernel total cycles on Unified at threshold 1.00.

    This is the figures' normalization denominator.  The memory bus
    defaults to an unbounded 1-cycle pool so the reference measures the
    machine, not bus starvation; pass an explicit bus to reproduce a
    bandwidth-limited reference.
    """
    locality = locality if locality is not None else default_analyzer()
    machine = unified(memory_bus=memory_bus or BusConfig(count=None, latency=1))
    totals: Dict[str, int] = {}
    for kernel in kernels:
        result = run_cell(kernel, machine, "baseline", 1.0, locality)
        totals[kernel.name] = result.total_cycles
    return totals


def suite_bar(
    group: str,
    kernels: Sequence[Kernel],
    machine: MachineConfig,
    scheduler: str,
    threshold: float,
    locality: LocalityAnalyzer,
    reference: Dict[str, int],
) -> Tuple[Bar, List[Dict[str, object]]]:
    """Run one bar's cells and average the normalized components."""
    records: List[Dict[str, object]] = []
    compute_sum = 0.0
    stall_sum = 0.0
    for kernel in kernels:
        result = run_cell(kernel, machine, scheduler, threshold, locality)
        denom = reference[kernel.name]
        compute_sum += result.compute_cycles / denom
        stall_sum += result.stall_cycles / denom
        records.append(
            {
                "group": group,
                **result.simulation.as_dict(),
                "norm_compute": result.compute_cycles / denom,
                "norm_stall": result.stall_cycles / denom,
                "norm_total": result.total_cycles / denom,
            }
        )
    n = len(kernels)
    bar = Bar(
        group=group,
        scheduler=scheduler,
        threshold=threshold,
        norm_compute=compute_sum / n,
        norm_stall=stall_sum / n,
    )
    return bar, records


def _unified_bars(
    kernels: Sequence[Kernel],
    thresholds: Sequence[float],
    locality: LocalityAnalyzer,
    reference: Dict[str, int],
    memory_bus: BusConfig,
    figure: FigureData,
) -> None:
    machine = unified(memory_bus=memory_bus)
    for threshold in thresholds:
        bar, records = suite_bar(
            "unified", kernels, machine, "baseline", threshold, locality, reference
        )
        figure.bars.append(bar)
        figure.records.extend(records)


def figure5(
    n_clusters: int = 2,
    latencies: Sequence[int] = (1, 2, 4),
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    kernels: Optional[Sequence[Kernel]] = None,
    locality: Optional[LocalityAnalyzer] = None,
) -> FigureData:
    """Figure 5: unbounded buses, LRB × LMB latency sweep.

    Groups are named ``LRB=x,LMB=y baseline|rmca`` plus the leading
    ``unified`` group; each group holds one bar per threshold.
    """
    if n_clusters not in _CLUSTER_PRESETS:
        raise ValueError(f"n_clusters must be one of {sorted(_CLUSTER_PRESETS)}")
    kernels = list(kernels) if kernels is not None else spec_suite()
    locality = locality if locality is not None else default_analyzer()
    reference = unified_reference(kernels, locality)
    figure = FigureData(
        title=f"Figure 5 ({n_clusters}-cluster): unbounded buses"
    )
    _unified_bars(
        kernels,
        thresholds,
        locality,
        reference,
        BusConfig(count=None, latency=1),
        figure,
    )
    preset = _CLUSTER_PRESETS[n_clusters]
    for lrb in latencies:
        for lmb in latencies:
            machine = preset(
                register_bus=BusConfig(count=None, latency=lrb),
                memory_bus=BusConfig(count=None, latency=lmb),
            )
            for scheduler in ("baseline", "rmca"):
                group = f"LRB={lrb},LMB={lmb} {scheduler}"
                for threshold in thresholds:
                    bar, records = suite_bar(
                        group,
                        kernels,
                        machine,
                        scheduler,
                        threshold,
                        locality,
                        reference,
                    )
                    figure.bars.append(bar)
                    figure.records.extend(records)
    return figure


def figure6(
    n_clusters: int = 2,
    bus_counts: Sequence[int] = (1, 2),
    bus_latencies: Sequence[int] = (1, 4),
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    kernels: Optional[Sequence[Kernel]] = None,
    locality: Optional[LocalityAnalyzer] = None,
) -> FigureData:
    """Figure 6: realistic buses — 2 register buses @ 1 cycle, NMB × LMB.

    Groups are named ``NMB=n,LMB=y baseline|rmca`` plus ``unified``
    (which shares the clustered runs' single-bus memory system so the
    comparison isolates clustering, not bus bandwidth).
    """
    if n_clusters not in _CLUSTER_PRESETS:
        raise ValueError(f"n_clusters must be one of {sorted(_CLUSTER_PRESETS)}")
    kernels = list(kernels) if kernels is not None else spec_suite()
    locality = locality if locality is not None else default_analyzer()
    reference = unified_reference(kernels, locality)
    figure = FigureData(
        title=f"Figure 6 ({n_clusters}-cluster): realistic buses"
    )
    _unified_bars(
        kernels,
        thresholds,
        locality,
        reference,
        BusConfig(count=1, latency=1),
        figure,
    )
    preset = _CLUSTER_PRESETS[n_clusters]
    register_bus = BusConfig(count=2, latency=1)
    for nmb in bus_counts:
        for lmb in bus_latencies:
            machine = preset(
                register_bus=register_bus,
                memory_bus=BusConfig(count=nmb, latency=lmb),
            )
            for scheduler in ("baseline", "rmca"):
                group = f"NMB={nmb},LMB={lmb} {scheduler}"
                for threshold in thresholds:
                    bar, records = suite_bar(
                        group,
                        kernels,
                        machine,
                        scheduler,
                        threshold,
                        locality,
                        reference,
                    )
                    figure.bars.append(bar)
                    figure.records.extend(records)
    return figure
