"""Kernel transformations: loop unrolling (the paper's deferred
optimization)."""

from .unroll import UnrollError, unroll

__all__ = ["UnrollError", "unroll"]
