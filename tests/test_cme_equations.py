"""Tests for the Cache-Miss-Equations backend."""

import pytest

from repro.cme import EquationCME, SamplingCME
from repro.ir import LoopBuilder
from repro.machine.config import CacheConfig
from repro.workloads import kernel_by_name, random_kernel


def _stream(stride=1, n=128):
    b = LoopBuilder("stream")
    i = b.dim("i", 0, n)
    a = b.array("A", (n * stride,))
    b.load(a, [b.aff(i=stride)], name="ld")
    return b.build()


def _pingpong():
    b = LoopBuilder("pp")
    i = b.dim("i", 0, 64)
    x = b.array("X", (64,), base=0)
    y = b.array("Y", (64,), base=1024)
    b.load(x, [b.aff(i=1)], name="ld_x")
    b.load(y, [b.aff(i=1)], name="ld_y")
    return b.build()


class TestClassification:
    def test_streaming_misses_are_cold(self):
        kernel = _stream(stride=8)  # one new line per iteration, no reuse
        cache = CacheConfig(size=1024, line_size=32)
        cme = EquationCME(max_points=128)
        breakdown = cme.solve(
            kernel.loop, kernel.loop.memory_operations, cache
        )
        assert breakdown.miss_ratio("ld") == 1.0
        # Footprint 128*64B = 8KB wraps the 1KB cache: the first pass is
        # cold, subsequent... 128 points only touch each line once, so
        # every miss is cold.
        assert breakdown.total_replacement == 0
        assert breakdown.total_cold == 128

    def test_pingpong_misses_are_replacement(self):
        kernel = _pingpong()
        cache = CacheConfig(size=1024, line_size=32)
        cme = EquationCME(max_points=128)
        breakdown = cme.solve(
            kernel.loop, kernel.loop.memory_operations, cache
        )
        # After the cold line fills, every miss is an eviction by the
        # conflicting stream.
        assert breakdown.total_replacement > breakdown.total_cold
        assert breakdown.miss_ratio("ld_x") == 1.0
        assert breakdown.miss_ratio("ld_y") == 1.0

    def test_spatial_stream_quarter_ratio(self):
        kernel = _stream(stride=1)
        cache = CacheConfig(size=1024, line_size=32)
        cme = EquationCME(max_points=128)
        assert cme.miss_ratio(
            kernel.loop, kernel.loop.operation("ld"),
            kernel.loop.memory_operations, cache,
        ) == pytest.approx(0.25, abs=0.02)

    def test_associative_cache_tolerates_two_streams(self):
        kernel = _pingpong()
        cache = CacheConfig(size=1024, line_size=32, associativity=2)
        cme = EquationCME(max_points=128)
        for op in kernel.loop.memory_operations:
            ratio = cme.miss_ratio(
                kernel.loop, op, kernel.loop.memory_operations, cache
            )
            assert ratio < 0.5


class TestAgreementWithSimulation:
    """For LRU caches the equations are exact, so the CME backend and the
    functional-simulation backend must produce identical ratios."""

    @pytest.mark.parametrize("name", ["tomcatv", "su2cor", "turb3d", "mgrid"])
    def test_suite_kernels_agree(self, name):
        kernel = kernel_by_name(name)
        cache = CacheConfig(size=2048, line_size=32)
        equations = EquationCME(max_points=256)
        simulation = SamplingCME(max_points=256)
        ops = kernel.loop.memory_operations
        for op in ops:
            eq = equations.miss_ratio(kernel.loop, op, ops, cache)
            sim = simulation.miss_ratio(kernel.loop, op, ops, cache)
            assert eq == pytest.approx(sim, abs=1e-12), op.name

    @pytest.mark.parametrize("seed", range(6))
    def test_random_kernels_agree(self, seed):
        kernel = random_kernel(seed)
        cache = CacheConfig(size=1024, line_size=32)
        equations = EquationCME(max_points=200)
        simulation = SamplingCME(max_points=200)
        ops = kernel.loop.memory_operations
        for op in ops:
            eq = equations.miss_ratio(kernel.loop, op, ops, cache)
            sim = simulation.miss_ratio(kernel.loop, op, ops, cache)
            assert eq == pytest.approx(sim, abs=1e-12), op.name

    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_agreement_across_associativities(self, assoc):
        kernel = _pingpong()
        cache = CacheConfig(size=1024, line_size=32, associativity=assoc)
        equations = EquationCME(max_points=128)
        simulation = SamplingCME(max_points=128)
        ops = kernel.loop.memory_operations
        for op in ops:
            assert equations.miss_ratio(
                kernel.loop, op, ops, cache
            ) == pytest.approx(
                simulation.miss_ratio(kernel.loop, op, ops, cache), abs=1e-12
            )


class TestProtocol:
    def test_satisfies_locality_protocol(self):
        from repro.cme import LocalityAnalyzer

        assert isinstance(EquationCME(), LocalityAnalyzer)

    def test_memoization(self):
        kernel = _stream()
        cache = CacheConfig(size=512, line_size=32)
        cme = EquationCME(max_points=64)
        ops = kernel.loop.memory_operations
        assert cme.solve(kernel.loop, ops, cache) is cme.solve(
            kernel.loop, ops, cache
        )

    def test_miss_count(self):
        kernel = _stream(stride=8)
        cache = CacheConfig(size=512, line_size=32)
        cme = EquationCME(max_points=64)
        assert cme.miss_count(
            kernel.loop, kernel.loop.memory_operations, cache
        ) == 64.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EquationCME(max_points=0)

    def test_empty_ops(self):
        kernel = _stream()
        cache = CacheConfig(size=512, line_size=32)
        assert EquationCME().miss_count(kernel.loop, [], cache) == 0.0

    def test_drives_rmca(self, motivating):
        """The equations backend can drive RMCA end to end."""
        from repro.scheduler import RMCAScheduler

        kernel, machine = motivating
        schedule = RMCAScheduler(EquationCME(max_points=256)).schedule(
            kernel, machine
        )
        schedule.validate()
        assert schedule.cluster_of("ld1") == schedule.cluster_of("ld3")
        assert schedule.cluster_of("ld2") == schedule.cluster_of("ld4")
