"""Seeded random affine-kernel generator.

Produces structurally valid :class:`~repro.ir.builder.Kernel` instances
for stress and property-based testing: random loop nests, random affine
references (unit/non-unit strides, row reuse, deliberate conflicts) and a
random arithmetic DAG wiring the loaded values to the stored ones, with
optional loop-carried recurrences.

All randomness flows through one :class:`numpy.random.Generator`, so a
seed fully determines the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..ir.builder import Kernel, LoopBuilder, Value

__all__ = ["GeneratorConfig", "random_kernel"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape bounds for generated kernels."""

    max_dims: int = 2
    max_arrays: int = 4
    max_loads: int = 6
    max_arith: int = 8
    max_stores: int = 2
    max_extent: int = 64
    min_extent: int = 8
    recurrence_probability: float = 0.3
    conflict_probability: float = 0.2
    #: Cache size used to fabricate deliberate same-set conflicts.
    conflict_cache_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.max_dims < 1 or self.max_arrays < 1:
            raise ValueError("need at least one dim and one array")
        if self.max_loads < 1 or self.max_stores < 1:
            raise ValueError("need at least one load and one store")
        if not 0 <= self.recurrence_probability <= 1:
            raise ValueError("recurrence_probability must be in [0,1]")
        if not 0 <= self.conflict_probability <= 1:
            raise ValueError("conflict_probability must be in [0,1]")


def random_kernel(
    seed: int, config: Optional[GeneratorConfig] = None
) -> Kernel:
    """Generate a random (but always schedulable) kernel from ``seed``."""
    cfg = GeneratorConfig() if config is None else config
    rng = np.random.default_rng(seed)
    b = LoopBuilder(f"rand{seed}")

    n_dims = int(rng.integers(1, cfg.max_dims + 1))
    dims = []
    for depth in range(n_dims):
        extent = int(rng.integers(cfg.min_extent, cfg.max_extent + 1))
        step = int(rng.choice([1, 1, 1, 2]))
        var = "ijk"[depth] if depth < 3 else f"d{depth}"
        b.dim(var, 0, extent, step=step)
        dims.append((var, extent, step))

    arrays = []
    n_arrays = int(rng.integers(1, cfg.max_arrays + 1))
    for index in range(n_arrays):
        shape = tuple(
            extent * step + cfg.max_extent  # headroom for constant offsets
            for _, extent, step in dims
        )
        base = None
        if index > 0 and rng.random() < cfg.conflict_probability:
            # Same cache image as array 0: deliberate conflict potential.
            base = arrays[0].base + cfg.conflict_cache_bytes * int(
                rng.integers(1, 4)
            )
        arrays.append(b.array(f"A{index}", shape, base=base))

    def random_subscripts(arr):
        subs = []
        for dim_index, (var, _extent, _step) in enumerate(dims):
            offset = int(rng.integers(0, 4))
            coeff = int(rng.choice([1, 1, 1, 2]))
            if len(dims) > 1 and rng.random() < 0.2:
                subs.append(b.aff(offset))  # drop this IV: row reuse
            else:
                subs.append(b.aff(offset, **{var: coeff}))
        return subs

    values: List[Value] = []
    n_loads = int(rng.integers(1, cfg.max_loads + 1))
    for _ in range(n_loads):
        arr = arrays[int(rng.integers(0, len(arrays)))]
        values.append(b.load(arr, random_subscripts(arr)))

    recurrence_reg: Optional[str] = None
    if rng.random() < cfg.recurrence_probability:
        recurrence_reg = "racc"
        distance = int(rng.integers(1, 3))
        values.append(
            b.fadd(
                b.prev_value(recurrence_reg, distance=distance),
                values[int(rng.integers(0, len(values)))],
                dest=recurrence_reg,
            )
        )

    n_arith = int(rng.integers(1, cfg.max_arith + 1))
    for _ in range(n_arith):
        op = rng.choice(["fadd", "fsub", "fmul", "iadd"])
        a = values[int(rng.integers(0, len(values)))]
        c = values[int(rng.integers(0, len(values)))]
        values.append(getattr(b, str(op))(a, c))

    n_stores = int(rng.integers(1, cfg.max_stores + 1))
    for _ in range(n_stores):
        arr = arrays[int(rng.integers(0, len(arrays)))]
        value = values[int(rng.integers(max(0, len(values) - 4), len(values)))]
        b.store(arr, random_subscripts(arr), value)

    if recurrence_reg is not None and not any(
        op.dest == recurrence_reg for op in b._ops
    ):  # pragma: no cover - defensive; the fadd above always defines it
        raise AssertionError("recurrence register never defined")
    return b.build()
