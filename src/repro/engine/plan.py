"""Plan-based execution: an explicit stage-task DAG over cell grids.

The :class:`~repro.engine.stagestore.StageStore` (PR 7) deduplicates
stage products *reactively*: every cell still walks the full
build→analyze→schedule→simulate pipeline and discovers hits one at a
time.  This module inverts that shape.  :class:`ExecutionPlanner` takes
a list of cell specs and emits a :class:`StagePlan` — a small DAG of
content-keyed tasks deduplicated *up front* by the store's own key
families:

* one **analyze** task per unique ``loop_fingerprint`` × analyzer
  configuration,
* one **schedule** task per kernel × machine × scheduler × threshold ×
  analyzer,
* one **simulate** task per ``Schedule.fingerprint()`` × engine ×
  steady mode × iteration overrides,

plus one :class:`AssemblyNode` per cell that relabels the shared
products into that cell's :class:`~repro.engine.result.RunResult`.

Unique simulate tasks targeting the same kernel and geometry are
co-scheduled into :class:`SimulateBatch`\\ es, which
:meth:`~repro.simulator.vectorized.VectorizedSimulator.run_batch`
executes by stacking the members' per-entry numpy address tables into
one wide batch — amortizing per-entry Python overhead across cells the
way the vectorized engine amortizes it across accesses.

Tasks carry only JSON-serializable payloads (:meth:`PlanTask.to_dict`),
so a plan's unique tasks are the natural work-queue unit for multi-host
sharding: a remote worker needs nothing but the task payload and the
shared kernel/analyzer registry to produce the store entry.

Execution lives in :meth:`repro.harness.grid.ExperimentGrid._compute_plan`;
the helpers here (:func:`run_analyze_task`, :func:`run_schedule_task`,
:func:`run_simulate_batch`) replicate the corresponding pipeline stages
(:mod:`repro.engine.stages`) exactly, so plan execution is bit-identical
to the per-cell path it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from ..cme.locality import LocalityAnalyzer, locality_fingerprint
from ..cme.trace import loop_fingerprint
from ..ir.builder import Kernel
from ..machine.config import MachineConfig
from ..scheduler.result import Schedule
from ..simulator import SIM_ENGINES, WarmStateStore
from ..simulator.stats import SimulationResult
from ..simulator.vectorized import VectorizedSimulator
from ..steady import resolve_steady_mode
from .result import RunResult
from .stages import make_scheduler
from .stagestore import StageStore

__all__ = [
    "PlanTask",
    "AssemblyNode",
    "SimulateBatch",
    "StagePlan",
    "ExecutionPlanner",
    "run_analyze_task",
    "run_schedule_task",
    "run_simulate_batch",
]


# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------
@dataclass
class PlanTask:
    """One unique unit of stage work, content-keyed by the store.

    ``payload`` holds everything a worker needs beyond the shared
    kernel/analyzer registry, as JSON-serializable primitives — a task
    can be shipped to another process (or, eventually, another host)
    as nothing but its :meth:`to_dict`.
    """

    task_id: str
    stage: str  # "analyze" | "schedule" | "simulate"
    key: str  # the StageStore key this task produces
    payload: Dict[str, object] = field(default_factory=dict)
    deps: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "task_id": self.task_id,
            "stage": self.stage,
            "key": self.key,
            "payload": dict(self.payload),
            "deps": list(self.deps),
        }


@dataclass
class AssemblyNode:
    """Per-cell sink: relabels shared products into a ``RunResult``.

    ``schedule_owner``/``simulate_owner`` mark the first cell to claim
    each product key; duplicate cells adopt the product through a
    counted store lookup at assembly time, mirroring the per-cell
    path's hit accounting exactly.
    """

    spec: object  # CellSpec (duck-typed; harness owns the class)
    schedule_key: str
    schedule_owner: bool
    simulate_key: Optional[str] = None
    simulate_owner: bool = False
    deps: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_json(),
            "schedule_key": self.schedule_key,
            "schedule_owner": self.schedule_owner,
            "simulate_key": self.simulate_key,
            "simulate_owner": self.simulate_owner,
            "deps": list(self.deps),
        }


@dataclass
class SimulateBatch:
    """Unique simulate tasks sharing a kernel and geometry.

    Members simulate different schedules of the same kernel under the
    same engine and iteration overrides, so their per-entry address
    tables have identical outer-point structure and can be stacked into
    one wide vectorized batch (see
    :meth:`~repro.simulator.vectorized.VectorizedSimulator.run_batch`).
    """

    batch_id: str
    kernel_fp: str
    sim: str
    n_iterations: Optional[int]
    n_times: Optional[int]
    tasks: List[PlanTask] = field(default_factory=list)

    @property
    def width(self) -> int:
        return len(self.tasks)

    def to_dict(self) -> Dict[str, object]:
        return {
            "batch_id": self.batch_id,
            "kernel_fp": self.kernel_fp,
            "sim": self.sim,
            "n_iterations": self.n_iterations,
            "n_times": self.n_times,
            "tasks": [task.to_dict() for task in self.tasks],
        }


@dataclass
class StagePlan:
    """The full DAG for one grid call: unique tasks + per-cell sinks.

    ``schedules``/``simulations`` accumulate the materialized products
    (store hits at plan time, then task results during execution);
    assembly reads them by key.  ``counters`` summarizes the plan for
    telemetry (``planned`` vs ``executed`` task counts).
    """

    locality_fp: str
    analyze_tasks: List[PlanTask] = field(default_factory=list)
    schedule_tasks: List[PlanTask] = field(default_factory=list)
    simulate_tasks: List[PlanTask] = field(default_factory=list)
    batches: List[SimulateBatch] = field(default_factory=list)
    assembly: List[AssemblyNode] = field(default_factory=list)
    schedules: Dict[str, Schedule] = field(default_factory=dict)
    simulations: Dict[str, SimulationResult] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable plan description (tasks only, no products)."""
        return {
            "locality_fp": self.locality_fp,
            "analyze_tasks": [t.to_dict() for t in self.analyze_tasks],
            "schedule_tasks": [t.to_dict() for t in self.schedule_tasks],
            "simulate_tasks": [t.to_dict() for t in self.simulate_tasks],
            "batches": [b.to_dict() for b in self.batches],
            "assembly": [a.to_dict() for a in self.assembly],
            "counters": dict(self.counters),
        }


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class ExecutionPlanner:
    """Builds :class:`StagePlan`\\ s from cell specs.

    Planning happens in two passes because simulate keys depend on
    *materialized* schedules (``Schedule.fingerprint()``): :meth:`plan`
    dedups analyze and schedule work up front, and once every schedule
    exists — from store hits or executed tasks — :meth:`plan_simulate`
    dedups and batches the simulate work.
    """

    def __init__(
        self, locality: LocalityAnalyzer, store: StageStore
    ) -> None:
        self.locality = locality
        self.store = store
        self.locality_fp = locality_fingerprint(locality)

    # -- pass 1: analyze + schedule ------------------------------------
    def plan(
        self,
        specs: Sequence[object],
        kernels: Mapping[str, Kernel],
    ) -> StagePlan:
        """Dedup analyze/schedule work for ``specs`` against the store.

        ``kernels`` maps each spec's kernel name to its resolved object.
        One counted store lookup happens per *unique* schedule key —
        hits are planned away as pre-materialized products, misses
        become tasks.  Duplicate cells incur their (counted) lookups at
        assembly time instead, so the store telemetry matches the
        per-cell path probe for probe.
        """
        plan = StagePlan(locality_fp=self.locality_fp)
        counters = plan.counters
        counters["runs"] = 1
        counters["cells"] = len(specs)

        # Analyze: one task per unique loop × analyzer configuration.
        # Only analyzers with a content-addressed trace store carry a
        # shareable analyze product (mirrors AnalyzeStage).
        traces = getattr(self.locality, "traces", None)
        max_points = getattr(self.locality, "max_points", None)
        if traces is not None and max_points is not None:
            seen_analyze: Dict[str, None] = {}
            for spec in specs:
                kernel = kernels[spec.kernel]
                loop_fp = loop_fingerprint(kernel.loop)
                key = StageStore.analyze_key(loop_fp, self.locality_fp)
                if key in seen_analyze:
                    continue
                seen_analyze[key] = None
                plan.analyze_tasks.append(
                    PlanTask(
                        task_id=f"analyze:{len(plan.analyze_tasks)}",
                        stage="analyze",
                        key=key,
                        payload={
                            "kernel": spec.kernel,
                            "loop_fp": loop_fp,
                            "locality_fp": self.locality_fp,
                        },
                    )
                )
        counters["analyze_tasks"] = len(plan.analyze_tasks)

        # Schedule: one task per unique store key; first spec owns it.
        schedule_owner: Dict[str, None] = {}
        schedule_task_by_key: Dict[str, str] = {}
        for spec in specs:
            key = StageStore.schedule_key(
                kernel_name=spec.kernel,
                kernel_fp=spec.kernel_fp,
                machine=spec.machine,
                scheduler=spec.scheduler,
                threshold=spec.threshold,
                locality_fp=self.locality_fp,
            )
            owner = key not in schedule_owner
            if owner:
                schedule_owner[key] = None
                hit = self.store.lookup("schedule", key)
                if hit is not None:
                    plan.schedules[key] = hit
                else:
                    task = PlanTask(
                        task_id=f"schedule:{len(plan.schedule_tasks)}",
                        stage="schedule",
                        key=key,
                        payload={
                            "kernel": spec.kernel,
                            "kernel_fp": spec.kernel_fp,
                            "machine": spec.machine,
                            "scheduler": spec.scheduler,
                            "threshold": spec.threshold,
                            "locality_fp": self.locality_fp,
                        },
                    )
                    plan.schedule_tasks.append(task)
                    schedule_task_by_key[key] = task.task_id
            plan.assembly.append(
                AssemblyNode(
                    spec=spec,
                    schedule_key=key,
                    schedule_owner=owner,
                    deps=(
                        [schedule_task_by_key[key]]
                        if key in schedule_task_by_key
                        else []
                    ),
                )
            )
        counters["schedule_unique"] = len(schedule_owner)
        counters["schedule_tasks"] = len(plan.schedule_tasks)
        return plan

    # -- pass 2: simulate + batching -----------------------------------
    def plan_simulate(self, plan: StagePlan) -> None:
        """Dedup and batch simulate work once every schedule exists.

        Keys come from the materialized schedules' fingerprints; one
        counted lookup per unique key, misses become tasks.  Unique
        tasks sharing ``(kernel_fp, sim, n_iterations, n_times)`` are
        grouped into :class:`SimulateBatch`\\ es in first-seen order —
        their per-entry address tables stack into one wide batch.
        """
        counters = plan.counters
        simulate_owner: Dict[str, None] = {}
        task_by_key: Dict[str, PlanTask] = {}
        batch_by_group: Dict[tuple, SimulateBatch] = {}
        for node in plan.assembly:
            spec = node.spec
            schedule = plan.schedules[node.schedule_key]
            key = StageStore.simulate_key(
                schedule_fp=schedule.fingerprint(),
                sim=spec.sim,
                steady=resolve_steady_mode(spec.steady, False),
                n_iterations=spec.n_iterations,
                n_times=spec.n_times,
            )
            node.simulate_key = key
            if key in simulate_owner:
                continue
            simulate_owner[key] = None
            node.simulate_owner = True
            hit = self.store.lookup("simulate", key)
            if hit is not None:
                plan.simulations[key] = hit
                continue
            task = PlanTask(
                task_id=f"simulate:{len(plan.simulate_tasks)}",
                stage="simulate",
                key=key,
                payload={
                    "schedule_key": node.schedule_key,
                    "sim": spec.sim,
                    "steady": spec.steady,
                    "n_iterations": spec.n_iterations,
                    "n_times": spec.n_times,
                },
                deps=list(node.deps),
            )
            plan.simulate_tasks.append(task)
            task_by_key[key] = task
            node.deps = node.deps + [task.task_id]
            group = (
                spec.kernel_fp, spec.sim, spec.n_iterations, spec.n_times
            )
            batch = batch_by_group.get(group)
            if batch is None:
                batch = SimulateBatch(
                    batch_id=f"batch:{len(plan.batches)}",
                    kernel_fp=spec.kernel_fp,
                    sim=spec.sim,
                    n_iterations=spec.n_iterations,
                    n_times=spec.n_times,
                )
                batch_by_group[group] = batch
                plan.batches.append(batch)
            batch.tasks.append(task)
        counters["simulate_unique"] = len(simulate_owner)
        counters["simulate_tasks"] = len(plan.simulate_tasks)
        counters["batches"] = len(plan.batches)
        counters["batched_tasks"] = sum(
            batch.width for batch in plan.batches if batch.width > 1
        )
        counters["batch_width_max"] = max(
            (batch.width for batch in plan.batches), default=0
        )

    # -- assembly ------------------------------------------------------
    def assemble(self, node: AssemblyNode, plan: StagePlan) -> RunResult:
        """Relabel this cell's shared products into its ``RunResult``.

        Owners read the product straight from the plan; duplicate cells
        do the counted store lookup the per-cell path would have done.
        The simulation is always relabeled with the cell's own
        kernel/machine/scheduler/threshold (a shared simulate product
        may have been produced under a different label set).
        """
        spec = node.spec
        if node.schedule_owner:
            schedule = plan.schedules[node.schedule_key]
        else:
            schedule = self.store.lookup("schedule", node.schedule_key)
            if schedule is None:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"plan assembly missing schedule {node.schedule_key}"
                )
        if node.simulate_owner:
            simulation = plan.simulations[node.simulate_key]
        else:
            simulation = self.store.lookup("simulate", node.simulate_key)
            if simulation is None:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"plan assembly missing simulation {node.simulate_key}"
                )
        simulation = replace(
            simulation,
            kernel=spec.kernel,
            machine=spec.machine_name,
            scheduler=spec.scheduler,
            threshold=spec.threshold,
        )
        return RunResult(
            kernel=spec.kernel,
            machine=spec.machine_name,
            scheduler=spec.scheduler,
            threshold=spec.threshold,
            schedule=schedule,
            simulation=simulation,
        )


# ----------------------------------------------------------------------
# Task execution helpers
# ----------------------------------------------------------------------
def run_analyze_task(
    task: PlanTask,
    kernel: Kernel,
    locality: LocalityAnalyzer,
    store: StageStore,
) -> None:
    """Produce one analyze product, mirroring ``AnalyzeStage`` exactly.

    The analyzer's trace store ends up holding the address trace either
    way: walked locally (and published), adopted from the stage store,
    or computed and stored.
    """
    traces = getattr(locality, "traces", None)
    max_points = getattr(locality, "max_points", None)
    if traces is None or max_points is None:  # pragma: no cover
        return
    loop_fp = task.payload["loop_fp"]
    local = traces.peek_address_trace(loop_fp, max_points)
    if local is not None:
        store.publish("analyze", task.key, local)
        return
    hit = store.lookup("analyze", task.key)
    if hit is not None:
        traces.install_address_trace(hit)
        return
    store.store(
        "analyze", task.key, traces.address_trace(kernel.loop, max_points)
    )


def run_schedule_task(
    task: PlanTask,
    kernel: Kernel,
    machine: MachineConfig,
    locality: LocalityAnalyzer,
) -> Schedule:
    """Produce one schedule, mirroring ``ScheduleStage``'s cold path."""
    engine = make_scheduler(
        str(task.payload["scheduler"]),
        float(task.payload["threshold"]),  # type: ignore[arg-type]
        locality,
    )
    return engine.schedule(kernel, machine)


def run_simulate_batch(
    batch: SimulateBatch,
    schedules: Mapping[str, Schedule],
    warm_store: Optional[WarmStateStore] = None,
) -> List[SimulationResult]:
    """Produce one batch's simulations, co-batched where possible.

    Builds each member's simulator exactly the way ``SimulateStage``
    does (raw ``steady`` mode, ``exact=False`` — the plan path is gated
    off under exact runs) and hands them to
    :meth:`VectorizedSimulator.run_batch`, which stacks the vectorized
    members' address tables and runs the rest solo.  Results align with
    ``batch.tasks`` by index.
    """
    sims = []
    for task in batch.tasks:
        payload = task.payload
        schedule = schedules[payload["schedule_key"]]
        sims.append(
            SIM_ENGINES[str(payload["sim"])](
                schedule,
                n_iterations=payload["n_iterations"],
                n_times=payload["n_times"],
                exact=False,
                steady=payload["steady"],
                warm_store=warm_store,
            )
        )
    return VectorizedSimulator.run_batch(sims)
