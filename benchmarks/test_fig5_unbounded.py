"""Figure 5: unbounded buses — register/memory bus latency sweep.

Regenerates both panels ((a) 2 clusters, (b) 4 clusters) over the full
SPECfp95-style suite: LRB × LMB ∈ {1,2,4}², thresholds {1.00, 0.75,
0.25, 0.00}, Baseline vs RMCA, all bars normalized to Unified and split
into compute + stall.

Asserted paper claims:

* RMCA never loses to Baseline on the averaged bars (same bus config and
  threshold),
* lowering the threshold trades compute (grows) for stall (shrinks),
* at threshold 0.00 the clustered stall time is almost zero,
* at threshold 0.00 the clustered machines are comparable to Unified.
"""

import pytest

from repro.harness.charts import render_figure
from repro.harness.sweep import DEFAULT_THRESHOLDS, figure5

from conftest import save_and_print

LATENCIES = (1, 2, 4)


@pytest.mark.parametrize("n_clusters", [2, 4])
def test_figure5(benchmark, results_dir, grid, n_clusters):
    figure = benchmark.pedantic(
        figure5,
        kwargs=dict(
            n_clusters=n_clusters,
            latencies=LATENCIES,
            thresholds=DEFAULT_THRESHOLDS,
            grid=grid,
        ),
        rounds=1,
        iterations=1,
    )
    save_and_print(
        results_dir, f"fig5_{n_clusters}cluster", render_figure(figure)
    )

    clustered_groups = [g for g in figure.groups if g != "unified"]

    # High thresholds (misses exposed): RMCA <= Baseline everywhere.
    # Low thresholds: the paper itself observes that with unbounded buses
    # "both Baseline and RMCA strategies achieve similar performance,
    # since the latency of cache misses is hidden" — so require parity
    # within 15% rather than a strict win.
    for lrb in LATENCIES:
        for lmb in LATENCIES:
            for threshold in DEFAULT_THRESHOLDS:
                base = figure.bar(
                    f"LRB={lrb},LMB={lmb} baseline", "baseline", threshold
                )
                rmca = figure.bar(
                    f"LRB={lrb},LMB={lmb} rmca", "rmca", threshold
                )
                slack = 1.02 if threshold >= 0.5 else 1.15
                assert rmca.norm_total <= base.norm_total * slack, (
                    f"RMCA worse at LRB={lrb} LMB={lmb} thr={threshold}"
                )

    # Threshold trade-off on every clustered group: compute grows, stall
    # shrinks, as the threshold falls from 1.00 to 0.00.
    for group in clustered_groups:
        bars = {bar.threshold: bar for bar in figure.bars_in_group(group)}
        assert bars[0.0].norm_compute >= bars[1.0].norm_compute - 1e-9
        assert bars[0.0].norm_stall <= bars[1.0].norm_stall + 1e-9

    # Threshold 0.00: stall almost zero for the RMCA clustered bars.
    for group in clustered_groups:
        if "rmca" not in group:
            continue
        bar = next(
            b for b in figure.bars_in_group(group) if b.threshold == 0.0
        )
        assert bar.norm_stall <= 0.15, f"stall not hidden in {group}"

    # Threshold 0.00: clustered totals comparable to Unified (within 40%
    # — the clustered machines pay bus latency but enjoy 2x/4x cache
    # bandwidth, so some configurations even win).
    unified_ref = figure.bar("unified", "baseline", 1.0)
    for lmb in LATENCIES:
        rmca = figure.bar(f"LRB=1,LMB={lmb} rmca", "rmca", 0.0)
        assert rmca.norm_total <= unified_ref.norm_total * 1.4
