"""Unit tests for repro.ir.references."""

import pytest

from repro.ir.references import AffineExpr, Array, ArrayReference


class TestArray:
    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            Array("A", ())

    def test_rejects_non_positive_extent(self):
        with pytest.raises(ValueError):
            Array("A", (4, 0))

    def test_rejects_bad_element_size(self):
        with pytest.raises(ValueError):
            Array("A", (4,), element_size=0)

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError):
            Array("A", (4,), base=-8)

    def test_n_elements_and_size(self):
        a = Array("A", (3, 5), element_size=8)
        assert a.n_elements == 15
        assert a.size_bytes == 120

    def test_linear_index_row_major(self):
        a = Array("A", (4, 6))
        assert a.linear_index((0, 0)) == 0
        assert a.linear_index((1, 0)) == 6
        assert a.linear_index((2, 3)) == 15

    def test_linear_index_dimension_check(self):
        a = Array("A", (4, 6))
        with pytest.raises(ValueError, match="2 dims"):
            a.linear_index((1,))

    def test_address_includes_base_and_element_size(self):
        a = Array("A", (10,), element_size=8, base=1000)
        assert a.address((3,)) == 1024

    def test_3d_linearization(self):
        a = Array("A", (2, 3, 4))
        assert a.linear_index((1, 2, 3)) == 1 * 12 + 2 * 4 + 3


class TestAffineExpr:
    def test_of_drops_zero_coefficients(self):
        e = AffineExpr.of(5, i=0, j=2)
        assert e.variables == ("j",)
        assert e.coeff("i") == 0
        assert e.coeff("j") == 2

    def test_of_sorts_variables(self):
        e = AffineExpr.of(0, j=1, i=1)
        assert e.variables == ("i", "j")

    def test_evaluate(self):
        e = AffineExpr.of(3, i=2, j=-1)
        assert e.evaluate({"i": 5, "j": 4}) == 3 + 10 - 4

    def test_evaluate_constant_only(self):
        assert AffineExpr.of(7).evaluate({}) == 7

    def test_shifted(self):
        e = AffineExpr.of(3, i=1)
        assert e.shifted(4).constant == 7
        assert e.shifted(4).coeffs == e.coeffs

    def test_hashable(self):
        assert AffineExpr.of(1, i=2) == AffineExpr.of(1, i=2)
        assert hash(AffineExpr.of(1, i=2)) == hash(AffineExpr.of(1, i=2))


class TestArrayReference:
    def _ref(self, base=0, offset=0, is_store=False):
        a = Array("A", (8, 8), base=base)
        return ArrayReference(
            a,
            (AffineExpr.of(0, j=1), AffineExpr.of(offset, i=1)),
            is_store=is_store,
        )

    def test_subscript_arity_checked(self):
        a = Array("A", (8, 8))
        with pytest.raises(ValueError, match="needs 2 subscripts"):
            ArrayReference(a, (AffineExpr.of(0, i=1),))

    def test_variables_collects_all(self):
        assert self._ref().variables == ("j", "i")

    def test_element_and_address(self):
        ref = self._ref(base=64, offset=1)
        point = {"i": 2, "j": 1}
        assert ref.element(point) == (1, 3)
        assert ref.address(point) == 64 + (1 * 8 + 3) * 8

    def test_uniformly_generated_same_structure(self):
        assert self._ref().is_uniformly_generated_with(self._ref(offset=3))

    def test_not_uniformly_generated_different_array(self):
        other = ArrayReference(
            Array("B", (8, 8)),
            (AffineExpr.of(0, j=1), AffineExpr.of(0, i=1)),
        )
        assert not self._ref().is_uniformly_generated_with(other)

    def test_not_uniformly_generated_different_coeffs(self):
        a = Array("A", (8, 8))
        other = ArrayReference(
            a, (AffineExpr.of(0, j=1), AffineExpr.of(0, i=2))
        )
        assert not self._ref().is_uniformly_generated_with(other)

    def test_constant_distance(self):
        assert self._ref().constant_distance_to(self._ref(offset=3)) == (0, 3)

    def test_constant_distance_requires_uniform(self):
        a = Array("A", (8, 8))
        other = ArrayReference(
            a, (AffineExpr.of(0, j=1), AffineExpr.of(0, i=2))
        )
        with pytest.raises(ValueError):
            self._ref().constant_distance_to(other)

    def test_store_flag(self):
        assert self._ref(is_store=True).is_store
        assert not self._ref().is_store
