"""Tests for the comparison helpers."""

import pytest

from repro.analysis.compare import (
    make_scheduler,
    normalized_cycles,
    run_cell,
)
from repro.cme import SamplingCME
from repro.machine import two_cluster, unified
from repro.scheduler import BaselineScheduler, RMCAScheduler


class TestMakeScheduler:
    def test_baseline(self, sampling_cme):
        engine = make_scheduler("baseline", 0.5, sampling_cme)
        assert isinstance(engine, BaselineScheduler)
        assert engine.config.threshold == 0.5
        assert engine.locality is sampling_cme

    def test_rmca(self, sampling_cme):
        engine = make_scheduler("rmca", 0.25, sampling_cme)
        assert isinstance(engine, RMCAScheduler)
        assert engine.config.threshold == 0.25

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("greedy")

    def test_default_locality_created(self):
        engine = make_scheduler("baseline")
        assert engine.locality is not None


class TestRunCell:
    def test_record_fields(self, saxpy, sampling_cme):
        result = run_cell(saxpy, unified(), "baseline", 1.0, sampling_cme)
        assert result.kernel == "saxpy"
        assert result.machine == "unified"
        assert result.scheduler == "baseline"
        assert result.total_cycles == (
            result.compute_cycles + result.stall_cycles
        )
        assert result.schedule.ii >= 1

    def test_iteration_override(self, saxpy, sampling_cme):
        result = run_cell(
            saxpy, unified(), "baseline", 1.0, sampling_cme, n_iterations=8
        )
        assert result.simulation.n_iterations == 8

    def test_rmca_cell(self, saxpy, sampling_cme):
        result = run_cell(saxpy, two_cluster(), "rmca", 0.0, sampling_cme)
        assert result.scheduler == "rmca"
        assert result.schedule.scheduler_name == "rmca"


class TestNormalizedCycles:
    def test_normalization(self, saxpy, sampling_cme):
        result = run_cell(saxpy, two_cluster(), "baseline", 1.0, sampling_cme)
        records = normalized_cycles(
            [result], {"saxpy": result.total_cycles}
        )
        assert len(records) == 1
        assert records[0]["norm_total"] == pytest.approx(1.0)
        assert records[0]["norm_compute"] + records[0]["norm_stall"] == (
            pytest.approx(1.0)
        )

    def test_zero_baseline_rejected(self, saxpy, sampling_cme):
        result = run_cell(saxpy, unified(), "baseline", 1.0, sampling_cme)
        with pytest.raises(ValueError, match="non-positive baseline"):
            normalized_cycles([result], {"saxpy": 0})

    def test_missing_baseline_names_kernel(self, saxpy, sampling_cme):
        result = run_cell(saxpy, unified(), "baseline", 1.0, sampling_cme)
        with pytest.raises(
            KeyError, match=r"no baseline for kernel 'saxpy'.*'tomcatv'"
        ):
            normalized_cycles([result], {"tomcatv": 100})
