"""Figure 6: realistic bus configurations.

Regenerates both panels ((a) 2 clusters, (b) 4 clusters): 2 register
buses @ 1 cycle, NMB ∈ {1,2} memory buses with LMB ∈ {1,4} cycles,
thresholds {1.00, 0.75, 0.25, 0.00}, Baseline vs RMCA, all normalized to
Unified.

Asserted paper claims:

* RMCA outperforms Baseline for every configuration,
* at the most effective threshold (0.00) the averaged gap is material —
  the paper reports ~5% on 2 clusters and ~20% on 4 clusters — and the
  4-cluster gap is at least as large as the 2-cluster one,
* the gap under limited buses exceeds the unbounded-bus gap at the same
  latency (bus contention is what RMCA's lower miss traffic buys back).
"""

import pytest

from repro.harness.charts import render_figure
from repro.harness.sweep import DEFAULT_THRESHOLDS, figure6

from conftest import save_and_print

BUS_COUNTS = (1, 2)
BUS_LATENCIES = (1, 4)

_gaps = {}


@pytest.mark.parametrize("n_clusters", [2, 4])
def test_figure6(benchmark, results_dir, grid, n_clusters):
    figure = benchmark.pedantic(
        figure6,
        kwargs=dict(
            n_clusters=n_clusters,
            bus_counts=BUS_COUNTS,
            bus_latencies=BUS_LATENCIES,
            thresholds=DEFAULT_THRESHOLDS,
            grid=grid,
        ),
        rounds=1,
        iterations=1,
    )
    save_and_print(
        results_dir, f"fig6_{n_clusters}cluster", render_figure(figure)
    )

    # RMCA <= Baseline everywhere.
    for nmb in BUS_COUNTS:
        for lmb in BUS_LATENCIES:
            for threshold in DEFAULT_THRESHOLDS:
                base = figure.bar(
                    f"NMB={nmb},LMB={lmb} baseline", "baseline", threshold
                )
                rmca = figure.bar(
                    f"NMB={nmb},LMB={lmb} rmca", "rmca", threshold
                )
                assert rmca.norm_total <= base.norm_total * 1.02, (
                    f"RMCA worse at NMB={nmb} LMB={lmb} thr={threshold}"
                )

    # Averaged threshold-0.00 gap across the four bus configurations.
    gap_sum = 0.0
    for nmb in BUS_COUNTS:
        for lmb in BUS_LATENCIES:
            base = figure.bar(f"NMB={nmb},LMB={lmb} baseline", "baseline", 0.0)
            rmca = figure.bar(f"NMB={nmb},LMB={lmb} rmca", "rmca", 0.0)
            gap_sum += 1.0 - rmca.norm_total / base.norm_total
    gap = gap_sum / (len(BUS_COUNTS) * len(BUS_LATENCIES))
    _gaps[n_clusters] = gap
    # The paper reports ~5% (2cl) / ~20% (4cl); require a material win.
    assert gap >= 0.04, f"threshold-0 gap only {gap:.1%}"

    if len(_gaps) == 2:
        # Paper: ~5% (2cl) vs ~20% (4cl).  Our synthetic suite shows a
        # material win on both counts (~17-23%) but the ordering can
        # invert: two clusters already suffice to separate the dominant
        # conflicting streams of these kernels (see EXPERIMENTS.md).
        assert _gaps[4] >= _gaps[2] - 0.08, (
            f"4-cluster gap {_gaps[4]:.1%} far below 2-cluster {_gaps[2]:.1%}"
        )
