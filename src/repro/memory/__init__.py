"""Distributed memory hierarchy: caches, MSHRs, MSI coherence, buses."""

from .cache import CacheLine, ClusterCache, LineState, MSHR
from .coherence import BusOp, MSIController, SnoopResult
from .hierarchy import (
    AccessLevel,
    AccessResult,
    DistributedMemorySystem,
    MemoryStats,
)
from .membus import MemoryBusPool

__all__ = [
    "AccessLevel",
    "AccessResult",
    "BusOp",
    "CacheLine",
    "ClusterCache",
    "DistributedMemorySystem",
    "LineState",
    "MSHR",
    "MSIController",
    "MemoryBusPool",
    "MemoryStats",
    "SnoopResult",
]
