"""Snoopy MSI coherence across the distributed local caches.

The paper keeps the physically partitioned L1 coherent with a snoopy MSI
protocol [5] that is completely transparent to the ISA; buses can be busy
with coherence traffic, which the timing model accounts for.  This module
implements the protocol's state machine over the per-cluster
:class:`~repro.memory.cache.ClusterCache` instances; the hierarchy drives
it and charges the bus cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .cache import ClusterCache, LineState

__all__ = ["SnoopResult", "BusOp", "MSIController"]


class BusOp(enum.Enum):
    """Snooped bus transactions."""

    BUS_RD = "BusRd"  # read miss: fetch a shared copy
    BUS_RDX = "BusRdX"  # write miss: fetch an exclusive copy
    BUS_UPGR = "BusUpgr"  # write hit on S: invalidate other copies


@dataclass(frozen=True)
class SnoopResult:
    """Outcome of broadcasting one bus operation."""

    supplier: Optional[int]  # cluster that can supply the line, or None
    supplier_was_dirty: bool  # supplier held the line in M
    invalidated: Tuple[int, ...]  # clusters whose copies were dropped
    writeback: bool  # a dirty copy was written back to memory


class MSIController:
    """Applies MSI transitions across all cluster caches."""

    def __init__(self, caches: Sequence[ClusterCache]):
        self.caches = list(caches)
        self.n_invalidations = 0
        self.n_interventions = 0  # cache-to-cache supplies
        self.n_writebacks = 0

    # ------------------------------------------------------------------
    def snoop(
        self, requester: int, address: int, op: BusOp
    ) -> SnoopResult:
        """Broadcast ``op`` for ``address`` from ``requester``.

        Remote caches react per MSI:

        * BUS_RD — an M holder supplies the line and downgrades to S (a
          writeback makes memory consistent); S holders may also supply.
        * BUS_RDX / BUS_UPGR — every remote copy is invalidated; an M
          holder supplies the line (RdX) and writes back.
        """
        supplier: Optional[int] = None
        supplier_dirty = False
        invalidated: List[int] = []
        writeback = False
        for cache in self.caches:
            if cache.cluster_id == requester:
                continue
            state = cache.state_of(address)
            if state is LineState.INVALID:
                continue
            if op is BusOp.BUS_RD:
                if supplier is None:
                    supplier = cache.cluster_id
                    supplier_dirty = state is LineState.MODIFIED
                if state is LineState.MODIFIED:
                    writeback = True
                    self.n_writebacks += 1
                cache.set_state(address, LineState.SHARED)
            else:  # BUS_RDX or BUS_UPGR: exclusive request
                if state is LineState.MODIFIED:
                    writeback = True
                    self.n_writebacks += 1
                    if supplier is None:
                        supplier = cache.cluster_id
                        supplier_dirty = True
                elif supplier is None and op is BusOp.BUS_RDX:
                    supplier = cache.cluster_id
                cache.invalidate(address)
                invalidated.append(cache.cluster_id)
                self.n_invalidations += 1
        if supplier is not None:
            self.n_interventions += 1
        return SnoopResult(
            supplier=supplier,
            supplier_was_dirty=supplier_dirty,
            invalidated=tuple(invalidated),
            writeback=writeback,
        )

    # ------------------------------------------------------------------
    def holders(self, address: int) -> List[Tuple[int, LineState]]:
        """All clusters currently holding the line (debug/test helper)."""
        result = []
        for cache in self.caches:
            state = cache.state_of(address)
            if state is not LineState.INVALID:
                result.append((cache.cluster_id, state))
        return result

    def check_invariants(self, address: int) -> None:
        """MSI safety: at most one M holder, and M excludes S copies."""
        holders = self.holders(address)
        dirty = [c for c, s in holders if s is LineState.MODIFIED]
        if len(dirty) > 1:
            raise AssertionError(f"multiple M holders for {address:#x}: {dirty}")
        if dirty and len(holders) > 1:
            raise AssertionError(
                f"M holder coexists with other copies for {address:#x}: {holders}"
            )

    def reset_stats(self) -> None:
        self.n_invalidations = 0
        self.n_interventions = 0
        self.n_writebacks = 0
