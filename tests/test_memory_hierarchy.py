"""Integration tests for the distributed memory system timing model."""

import pytest

from repro.machine import BusConfig, four_cluster, two_cluster
from repro.memory import AccessLevel, DistributedMemorySystem, LineState


def _system(machine=None):
    return DistributedMemorySystem(machine or two_cluster(
        memory_bus=BusConfig(count=1, latency=1)
    ))


class TestBasicAccess:
    def test_cold_miss_goes_to_main_memory(self):
        system = _system()
        result = system.access(0, 0, is_store=False, time=0)
        assert result.level == AccessLevel.MAIN
        # detect (2) + bus (1) + main memory (10)
        assert result.ready_time == 13
        assert system.stats.main_memory == 1

    def test_second_access_hits_locally(self):
        system = _system()
        first = system.access(0, 0, is_store=False, time=0)
        result = system.access(0, 0, is_store=False, time=first.ready_time)
        assert result.level == AccessLevel.LOCAL
        assert result.ready_time == first.ready_time + 2
        assert system.stats.local_hits == 1

    def test_same_line_hit(self):
        system = _system()
        first = system.access(0, 0, is_store=False, time=0)
        result = system.access(0, 24, is_store=False, time=first.ready_time)
        assert result.level == AccessLevel.LOCAL

    def test_remote_hit_cheaper_than_main(self):
        system = _system()
        fill = system.access(0, 0, is_store=False, time=0)
        remote = system.access(1, 0, is_store=False, time=fill.ready_time)
        assert remote.level == AccessLevel.REMOTE
        # detect (2) + bus (1) + remote cache (2)
        assert remote.ready_time == fill.ready_time + 5
        assert system.stats.remote_hits == 1


class TestStores:
    def test_store_miss_takes_exclusive(self):
        system = _system()
        result = system.access(0, 0, is_store=True, time=0)
        assert result.level == AccessLevel.MAIN
        assert system.caches[0].state_of(0) is LineState.MODIFIED

    def test_store_to_shared_upgrades(self):
        system = _system()
        t = system.access(0, 0, is_store=False, time=0).ready_time
        result = system.access(0, 0, is_store=True, time=t)
        assert result.level == AccessLevel.LOCAL
        assert system.stats.coherence_upgrades == 1
        assert system.caches[0].state_of(0) is LineState.MODIFIED

    def test_store_invalidates_remote_copies(self):
        system = _system()
        t = system.access(1, 0, is_store=False, time=0).ready_time
        system.access(0, 0, is_store=True, time=t)
        assert system.caches[1].state_of(0) is LineState.INVALID

    def test_remote_dirty_supplier_writes_back(self):
        system = _system()
        t = system.access(0, 0, is_store=True, time=0).ready_time
        result = system.access(1, 0, is_store=False, time=t)
        assert result.level == AccessLevel.REMOTE
        assert system.stats.writebacks >= 1
        assert system.caches[0].state_of(0) is LineState.SHARED


class TestContention:
    def test_bus_wait_accumulates(self):
        system = _system()
        system.access(0, 0, is_store=False, time=0)
        result = system.access(1, 4096, is_store=False, time=0)
        assert result.bus_wait > 0
        assert system.stats.bus_wait_cycles > 0

    def test_unbounded_bus_no_wait(self):
        machine = two_cluster(memory_bus=BusConfig(count=None, latency=1))
        system = DistributedMemorySystem(machine)
        system.access(0, 0, is_store=False, time=0)
        result = system.access(1, 4096, is_store=False, time=0)
        assert result.bus_wait == 0

    def test_mshr_full_delays(self):
        """More concurrent misses than MSHR entries forces waiting."""
        machine = two_cluster(memory_bus=BusConfig(count=None, latency=1))
        system = DistributedMemorySystem(machine)
        # 10 MSHR entries per cluster; issue 12 distinct-line misses at t=0.
        waits = [
            system.access(0, 8192 * k, is_store=False, time=0).mshr_wait
            for k in range(12)
        ]
        assert waits[-1] > 0
        assert system.stats.mshr_wait_cycles > 0


class TestMerging:
    def test_secondary_miss_merges(self):
        system = _system()
        first = system.access(0, 0, is_store=False, time=0)
        merged = system.access(0, 8, is_store=False, time=1)
        assert merged.merged
        assert merged.ready_time <= first.ready_time
        assert system.stats.merged == 1

    def test_cross_cluster_inflight_merge(self):
        """A second cluster missing on an in-flight line completes early."""
        machine = two_cluster(memory_bus=BusConfig(count=None, latency=1))
        system = DistributedMemorySystem(machine)
        first = system.access(0, 0, is_store=False, time=0)
        second = system.access(1, 0, is_store=False, time=1)
        full_cost = 1 + 2 + 1 + 10
        assert second.ready_time < full_cost
        assert system.stats.merged >= 1


class TestFillCompletionBoundary:
    """Boundary-cycle semantics of in-flight fills (PR 5 audit).

    The repo-wide convention is that anything completing at cycle ``T``
    is available to a request issued *at* ``T``: consumer stalls require
    ``operand_ready > issue``, MSHR entries released at ``T`` do not
    block a ``T`` allocation, and a fill completing at ``T`` no longer
    merges a ``T`` access.  These tests pin each boundary so an
    accidental ``<`` / ``<=`` flip in any of the four checks
    (:mod:`repro.memory.hierarchy` lines around ``pending <= time``,
    ``supplier_pending > bus_grant``, ``pending > bus_grant``;
    :meth:`repro.memory.cache.MSHR.allocate`'s ``t > time``) fails
    loudly instead of silently shifting figures.
    """

    def test_access_one_cycle_before_fill_merges(self):
        system = _system()
        first = system.access(0, 0, is_store=False, time=0)
        fill = first.ready_time  # 13: detect 2 + bus 1 + main 10
        result = system.access(0, 0, is_store=False, time=fill - 1)
        assert result.merged
        # Data arrives with the fill, not before.
        assert result.ready_time == max(fill - 1 + 2, fill)
        assert system.stats.merged == 1

    def test_access_at_fill_cycle_is_a_plain_hit(self):
        system = _system()
        first = system.access(0, 0, is_store=False, time=0)
        fill = first.ready_time
        result = system.access(0, 0, is_store=False, time=fill)
        assert not result.merged
        assert result.ready_time == fill + 2
        assert system.stats.merged == 0

    def test_supplier_with_fill_pending_at_grant_supplies(self):
        """A remote holder whose fill completes exactly at the bus grant
        can supply the line (available-at-T convention)."""
        system = _system()
        first = system.access(0, 0, is_store=False, time=0)
        fill = first.ready_time  # cluster 0's in-flight completes here
        # Issue so the second miss's bus grant lands exactly on ``fill``:
        # detect = time + 2, bus free well before, so grant = time + 2.
        result = system.access(1, 0, is_store=False, time=fill - 2)
        assert result.level == AccessLevel.REMOTE
        assert system.stats.remote_hits == 1

    def test_supplier_with_fill_pending_after_grant_merges_into_main(self):
        system = _system()
        first = system.access(0, 0, is_store=False, time=0)
        fill = first.ready_time
        # One cycle earlier the supplier's fill is still in flight at the
        # grant; the request resolves through main memory, merging with
        # the fill already under way.
        result = system.access(1, 0, is_store=False, time=fill - 3)
        assert result.level == AccessLevel.MAIN
        assert result.merged
        assert result.ready_time == fill
        assert system.stats.remote_hits == 0

    def test_main_fill_completing_at_grant_pays_full_latency(self):
        system = _system()
        # White-box: a main-memory fill completing exactly at this miss's
        # bus grant (detect 2 + idle bus = grant 2) cannot serve it.
        system._main_in_flight[0] = 2
        result = system.access(0, 0, is_store=False, time=0)
        assert not result.merged
        assert result.ready_time == 2 + 1 + 10

    def test_main_fill_completing_after_grant_merges(self):
        system = _system()
        system._main_in_flight[0] = 3
        result = system.access(0, 0, is_store=False, time=0)
        assert result.merged
        # No earlier than the transfer, no later than the in-flight fill.
        assert result.ready_time == 3

    def test_mshr_entry_released_at_allocation_time_frees(self):
        from repro.memory.cache import MSHR

        mshr = MSHR(1)
        mshr.hold(5)
        assert mshr.allocate(5) == 5  # released at 5, usable at 5
        mshr2 = MSHR(1)
        mshr2.hold(6)
        assert mshr2.allocate(5) == 6  # still held at 5, wait one cycle


class TestCoherenceIntegration:
    def test_invariants_hold_after_mixed_traffic(self):
        system = DistributedMemorySystem(four_cluster(
            memory_bus=BusConfig(count=None, latency=1)
        ))
        time = 0
        for step, (cluster, addr, store) in enumerate([
            (0, 0, False), (1, 0, False), (2, 0, True), (3, 0, False),
            (0, 64, True), (1, 64, True), (2, 64, False), (0, 0, True),
        ]):
            result = system.access(cluster, addr, store, time)
            time = result.ready_time
            system.check_coherence([0, 64])

    def test_reset_clears_everything(self):
        system = _system()
        system.access(0, 0, is_store=False, time=0)
        system.reset()
        assert system.stats.accesses == 0
        assert system.caches[0].resident_lines() == 0
        result = system.access(0, 0, is_store=False, time=0)
        assert result.level == AccessLevel.MAIN


class TestStatsAccounting:
    def test_accesses_counted(self):
        system = _system()
        t = 0
        for _ in range(5):
            t = system.access(0, 0, is_store=False, time=t).ready_time
        assert system.stats.accesses == 5
        assert system.stats.local_hits == 4
        assert system.stats.local_miss_ratio == pytest.approx(0.2)

    def test_as_dict_keys(self):
        stats = _system().stats.as_dict()
        for key in ("accesses", "local_hits", "remote_hits", "main_memory",
                    "bus_wait_cycles", "mshr_wait_cycles"):
            assert key in stats
