"""Unit tests for the analytic CME backend."""

import pytest

from repro.cme.analytic import AnalyticCME
from repro.ir import LoopBuilder
from repro.machine.config import CacheConfig


def _kernel(build):
    b = LoopBuilder("k")
    i = b.dim("i", 0, 64)
    build(b, i)
    return b.build()


class TestSelfMissRatios:
    def test_unit_stride(self):
        kernel = _kernel(
            lambda b, i: b.load(b.array("A", (64,)), [b.aff(i=1)], name="ld")
        )
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32)
        ratio = cme.miss_ratio(
            kernel.loop, kernel.loop.operation("ld"),
            kernel.loop.memory_operations, cache,
        )
        assert ratio == pytest.approx(8 / 32)

    def test_temporal_zero(self):
        b = LoopBuilder("k")
        j = b.dim("j", 0, 4)
        i = b.dim("i", 0, 16)
        a = b.array("A", (16, 16))
        b.load(a, [b.aff(j=1), b.aff(0)], name="ld")
        kernel = b.build()
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32)
        assert cme.miss_ratio(
            kernel.loop, kernel.loop.operation("ld"),
            kernel.loop.memory_operations, cache,
        ) == 0.0

    def test_big_stride_one(self):
        kernel = _kernel(
            lambda b, i: b.load(b.array("A", (512,)), [b.aff(i=8)], name="ld")
        )
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32)
        assert cme.miss_ratio(
            kernel.loop, kernel.loop.operation("ld"),
            kernel.loop.memory_operations, cache,
        ) == 1.0


class TestGroupReuse:
    def test_follower_discounted(self):
        def build(b, i):
            a = b.array("A", (128,))
            b.load(a, [b.aff(i=1)], name="lead")
            b.load(a, [b.aff(1, i=1)], name="follow")
        kernel = _kernel(build)
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32)
        ops = kernel.loop.memory_operations
        lead = cme.miss_ratio(kernel.loop, kernel.loop.operation("lead"), ops, cache)
        follow = cme.miss_ratio(
            kernel.loop, kernel.loop.operation("follow"), ops, cache
        )
        assert follow < lead


class TestConflicts:
    def _pingpong(self):
        def build(b, i):
            x = b.array("X", (64,), base=0)
            y = b.array("Y", (64,), base=1024)
            b.load(x, [b.aff(i=1)], name="ld_x")
            b.load(y, [b.aff(i=1)], name="ld_y")
        return _kernel(build)

    def test_pingpong_forces_full_miss(self):
        kernel = self._pingpong()
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32)
        ops = kernel.loop.memory_operations
        for op in ops:
            assert cme.miss_ratio(kernel.loop, op, ops, cache) == 1.0

    def test_no_conflict_when_separated(self):
        def build(b, i):
            x = b.array("X", (64,), base=0)
            y = b.array("Y", (64,), base=512)  # other half of the image
            b.load(x, [b.aff(i=1)], name="ld_x")
            b.load(y, [b.aff(i=1)], name="ld_y")
        kernel = _kernel(build)
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32)
        ops = kernel.loop.memory_operations
        for op in ops:
            assert cme.miss_ratio(kernel.loop, op, ops, cache) < 1.0

    def test_associative_cache_has_no_pingpong(self):
        kernel = self._pingpong()
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32, associativity=2)
        ops = kernel.loop.memory_operations
        for op in ops:
            assert cme.miss_ratio(kernel.loop, op, ops, cache) < 1.0


class TestProtocol:
    def test_miss_count_scales_with_iterations(self):
        kernel = _kernel(
            lambda b, i: b.load(b.array("A", (512,)), [b.aff(i=8)], name="ld")
        )
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32)
        count = cme.miss_count(
            kernel.loop, kernel.loop.memory_operations, cache
        )
        assert count == pytest.approx(kernel.loop.n_iterations)

    def test_memoized(self):
        kernel = _kernel(
            lambda b, i: b.load(b.array("A", (64,)), [b.aff(i=1)], name="ld")
        )
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32)
        ops = kernel.loop.memory_operations
        first = cme.per_op_miss_ratio(kernel.loop, ops, cache)
        second = cme.per_op_miss_ratio(kernel.loop, ops, cache)
        assert first is second

    def test_unknown_op_ratio_zero(self):
        kernel = _kernel(
            lambda b, i: b.load(b.array("A", (64,)), [b.aff(i=1)], name="ld")
        )
        b2 = LoopBuilder("other")
        i2 = b2.dim("i", 0, 4)
        a2 = b2.array("Z", (8,))
        other = b2.load(a2, [b2.aff(i=1)], name="zld")
        other_kernel = b2.build()
        cme = AnalyticCME()
        cache = CacheConfig(size=1024, line_size=32)
        ratio = cme.miss_ratio(
            kernel.loop,
            other_kernel.loop.operation("zld"),
            kernel.loop.memory_operations,
            cache,
        )
        assert ratio == 0.0
