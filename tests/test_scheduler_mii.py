"""Unit tests for MII computation (ResMII, RecMII)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.compare import run_cell
from repro.cme import SamplingCME
from repro.ir import LoopBuilder
from repro.ir.ddg import DepEdge, build_ddg
from repro.machine import BusConfig, four_cluster, two_cluster, unified
from repro.scheduler.mii import compute_mii, edge_latency, rec_mii, res_mii
from repro.workloads import kernel_by_name


def _n_loads(n, with_recurrence=False, distance=1):
    b = LoopBuilder("k")
    i = b.dim("i", 0, 32)
    a = b.array("A", (64,))
    values = [b.load(a, [b.aff(k, i=1)], name=f"ld{k}") for k in range(n)]
    if with_recurrence:
        b.fadd(
            b.prev_value("acc", distance=distance), values[0],
            dest="acc", name="accum",
        )
    return b.build()


class TestResMII:
    def test_under_capacity_is_one(self):
        kernel = _n_loads(4)
        assert res_mii(kernel.ddg, unified()) == 1

    def test_memory_bound(self):
        kernel = _n_loads(9)
        # Unified has 4 memory units: ceil(9/4) = 3.
        assert res_mii(kernel.ddg, unified()) == 3

    def test_aggregate_across_clusters(self):
        kernel = _n_loads(8)
        # 4-cluster machine has 4 memory units total.
        assert res_mii(kernel.ddg, four_cluster()) == 2

    def test_mixed_fu_types(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (16,))
        v = b.load(a, [b.aff(i=1)])
        for _ in range(9):
            v = b.fadd(v, v)
        kernel = b.build()
        # 9 FP ops on 4 FP units (unified): ceil(9/4) = 3.
        assert res_mii(kernel.ddg, unified()) == 3

    def test_missing_fu_kind_raises(self):
        from repro.machine.config import (
            BusConfig, CacheConfig, ClusterConfig, MachineConfig,
        )
        machine = MachineConfig(
            name="no-fp",
            clusters=(
                ClusterConfig(
                    n_integer=1, n_fp=0, n_memory=1, n_registers=8,
                    cache=CacheConfig(size=1024),
                ),
            ),
            register_bus=BusConfig(count=1, latency=1),
            memory_bus=BusConfig(count=1, latency=1),
        )
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (16,))
        v = b.load(a, [b.aff(i=1)])
        b.fadd(v, v)
        kernel = b.build()
        with pytest.raises(ValueError, match="machine has none"):
            res_mii(kernel.ddg, machine)


class TestRecMII:
    def test_dag_is_one(self):
        kernel = _n_loads(3)
        assert rec_mii(kernel.ddg, unified()) == 1

    def test_simple_accumulation(self):
        kernel = _n_loads(1, with_recurrence=True)
        # acc -> acc flow at distance 1, FADD latency 2: RecMII = 2.
        assert rec_mii(kernel.ddg, unified()) == 2

    def test_distance_divides_latency(self):
        kernel = _n_loads(1, with_recurrence=True, distance=2)
        # latency 2 over distance 2: RecMII = 1.
        assert rec_mii(kernel.ddg, unified()) == 1

    def test_longer_cycle(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 16)
        a = b.array("A", (32,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        t = b.fmul(b.prev_value("u", distance=1), v, name="mul", dest="t")
        u = b.fadd(t, v, name="add", dest="u")
        kernel = b.build()
        # Cycle mul->add->mul: latency 2+2 = 4 over distance 1.
        assert rec_mii(kernel.ddg, unified()) == 4

    def test_latency_override(self):
        kernel = _n_loads(1, with_recurrence=True)
        machine = unified()
        # Pretend the accumulator op takes 7 cycles.
        def latency_of(op):
            return 7 if op.name == "accum" else machine.latency(op.opclass)
        assert rec_mii(kernel.ddg, machine, latency_of) == 7

    def test_zero_distance_cycle_rejected(self):
        kernel = _n_loads(2)
        kernel.ddg.add_edge(DepEdge("ld0", "ld1", "mem", 0))
        kernel.ddg.add_edge(DepEdge("ld1", "ld0", "mem", 0))
        with pytest.raises(ValueError, match="zero-distance cycle"):
            rec_mii(kernel.ddg, unified())


class TestComputeMII:
    def test_max_of_bounds(self):
        kernel = _n_loads(9, with_recurrence=True)
        mii, res, rec = compute_mii(kernel.ddg, unified())
        assert res == 3
        assert rec == 2
        assert mii == 3

    def test_recurrence_dominates(self):
        kernel = _n_loads(1, with_recurrence=True)
        mii, res, rec = compute_mii(kernel.ddg, unified())
        assert mii == rec == 2


class TestEdgeLatency:
    def test_flow_uses_producer_latency(self):
        kernel = _n_loads(1)
        machine = unified()
        op = kernel.loop.operation("ld0")
        assert edge_latency(op, "flow", machine) == machine.latency(op.opclass)

    def test_anti_is_zero(self):
        kernel = _n_loads(1)
        op = kernel.loop.operation("ld0")
        assert edge_latency(op, "anti", unified()) == 0

    def test_output_and_mem_are_one(self):
        kernel = _n_loads(1)
        op = kernel.loop.operation("ld0")
        assert edge_latency(op, "output", unified()) == 1
        assert edge_latency(op, "mem", unified()) == 1

    def test_latency_of_override(self):
        kernel = _n_loads(1)
        op = kernel.loop.operation("ld0")
        assert edge_latency(op, "flow", unified(), latency_of=lambda _o: 42) == 42


# ----------------------------------------------------------------------
# Property tests over a random sample of experiment-grid cells
# ----------------------------------------------------------------------
_PROPERTY_ANALYZER = SamplingCME(max_points=64)

_MACHINES = {
    "unified": unified(),
    "2-cluster": two_cluster(),
    "4-cluster": four_cluster(),
    "2-cluster-unbounded": two_cluster(
        register_bus=BusConfig(count=None, latency=2),
        memory_bus=BusConfig(count=None, latency=1),
    ),
    "4-cluster-slow-bus": four_cluster(
        memory_bus=BusConfig(count=2, latency=4),
    ),
}

cell_strategy = st.tuples(
    st.sampled_from(("su2cor", "applu")),
    st.sampled_from(sorted(_MACHINES)),
    st.sampled_from(("baseline", "rmca")),
    st.sampled_from((0.0, 0.25, 0.5, 0.75, 1.0)),
)


class TestCellInvariantProperties:
    """Scheduler invariants over a random cell sample (II/MII, cycles)."""

    @given(cell=cell_strategy)
    @settings(max_examples=12, deadline=None)
    def test_ii_bounds_and_cycle_decomposition(self, cell):
        kernel_name, machine_name, scheduler, threshold = cell
        result = run_cell(
            kernel_by_name(kernel_name),
            _MACHINES[machine_name],
            scheduler,
            threshold,
            _PROPERTY_ANALYZER,
        )
        schedule = result.schedule
        # The achieved II can never beat the MII lower bound, and the
        # MII is the max of its resource and recurrence components.
        assert schedule.ii >= schedule.mii >= 1
        assert schedule.mii == max(schedule.res_mii, schedule.rec_mii)
        # Cycle accounting: compute is the static modulo-schedule
        # formula, stalls are non-negative, and the components add up.
        simulation = result.simulation
        assert simulation.compute_cycles == schedule.compute_cycles(
            simulation.n_iterations, simulation.n_times
        )
        assert simulation.stall_cycles >= 0
        assert (
            simulation.compute_cycles + simulation.stall_cycles
            == simulation.total_cycles
        )
        assert simulation.as_dict()["total_cycles"] == result.total_cycles
