"""Scalar-vs-vectorized simulate-engine equivalence.

The load-bearing contract of the vectorized engine (PR 5): for every
cell the repository can run, :class:`VectorizedSimulator` produces a
**bit-identical** :class:`SimulationResult` — including memory
statistics and steady-state reports — *and* leaves the memory system in
a behaviourally identical state (equal ``state_signature``/``counters``)
compared to the scalar reference walk.  Coverage mirrors
``tests/test_scheduler_equivalence.py``: every registered grid-scenario
cell, the golden figure panels' reduced grids, every steady mode, and
hypothesis-generated kernels.

The batched memory API the engine rides on is pinned separately:
``DistributedMemorySystem.access_batch`` must match ``access`` call for
call, down to raw container state, on randomized access streams.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cme import IncrementalCME
from repro.engine import CellRequest, execute_cell
from repro.engine.stages import make_scheduler
from repro.harness.grid import CellSpec, machine_key
from repro.harness.scenarios import all_scenarios
from repro.machine import BusConfig, four_cluster, heterogeneous, two_cluster, unified
from repro.memory.hierarchy import DistributedMemorySystem
from repro.simulator import (
    DEFAULT_SIM_ENGINE,
    SIM_ENGINES,
    LockstepSimulator,
    VectorizedSimulator,
    simulate,
)
from repro.workloads import GeneratorConfig, random_kernel, spec_suite
from repro.workloads.suite import streaming_long_suite

MAX_POINTS = 512


@pytest.fixture(scope="module")
def analyzer():
    return IncrementalCME(max_points=MAX_POINTS)


def _assert_engines_agree(schedule, steady=None, exact=False,
                          n_iterations=None, n_times=None, label=""):
    """Run both engines on one schedule and compare everything."""
    scalar = LockstepSimulator(
        schedule, steady=steady, exact=exact,
        n_iterations=n_iterations, n_times=n_times,
    )
    vector = VectorizedSimulator(
        schedule, steady=steady, exact=exact,
        n_iterations=n_iterations, n_times=n_times,
    )
    want = scalar.run()
    got = vector.run()
    context = f"{label} {schedule.kernel.name} steady={steady} exact={exact}"
    assert got.as_dict() == want.as_dict(), context
    assert vector.memory.counters() == scalar.memory.counters(), context
    assert (
        vector.memory.state_signature(0) == scalar.memory.state_signature(0)
    ), context
    assert vector.steady_report == scalar.steady_report, context
    assert vector.steady_state == scalar.steady_state, context
    return vector


def _grid_scenario_cells():
    """Every registered grid-scenario cell, deduplicated on what the
    simulate stage actually reads."""
    seen = set()
    for scenario in all_scenarios():
        if scenario.is_figure:
            continue
        kernels = scenario.build_kernels()
        for group in scenario.groups:
            machine = group.machine.build()
            steady = group.steady if group.steady is not None else scenario.steady
            for threshold in scenario.thresholds:
                for kernel in kernels:
                    key = (
                        kernel.name,
                        machine_key(machine),
                        group.scheduler,
                        threshold,
                        steady,
                        scenario.n_iterations,
                        scenario.n_times,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    yield (
                        f"{scenario.name}:{group.label}",
                        kernel,
                        machine,
                        group.scheduler,
                        threshold,
                        steady,
                        scenario.n_iterations,
                        scenario.n_times,
                    )


def _figure_panel_cells():
    """The golden-regression figure panels (reduced grids, steady=auto)."""
    kernels = spec_suite()
    fig6_machine = two_cluster(
        register_bus=BusConfig(count=2, latency=1),
        memory_bus=BusConfig(count=1, latency=1),
    )
    fig5_machine = four_cluster(
        register_bus=BusConfig(count=None, latency=1),
        memory_bus=BusConfig(count=None, latency=1),
    )
    reference = unified(memory_bus=BusConfig(count=1, latency=1))
    for kernel in kernels:
        for threshold in (1.0, 0.75, 0.25, 0.0):
            yield "fig6:unified", kernel, reference, "baseline", threshold
            for scheduler in ("baseline", "rmca"):
                yield "fig6:NMB=1,LMB=1", kernel, fig6_machine, scheduler, threshold
        for threshold in (1.0, 0.0):
            for scheduler in ("baseline", "rmca"):
                yield "fig5:LRB=1,LMB=1", kernel, fig5_machine, scheduler, threshold


class TestScenarioCellEquivalence:
    def test_every_grid_scenario_cell(self, analyzer):
        checked = 0
        for (label, kernel, machine, scheduler, threshold, steady,
             n_iterations, n_times) in _grid_scenario_cells():
            engine = make_scheduler(scheduler, threshold, analyzer)
            schedule = engine.schedule(kernel, machine)
            vector = _assert_engines_agree(
                schedule, steady=steady,
                n_iterations=n_iterations, n_times=n_times, label=label,
            )
            assert not vector.vector_stats["fallback"], label
            checked += 1
        assert checked > 0

    def test_golden_figure_panels(self, analyzer):
        checked = 0
        for label, kernel, machine, scheduler, threshold in _figure_panel_cells():
            engine = make_scheduler(scheduler, threshold, analyzer)
            schedule = engine.schedule(kernel, machine)
            _assert_engines_agree(schedule, steady="auto", label=label)
            checked += 1
        assert checked > 0


class TestSteadyModeMatrix:
    """Both detectors, all modes, and the exact escape hatch."""

    @pytest.mark.parametrize("kernel_name", ["su2cor", "turb3d", "tomcatv", "mgrid"])
    @pytest.mark.parametrize("steady", ["off", "entry", "iteration", "auto"])
    def test_modes(self, kernel_name, steady, analyzer):
        kernel = next(k for k in spec_suite() if k.name == kernel_name)
        schedule = make_scheduler("rmca", 1.0, analyzer).schedule(
            kernel, two_cluster()
        )
        _assert_engines_agree(schedule, steady=steady, label=steady)

    def test_exact_flag(self, analyzer):
        kernel = spec_suite()[0]
        schedule = make_scheduler("baseline", 1.0, analyzer).schedule(
            kernel, heterogeneous()
        )
        _assert_engines_agree(schedule, exact=True, label="exact")

    def test_iteration_overrides(self, analyzer):
        kernel = next(k for k in spec_suite() if k.name == "applu")
        schedule = make_scheduler("baseline", 1.0, analyzer).schedule(
            kernel, four_cluster()
        )
        _assert_engines_agree(
            schedule, steady="iteration", n_iterations=300, n_times=3,
            label="overrides",
        )

    def test_streaming_long_detection_fires_vectorized(self, analyzer):
        """The streaming-long suite must detect (and fast-forward) under
        the vectorized engine too."""
        for kernel in streaming_long_suite():
            schedule = make_scheduler("rmca", 1.0, analyzer).schedule(
                kernel, two_cluster()
            )
            vector = _assert_engines_agree(
                schedule, steady="auto", label="streaming-long"
            )
            assert vector.steady_report.iterations_replayed > 0, kernel.name


class TestHypothesisKernels:
    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_kernels(self, seed):
        kernel = random_kernel(seed)
        schedule = make_scheduler("baseline", 1.0, None).schedule(
            kernel, two_cluster()
        )
        _assert_engines_agree(schedule, steady="auto", label=f"rand{seed}")

    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_conflict_heavy_kernels(self, seed):
        config = GeneratorConfig(
            conflict_probability=0.9, max_dims=1, min_extent=32
        )
        kernel = random_kernel(seed, config)
        schedule = make_scheduler("baseline", 1.0, None).schedule(
            kernel, four_cluster()
        )
        _assert_engines_agree(schedule, steady="auto", label=f"conflict{seed}")


class TestAccessBatch:
    """access_batch vs access: identical results AND identical raw state."""

    @staticmethod
    def _state_dump(memory):
        return (
            [
                {k: [(l.tag, l.state) for l in v] for k, v in c._sets.items() if v}
                for c in memory.caches
            ],
            [dict(c.in_flight) for c in memory.caches],
            [sorted(c.mshr._release_times) for c in memory.caches],
            [c.mshr.total_wait_cycles for c in memory.caches],
            [c.mshr.peak_occupancy for c in memory.caches],
            memory.bus._busy_until,
            memory.bus.total_wait_cycles,
            memory.bus.total_transactions,
            memory.bus.total_busy_cycles,
            memory.msi.n_invalidations,
            memory.msi.n_interventions,
            memory.msi.n_writebacks,
            dict(memory._main_in_flight),
            memory.stats.as_dict(),
        )

    def test_randomized_streams_bit_identical(self):
        rng = random.Random(1234)
        infinite = 1 << 60
        for trial in range(150):
            machine = rng.choice([two_cluster, four_cluster, heterogeneous])()
            scalar = DistributedMemorySystem(machine)
            batched = DistributedMemorySystem(machine)
            n = rng.randrange(1, 60)
            n_clusters = len(machine.clusters)
            time = 0
            clusters, addresses, stores, nominals = [], [], [], []
            for _ in range(n):
                time += rng.randrange(0, 6)
                clusters.append(rng.randrange(n_clusters))
                addresses.append(
                    rng.randrange(0, 4096) * rng.choice([1, 4, 8])
                )
                stores.append(rng.random() < 0.35)
                nominals.append(time)
            want = [
                scalar.access(
                    clusters[i], addresses[i], stores[i], nominals[i]
                ).ready_time
                for i in range(n)
            ]
            got = [None] * n
            slacks = [rng.choice([0, 2, 5, infinite]) for _ in range(n)]
            index = 0
            while index < n:
                end = min(n, index + rng.randrange(1, n + 1))
                consumed = batched.access_batch(
                    clusters, addresses, stores, nominals, 0, slacks,
                    got, index, end,
                )
                assert consumed >= 1
                # Hazard-stop contract: every consumed access except
                # possibly the last stayed within its slack.
                for j in range(index, index + consumed - 1):
                    assert got[j] <= nominals[j] + slacks[j]
                index += consumed
            assert want == got, trial
            assert self._state_dump(scalar) == self._state_dump(batched), trial

    def test_hazard_stop_returns_early(self):
        system = DistributedMemorySystem(
            two_cluster(memory_bus=BusConfig(count=1, latency=1))
        )
        ready = [None, None]
        # Two cold misses: slack 0 makes the first one a hazard.
        consumed = system.access_batch(
            [0, 0], [0, 64], [False, False], [0, 1], 0, [0, 0], ready, 0, 2
        )
        assert consumed == 1
        assert ready[0] is not None and ready[1] is None


class TestEngineSelection:
    def test_simulate_defaults_to_vectorized(self, analyzer):
        assert DEFAULT_SIM_ENGINE == "vectorized"
        assert SIM_ENGINES["vectorized"] is VectorizedSimulator
        assert SIM_ENGINES["scalar"] is LockstepSimulator

    def test_simulate_stage_reports_engine_and_telemetry(self, analyzer):
        outcome = execute_cell(
            CellRequest(
                kernel=spec_suite()[0],
                machine=two_cluster(),
                scheduler="baseline",
                locality=analyzer,
            )
        )
        stats = outcome.report.stage("simulate").stats
        assert stats["sim_requested"] == "vectorized"
        assert stats["sim_engine"] == "vectorized"
        assert stats["sim_fallback"] is False
        assert stats["sim_batches"] > 0
        assert stats["sim_batched_accesses"] > 0

    def test_simulate_stage_scalar_selection(self, analyzer):
        outcome = execute_cell(
            CellRequest(
                kernel=spec_suite()[0],
                machine=two_cluster(),
                scheduler="baseline",
                locality=analyzer,
                sim="scalar",
            )
        )
        stats = outcome.report.stage("simulate").stats
        assert stats["sim_requested"] == "scalar"
        assert stats["sim_engine"] == "scalar"

    def test_unknown_engine_rejected(self, analyzer):
        with pytest.raises(KeyError):
            simulate(
                make_scheduler("baseline", 1.0, analyzer).schedule(
                    spec_suite()[0], unified()
                ),
                sim="warp-drive",
            )

    def test_cellspec_keys_engines_apart(self):
        kernel = spec_suite()[0]
        machine = two_cluster()
        vectorized = CellSpec.of(kernel, machine, "rmca", 1.0)
        scalar = CellSpec.of(kernel, machine, "rmca", 1.0, sim="scalar")
        assert vectorized.sim == "vectorized"
        assert vectorized.cache_key("x") != scalar.cache_key("x")
        assert CellSpec.from_json(scalar.to_json()) == scalar

    def test_forced_fallback_stays_bit_identical(self, analyzer):
        """The scalar fallback path (statically unsafe schedules) runs
        the reference walk and must agree with it."""
        kernel = next(k for k in spec_suite() if k.name == "turb3d")
        schedule = make_scheduler("rmca", 1.0, analyzer).schedule(
            kernel, two_cluster()
        )
        scalar = LockstepSimulator(schedule, steady="auto")
        vector = VectorizedSimulator(schedule, steady="auto")
        vector._vector_ok = False  # force the escape hatch
        assert vector.run().as_dict() == scalar.run().as_dict()
        assert vector.memory.counters() == scalar.memory.counters()
