"""RMCA — Register and Memory Communication-Aware modulo scheduling.

The paper's contribution (Section 4.3).  Non-memory operations are placed
with the register output-edge heuristic, exactly like the Baseline.  For
**memory operations** the cluster is chosen by *cache-miss profit*: every
cluster is scored with the number of cache misses its memory operations
would incur before and after adding the candidate operation (computed by
the Cache Miss Equations analyzer), and the cluster where the added misses
are smallest wins.  Clusters tied on miss profit fall back to the register
heuristic.

After the cluster is fixed the engine's binding-prefetch step decides
whether to schedule the load with the miss latency (threshold test plus
the recurrence guard) — see
:meth:`repro.scheduler.base.CommunicationAwareScheduler._assumed_latency`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..ir.operations import Operation
from .base import CommunicationAwareScheduler, SchedulerConfig, _State

__all__ = ["RMCAScheduler"]


class RMCAScheduler(CommunicationAwareScheduler):
    """Register *and memory* communication-aware modulo scheduler."""

    name = "rmca"

    def __init__(
        self,
        locality,
        config: Optional[SchedulerConfig] = None,
    ):
        if locality is None:
            raise ValueError("RMCA requires a locality analyzer")
        super().__init__(config=config, locality=locality)

    def cluster_score(
        self, state: _State, op: Operation, cluster: int
    ) -> Tuple[float, ...]:
        if not op.is_memory:
            return super().cluster_score(state, op, cluster)
        loop = state.kernel.loop
        cache = state.machine.cluster(cluster).cache
        resident = state.memory_ops_in(cluster)
        before = self.locality.miss_count(loop, resident, cache)
        after = self.locality.miss_count(loop, resident + [op], cache)
        miss_profit = before - after  # <= 0; closer to 0 is better
        return (
            miss_profit,
            self.register_affinity(state, op, cluster),
            -state.ops_per_cluster[cluster],
        )
