"""Minimum initiation interval (MII) computation.

``MII = max(ResMII, RecMII)`` where

* **ResMII** is the resource-constrained bound: for each FU kind, the
  number of operations of that kind divided by the total number of such
  units in the machine (the paper schedules onto the whole machine, so the
  bound uses aggregate resources),
* **RecMII** is the recurrence-constrained bound: for every dependence
  cycle C, ``II * distance(C) >= latency(C)`` must hold.

RecMII is computed by binary search on II with a positive-cycle test on
edge weights ``latency(e) - II * distance(e)`` (Bellman–Ford based), which
is robust for multigraphs and avoids enumerating an exponential number of
elementary circuits.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.ddg import DependenceGraph
from ..ir.operations import FUType, Operation
from ..machine.config import MachineConfig

__all__ = [
    "res_mii",
    "rec_mii",
    "compute_mii",
    "edge_latency",
]

LatencyFn = Callable[[Operation], int]


def edge_latency(
    producer: Operation, kind: str, machine: MachineConfig,
    latency_of: Optional[LatencyFn] = None,
) -> int:
    """Latency contributed by a dependence edge.

    Flow edges wait for the producer's result (its full latency, possibly
    overridden per-op by binding prefetching).  Anti dependences allow
    same-cycle issue in a VLIW (latency 0); output and memory-ordering
    edges serialize by one cycle.
    """
    if kind == "flow":
        if latency_of is not None:
            return latency_of(producer)
        return machine.latency(producer.opclass)
    if kind == "anti":
        return 0
    return 1  # output, mem


def res_mii(ddg: DependenceGraph, machine: MachineConfig) -> int:
    """Resource-constrained lower bound on the II."""
    demand: Dict[FUType, int] = {fu: 0 for fu in FUType}
    for name in ddg.nodes():
        demand[ddg.op(name).fu_type] += 1
    bound = 1
    for fu, count in demand.items():
        supply = sum(cluster.n_units(fu) for cluster in machine.clusters)
        if count == 0:
            continue
        if supply == 0:
            raise ValueError(f"loop needs {fu.value} units but machine has none")
        bound = max(bound, math.ceil(count / supply))
    return bound


def _weighted_edges(
    ddg: DependenceGraph,
    machine: MachineConfig,
    latency_of: Optional[LatencyFn],
) -> List[Tuple[str, str, int, int]]:
    """``(src, dst, latency, distance)`` per dependence edge.

    Latencies do not depend on the II under test, so the binary search
    of :func:`rec_mii` computes them once and re-weights per probe.
    """
    return [
        (
            e.src,
            e.dst,
            edge_latency(ddg.op(e.src), e.kind, machine, latency_of),
            e.distance,
        )
        for e in ddg.edges()
    ]


def _has_positive_cycle(
    nodes: List[str],
    edges: List[Tuple[str, str, int, int]],
    ii: int,
) -> bool:
    """True when some cycle has total ``latency - ii*distance > 0``.

    Longest-path Bellman–Ford from an implicit super-source (all
    distances 0): an improvement surviving ``|V|`` full relaxation
    passes can only come from a positive cycle.  Parallel edges are
    collapsed to their maximum weight at this II, which is exact for
    the test.  (Hand-rolled — this sits on the schedule-stage hot path
    via the binding-prefetch recurrence guard.)
    """
    collapsed: Dict[Tuple[str, str], int] = {}
    for src, dst, lat, distance in edges:
        weight = lat - ii * distance
        key = (src, dst)
        prior = collapsed.get(key)
        if prior is None or weight > prior:
            collapsed[key] = weight
    relaxation = list(collapsed.items())
    dist = {n: 0 for n in nodes}
    for _ in range(len(nodes)):
        changed = False
        for (src, dst), weight in relaxation:
            candidate = dist[src] + weight
            if candidate > dist[dst]:
                dist[dst] = candidate
                changed = True
        if not changed:
            return False
    return True


def rec_mii(
    ddg: DependenceGraph,
    machine: MachineConfig,
    latency_of: Optional[LatencyFn] = None,
) -> int:
    """Recurrence-constrained lower bound on the II.

    ``latency_of`` optionally overrides per-operation latencies (used to
    test whether binding-prefetching a load would raise the II through a
    recurrence, Section 4.3).
    """
    edges = _weighted_edges(ddg, machine, latency_of)
    if not edges:
        return 1
    nodes = list(ddg.nodes())
    low = 1
    high = max(1, sum(lat for _src, _dst, lat, _d in edges))
    if _has_positive_cycle(nodes, edges, high):
        # Only possible with a zero-distance cycle, which is malformed.
        raise ValueError("dependence graph has a zero-distance cycle")
    if not _has_positive_cycle(nodes, edges, low):
        return 1
    while low < high:
        mid = (low + high) // 2
        if _has_positive_cycle(nodes, edges, mid):
            low = mid + 1
        else:
            high = mid
    return low


def compute_mii(
    ddg: DependenceGraph,
    machine: MachineConfig,
    latency_of: Optional[LatencyFn] = None,
) -> Tuple[int, int, int]:
    """Return ``(mii, res_mii, rec_mii)``."""
    res = res_mii(ddg, machine)
    rec = rec_mii(ddg, machine, latency_of)
    return max(res, rec), res, rec
