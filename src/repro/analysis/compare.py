"""Scheduler comparison helpers.

Historically this module *was* the cell executor: ``run_cell`` did the
schedule→simulate pipeline inline.  That monolith now lives in
:mod:`repro.engine` as an explicit build → analyze → schedule → simulate
→ measure pipeline; ``run_cell`` remains as a thin compatibility wrapper
with the same signature and the same :class:`RunResult`, so external
callers and old examples keep working.  New code should build a
:class:`~repro.engine.CellRequest` (or better, submit
:class:`~repro.harness.grid.CellSpec` grids) instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cme.locality import LocalityAnalyzer
from ..engine.pipeline import execute_cell
from ..engine.result import CELL_EXECUTIONS, ExecutionCounter, RunResult
from ..engine.stages import CellRequest, make_scheduler
from ..ir.builder import Kernel
from ..machine.config import MachineConfig

__all__ = [
    "RunResult",
    "run_cell",
    "make_scheduler",
    "normalized_cycles",
    "ExecutionCounter",
    "CELL_EXECUTIONS",
]


def run_cell(
    kernel: Kernel,
    machine: MachineConfig,
    scheduler: str,
    threshold: float = 1.0,
    locality: Optional[LocalityAnalyzer] = None,
    n_iterations: Optional[int] = None,
    n_times: Optional[int] = None,
) -> RunResult:
    """Schedule and simulate one experiment cell.

    Compatibility wrapper over the :mod:`repro.engine` pipeline — one
    call, one :class:`RunResult`, identical to the historical monolith.
    """
    outcome = execute_cell(
        CellRequest(
            kernel=kernel,
            machine=machine,
            scheduler=scheduler,
            threshold=threshold,
            locality=locality,
            n_iterations=n_iterations,
            n_times=n_times,
        )
    )
    return outcome.result


def normalized_cycles(
    results: Sequence[RunResult],
    baselines: Dict[str, int],
) -> List[Dict[str, float]]:
    """Normalize each result's cycles to its kernel's baseline total.

    ``baselines`` maps kernel name → the Unified-configuration total for
    that kernel (the paper normalizes every bar to Unified).  Returns one
    record per result with normalized compute / stall / total.
    """
    records = []
    for result in results:
        try:
            reference = baselines[result.kernel]
        except KeyError:
            raise KeyError(
                f"no baseline for kernel {result.kernel!r}; "
                f"baselines cover {sorted(baselines)}"
            ) from None
        if reference <= 0:
            raise ValueError(f"non-positive baseline for {result.kernel!r}")
        records.append(
            {
                "kernel": result.kernel,
                "machine": result.machine,
                "scheduler": result.scheduler,
                "threshold": result.threshold,
                "norm_compute": result.compute_cycles / reference,
                "norm_stall": result.stall_cycles / reference,
                "norm_total": result.total_cycles / reference,
            }
        )
    return records
