"""Per-stage result-store equivalence and robustness.

The load-bearing contract of the stage store: for every cell the
repository can run, a pipeline execution that *adopts* stored
analyze/schedule/simulate products produces a **bit-identical**
:class:`RunResult` compared to computing everything — per grid-scenario
cell and for the golden figure panels, the same standard
``tests/test_warm_state.py`` holds warm-state reuse to.  The disk layer
is exercised for rot-robustness the same way the cell cache is:
corrupt, truncated, foreign and version-mismatched entries are misses,
never errors.
"""

import pickle

import pytest

from repro.cme import IncrementalCME
from repro.cme.trace import AddressTrace, loop_fingerprint
from repro.engine import CellRequest, StageStore, execute_cell
from repro.engine.stagestore import STAGE_STORE_VERSION
from repro.engine.stages import make_scheduler
from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import run_scenario
from repro.machine import two_cluster
from repro.workloads import spec_suite
from test_simulator_vectorized import _grid_scenario_cells

MAX_POINTS = 512


@pytest.fixture(scope="module")
def analyzer():
    return IncrementalCME(max_points=MAX_POINTS)


def _canonical(results):
    return [result.canonical() for result in results]


def _trace():
    kernel = spec_suite(["applu"])[0]
    return AddressTrace.build(kernel.loop, 16)


class TestStageStoreUnit:
    def test_analyze_key_composition(self):
        base = StageStore.analyze_key("fp", "sampling:512")
        assert StageStore.analyze_key("fp2", "sampling:512") != base
        assert StageStore.analyze_key("fp", "sampling:128") != base
        assert StageStore.analyze_key("fp", "sampling:512") == base

    def test_schedule_key_composition(self):
        base = StageStore.schedule_key("k", "fp", "m", "rmca", 1.0, "s:512")
        for other in (
            StageStore.schedule_key("k2", "fp", "m", "rmca", 1.0, "s:512"),
            StageStore.schedule_key("k", "fp2", "m", "rmca", 1.0, "s:512"),
            StageStore.schedule_key("k", "fp", "m2", "rmca", 1.0, "s:512"),
            StageStore.schedule_key("k", "fp", "m", "baseline", 1.0, "s:512"),
            StageStore.schedule_key("k", "fp", "m", "rmca", 0.25, "s:512"),
            StageStore.schedule_key("k", "fp", "m", "rmca", 1.0, "s:128"),
        ):
            assert other != base
        assert (
            StageStore.schedule_key("k", "fp", "m", "rmca", 1.0, "s:512")
            == base
        )

    def test_simulate_key_composition(self):
        base = StageStore.simulate_key("fp", "vectorized", "auto", None, None)
        for other in (
            StageStore.simulate_key("fp2", "vectorized", "auto", None, None),
            StageStore.simulate_key("fp", "scalar", "auto", None, None),
            StageStore.simulate_key("fp", "vectorized", "entry", None, None),
            StageStore.simulate_key("fp", "vectorized", "auto", 8, None),
            StageStore.simulate_key("fp", "vectorized", "auto", None, 3),
        ):
            assert other != base
        assert (
            StageStore.simulate_key("fp", "vectorized", "auto", None, None)
            == base
        )

    def test_disk_roundtrip(self, tmp_path):
        trace = _trace()
        key = StageStore.analyze_key(trace.loop_fp, "sampling:16")
        store = StageStore(cache_dir=tmp_path)
        store.store("analyze", key, trace)
        fresh = StageStore(cache_dir=tmp_path)
        hit = fresh.lookup("analyze", key)
        assert hit is not None and hit.addresses == trace.addresses
        assert fresh.counts("analyze")["hits"] == 1
        assert fresh.lookup("analyze", "other") is None
        assert fresh.counts("analyze")["misses"] == 1

    @pytest.mark.parametrize(
        "rot",
        [
            b"not a pickle",
            None,  # truncation marker, handled below
            pickle.dumps({"foreign": "object"}),
        ],
        ids=["garbage", "truncated", "foreign"],
    )
    def test_disk_rot_is_a_miss_and_unlinked(self, tmp_path, rot):
        trace = _trace()
        key = StageStore.analyze_key(trace.loop_fp, "sampling:16")
        store = StageStore(cache_dir=tmp_path)
        store.store("analyze", key, trace)
        paths = list(tmp_path.glob("*/*/*.pkl"))
        assert len(paths) == 1
        if rot is None:
            rot = paths[0].read_bytes()[: paths[0].stat().st_size // 2]
        paths[0].write_bytes(rot)
        fresh = StageStore(cache_dir=tmp_path)
        assert fresh.lookup("analyze", key) is None
        assert not paths[0].exists()  # rot dropped, slot reusable

    def test_version_and_value_type_mismatch_are_misses(self, tmp_path):
        trace = _trace()
        key = StageStore.analyze_key(trace.loop_fp, "sampling:16")
        store = StageStore(cache_dir=tmp_path)
        store.store("analyze", key, trace)
        path = next(tmp_path.glob("*/*/*.pkl"))
        for bad in (
            {"version": -1, "stage": "analyze", "key": key, "value": trace},
            # A foreign value type under a valid envelope is still rot:
            {
                "version": STAGE_STORE_VERSION,
                "stage": "analyze",
                "key": key,
                "value": "not a trace",
            },
        ):
            path.write_bytes(pickle.dumps(bad))
            fresh = StageStore(cache_dir=tmp_path)
            assert fresh.lookup("analyze", key) is None
            store._disk_store("analyze", key, trace)  # restore for 2nd case

    def test_clear_wipes_memory_and_disk(self, tmp_path):
        trace = _trace()
        store = StageStore(cache_dir=tmp_path)
        store.store("analyze", "k", trace)
        store.clear()
        assert len(store) == 0
        assert not list(tmp_path.glob("*/*/*.pkl"))
        assert store.lookup("analyze", "k") is None

    def test_publish_is_idempotent(self):
        trace = _trace()
        store = StageStore()
        assert store.publish("analyze", "k", trace) is True
        assert store.publish("analyze", "k", trace) is False
        assert store.counts("analyze")["stores"] == 1

    def test_pickled_copy_keeps_entries_resets_telemetry(self):
        trace = _trace()
        store = StageStore()
        store.store("analyze", "k", trace)
        store.lookup("analyze", "k")
        copy = pickle.loads(pickle.dumps(store))
        assert copy.counts("analyze") == {"hits": 0, "misses": 0, "stores": 0}
        assert copy.drain()["entries"]["analyze"] == {}
        # ... but the content itself ships:
        assert copy.lookup("analyze", "k") is not None

    def test_drain_and_merge(self):
        trace = _trace()
        worker = StageStore()
        worker.store("analyze", "k", trace)
        worker.lookup("analyze", "k")
        worker.lookup("analyze", "missing")
        delta = worker.drain()
        assert set(delta["entries"]["analyze"]) == {"k"}
        # drain resets the worker's local delta:
        assert worker.drain()["entries"]["analyze"] == {}
        assert worker.counts("analyze")["hits"] == 0
        parent = StageStore()
        parent.merge(delta)
        assert parent.lookup("analyze", "k") is not None
        assert parent.counts("analyze") == {
            "hits": 2,  # 1 merged from the worker + the lookup above
            "misses": 1,
            "stores": 1,
        }


class TestStageEquivalence:
    def test_every_grid_scenario_cell(self, analyzer):
        """no-store == store pass == store-hit pass, for every registered
        grid-scenario cell."""
        checked = 0
        store = StageStore()
        for (label, kernel, machine, scheduler, threshold, steady,
             n_iterations, n_times) in _grid_scenario_cells():
            def request(stage_store):
                return CellRequest(
                    kernel=kernel,
                    machine=machine,
                    scheduler=scheduler,
                    threshold=threshold,
                    locality=analyzer,
                    steady=steady,
                    n_iterations=n_iterations,
                    n_times=n_times,
                    stage_store=stage_store,
                )

            cold = execute_cell(request(None)).result.canonical()
            first = execute_cell(request(store))
            second = execute_cell(request(store))
            assert first.result.canonical() == cold, label
            assert second.result.canonical() == cold, label
            assert second.report.stage("schedule").stats["store_hit"], label
            assert second.report.stage("simulate").stats["store_hit"], label
            checked += 1
        assert checked > 0

    def test_threshold_sweep_dedups_simulate(self, tmp_path):
        """The fig6 threshold sweep must skip simulate for the cells
        whose schedules land byte-identical — the headline dedup win."""
        outcome = run_scenario("fig6-smoke", cache=False)
        telemetry = outcome.grid.stage_store.telemetry()
        assert telemetry["simulate"]["hits"] > 0
        probes = (
            telemetry["simulate"]["hits"] + telemetry["simulate"]["misses"]
        )
        assert probes == telemetry["schedule"]["misses"]  # one per cell

    def test_figure_panel_identical_with_store_off(self):
        on = run_scenario("fig6-smoke", cache=False)
        off = run_scenario("fig6-smoke", cache=False, stage_store=False)
        assert off.grid.stage_store is None
        assert on.figure.bars == off.figure.bars
        assert on.figure.records == off.figure.records

    def test_cross_scenario_reuse(self):
        """A second scenario sharing kernels/machines with a cold
        ``fig6-smoke`` run starts from a mostly-hot store."""
        grid = ExperimentGrid(
            locality=IncrementalCME(max_points=MAX_POINTS), cache=False
        )
        run_scenario("fig6-smoke", grid=grid)
        before = grid.stage_store.telemetry()
        second = run_scenario("fig6-steady-ablation", grid=grid)
        after = grid.stage_store.telemetry()
        assert after["schedule"]["hits"] > before["schedule"]["hits"]
        assert after["simulate"]["hits"] > before["simulate"]["hits"]
        off = run_scenario(
            "fig6-steady-ablation", cache=False, stage_store=False
        )
        assert _canonical(second.results) == _canonical(off.results)

    def test_parallel_fanout_merges_back_and_matches(self, tmp_path):
        serial = run_scenario("streaming", cache=False)
        fanned = run_scenario(
            "streaming", cache=True, cache_dir=tmp_path, n_jobs=2
        )
        assert _canonical(fanned.results) == _canonical(serial.results)
        # Worker products travelled back: the parent store can serve a
        # follow-up serial run without recomputing a single schedule.
        store = fanned.grid.stage_store
        assert len(store) > 0
        telemetry = store.telemetry()
        assert telemetry["schedule"]["stores"] == len(fanned.results)
        rerun_grid = ExperimentGrid(
            locality=fanned.scenario.locality.build(), cache=False
        )
        rerun_grid.stage_store = store
        rerun = run_scenario("streaming", grid=rerun_grid)
        after = store.telemetry()
        assert after["schedule"]["hits"] >= len(rerun.results)
        assert after["schedule"]["stores"] == telemetry["schedule"]["stores"]
        assert _canonical(rerun.results) == _canonical(serial.results)

    def test_disk_layer_serves_fresh_store(self, tmp_path):
        cold = run_scenario("streaming", cache_dir=tmp_path)
        assert list((tmp_path / "stages").glob("*/*/*.pkl"))
        fresh_grid = ExperimentGrid(
            locality=cold.scenario.locality.build(), cache=False
        )
        fresh_grid.stage_store = StageStore(cache_dir=tmp_path / "stages")
        warm = run_scenario("streaming", grid=fresh_grid)
        telemetry = fresh_grid.stage_store.telemetry()
        assert telemetry["schedule"]["hits"] == len(warm.results)
        assert telemetry["schedule"]["stores"] == 0
        assert telemetry["simulate"]["stores"] == 0
        assert _canonical(warm.results) == _canonical(cold.results)

    def test_clear_cache_wipes_stages_and_rerun_matches(self, tmp_path):
        outcome = run_scenario("streaming", cache_dir=tmp_path)
        grid = outcome.grid
        assert list((tmp_path / "stages").glob("*/*/*.pkl"))
        grid.clear_cache()
        assert not list((tmp_path / "stages").glob("*/*/*.pkl"))
        assert len(grid.stage_store) == 0
        before = grid.stage_store.telemetry()
        rerun = run_scenario("streaming", grid=grid)
        after = grid.stage_store.telemetry()
        # Empty store: every schedule recomputes and re-stores.
        assert (
            after["schedule"]["stores"] - before["schedule"]["stores"]
            == len(rerun.results)
        )
        assert after["schedule"]["hits"] == before["schedule"]["hits"]
        assert _canonical(rerun.results) == _canonical(outcome.results)

    def test_exact_bypasses_simulate_store_only(self, analyzer):
        grid = ExperimentGrid(locality=analyzer, cache=False, exact=True)
        run_scenario("streaming", grid=grid)
        telemetry = grid.stage_store.telemetry()
        simulate = telemetry["simulate"]
        assert simulate["hits"] == simulate["misses"] == simulate["stores"] == 0
        assert telemetry["schedule"]["stores"] > 0

    def test_simulate_hit_relabels_to_requesting_cell(self, analyzer):
        """A simulate result served across thresholds carries the
        *consuming* cell's scheduler/threshold labels."""
        machine = two_cluster()
        found = False
        for kernel in spec_suite():
            fingerprints = {
                threshold: make_scheduler("rmca", threshold, analyzer)
                .schedule(kernel, machine)
                .fingerprint()
                for threshold in (1.0, 0.75, 0.25, 0.0)
            }
            pairs = [
                (a, b)
                for a in fingerprints
                for b in fingerprints
                if a > b and fingerprints[a] == fingerprints[b]
            ]
            if not pairs:
                continue
            found = True
            thr_a, thr_b = pairs[0]
            store = StageStore()

            def run_cell(threshold):
                return execute_cell(
                    CellRequest(
                        kernel=kernel,
                        machine=machine,
                        scheduler="rmca",
                        threshold=threshold,
                        locality=analyzer,
                        stage_store=store,
                    )
                )

            run_cell(thr_a)
            outcome = run_cell(thr_b)
            stats = outcome.report.stage("simulate").stats
            assert stats["store_hit"] is True
            simulation = outcome.result.simulation
            assert simulation.threshold == thr_b
            assert simulation.scheduler == "rmca"
            assert simulation.kernel == kernel.name
            break
        assert found, "no threshold pair with identical schedules found"

    def test_stage_telemetry_reported_per_stage(self, analyzer):
        kernel = spec_suite(["applu"])[0]
        store = StageStore()
        request = CellRequest(
            kernel=kernel,
            machine=two_cluster(),
            scheduler="rmca",
            locality=analyzer,
            stage_store=store,
        )
        first = execute_cell(request).report
        assert first.stage("schedule").stats["store_hit"] is False
        assert first.stage("simulate").stats["store_hit"] is False
        second = execute_cell(request).report
        assert second.stage("schedule").stats["store_hit"] is True
        assert second.stage("simulate").stats["store_hit"] is True

    def test_analyze_store_serves_fresh_analyzer(self, tmp_path):
        kernel = spec_suite(["applu"])[0]
        store = StageStore(cache_dir=tmp_path)
        execute_cell(
            CellRequest(
                kernel=kernel,
                machine=two_cluster(),
                scheduler="rmca",
                locality=IncrementalCME(max_points=MAX_POINTS),
                stage_store=store,
            )
        )
        assert store.counts("analyze")["stores"] == 1
        fresh_analyzer = IncrementalCME(max_points=MAX_POINTS)
        fresh_store = StageStore(cache_dir=tmp_path)
        outcome = execute_cell(
            CellRequest(
                kernel=kernel,
                machine=two_cluster(),
                scheduler="rmca",
                locality=fresh_analyzer,
                stage_store=fresh_store,
            )
        )
        assert outcome.report.stage("analyze").stats["store_hit"] is True
        assert fresh_analyzer.traces.peek_address_trace(
            loop_fingerprint(kernel.loop), MAX_POINTS
        ) is not None
        assert fresh_analyzer.traces.address_builds == 0

    def test_cli_no_stage_store_flag(self):
        from repro.cli import _build_grid, build_parser

        on = build_parser().parse_args(["run", "streaming"])
        off = build_parser().parse_args(
            ["run", "streaming", "--no-stage-store"]
        )
        grid_on = _build_grid(on, IncrementalCME(max_points=8))
        grid_off = _build_grid(off, IncrementalCME(max_points=8))
        assert grid_on.stage_store is not None
        assert grid_off.stage_store is None
