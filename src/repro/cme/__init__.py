"""Cache Miss Equations: reuse analysis and miss estimators."""

from .analytic import AnalyticCME
from .equations import EquationCME, MissBreakdown
from .locality import LocalityAnalyzer, default_analyzer, locality_fingerprint
from .reuse import (
    ReuseInfo,
    analyze_reuse,
    group_pairs,
    innermost_stride,
    self_spatial,
    self_temporal,
)
from .sampling import MissEstimate, SamplingCME

__all__ = [
    "AnalyticCME",
    "EquationCME",
    "LocalityAnalyzer",
    "MissBreakdown",
    "MissEstimate",
    "ReuseInfo",
    "SamplingCME",
    "analyze_reuse",
    "default_analyzer",
    "group_pairs",
    "innermost_stride",
    "locality_fingerprint",
    "self_spatial",
    "self_temporal",
]
