"""Tests for the random kernel generator."""

import pytest

from repro.machine import two_cluster, unified
from repro.scheduler import BaselineScheduler
from repro.workloads import GeneratorConfig, random_kernel


class TestDeterminism:
    def test_same_seed_same_kernel(self):
        a = random_kernel(7)
        b = random_kernel(7)
        assert [op.name for op in a.loop.operations] == [
            op.name for op in b.loop.operations
        ]
        assert a.loop.stats() == b.loop.stats()

    def test_different_seeds_differ(self):
        stats = {str(random_kernel(seed).loop.stats()) for seed in range(8)}
        assert len(stats) > 1


class TestStructuralValidity:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_kernels_wellformed(self, seed):
        kernel = random_kernel(seed)
        loop = kernel.loop
        assert loop.operations
        assert loop.memory_operations
        for op in loop.memory_operations:
            loop.ref_of(op)  # must not raise

    @pytest.mark.parametrize("seed", range(12))
    def test_addresses_nonnegative(self, seed):
        kernel = random_kernel(seed)
        loop = kernel.loop
        for point in loop.iteration_points(limit=16):
            for ref in loop.refs:
                assert ref.address(point) >= 0

    def test_config_bounds_respected(self):
        config = GeneratorConfig(
            max_dims=1, max_arrays=2, max_loads=3, max_arith=2, max_stores=1,
        )
        for seed in range(8):
            kernel = random_kernel(seed, config)
            loop = kernel.loop
            assert len(loop.dims) == 1
            loads = [op for op in loop.memory_operations if op.is_load]
            stores = [op for op in loop.memory_operations if op.is_store]
            assert 1 <= len(loads) <= 3 + 1  # +1: recurrence uses no load
            assert len(stores) == 1


class TestConfigValidation:
    def test_bad_probability(self):
        with pytest.raises(ValueError):
            GeneratorConfig(recurrence_probability=1.5)

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            GeneratorConfig(max_loads=0)
        with pytest.raises(ValueError):
            GeneratorConfig(max_dims=0)


class TestSchedulability:
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_kernels_schedule_and_validate(self, seed):
        kernel = random_kernel(seed)
        for machine in (unified(), two_cluster()):
            schedule = BaselineScheduler().schedule(kernel, machine)
            schedule.validate()
