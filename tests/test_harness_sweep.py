"""Tests for the figure sweep harness (reduced-size runs)."""

import pytest

from repro.cme import SamplingCME
from repro.harness.grid import ExperimentGrid
from repro.harness.sweep import (
    Bar,
    FigureData,
    figure5,
    figure6,
    suite_bar,
    unified_reference,
)
from repro.machine import BusConfig, two_cluster
from repro.workloads import spec_suite


@pytest.fixture(scope="module")
def small_suite():
    # The two cheapest kernels keep the sweep tests fast.
    return spec_suite(["su2cor", "applu"])


@pytest.fixture(scope="module")
def locality():
    return SamplingCME(max_points=256)


class TestFigureDataBar:
    @staticmethod
    def _figure(threshold):
        figure = FigureData(title="t")
        figure.bars.append(
            Bar(
                group="g", scheduler="baseline", threshold=threshold,
                norm_compute=0.3, norm_stall=0.2,
            )
        )
        return figure

    def test_float_threshold_tolerates_representation_error(self):
        # 0.1 + 0.2 != 0.3 exactly; lookup must still find the bar.
        figure = self._figure(0.1 + 0.2)
        assert figure.bar("g", "baseline", 0.3).norm_compute == 0.3

    def test_missing_bar_raises_keyerror(self):
        figure = self._figure(0.5)
        with pytest.raises(KeyError, match="no bar"):
            figure.bar("g", "baseline", 0.25)


class TestUnifiedReference:
    def test_reference_per_kernel(self, small_suite, locality):
        reference = unified_reference(small_suite, locality)
        assert set(reference) == {"su2cor", "applu"}
        assert all(v > 0 for v in reference.values())

    def test_reference_memory_bus_matters(self, small_suite, locality):
        fast = unified_reference(small_suite, locality)
        slow = unified_reference(
            small_suite, locality, memory_bus=BusConfig(count=1, latency=4)
        )
        assert all(slow[k] >= fast[k] for k in fast)


class TestSuiteBar:
    def test_bar_averages(self, small_suite, locality):
        reference = unified_reference(small_suite, locality)
        bar, records = suite_bar(
            "g", small_suite, two_cluster(), "baseline", 1.0,
            locality, reference,
        )
        assert bar.group == "g"
        assert len(records) == len(small_suite)
        mean_total = sum(r["norm_total"] for r in records) / len(records)
        assert bar.norm_total == pytest.approx(mean_total)

    def test_records_have_norm_fields(self, small_suite, locality):
        reference = unified_reference(small_suite, locality)
        _bar, records = suite_bar(
            "g", small_suite, two_cluster(), "rmca", 0.0, locality, reference,
        )
        for record in records:
            assert record["norm_total"] == pytest.approx(
                record["norm_compute"] + record["norm_stall"]
            )


class TestFigure5:
    def test_structure(self, small_suite, locality):
        figure = figure5(
            n_clusters=2,
            latencies=(1,),
            thresholds=(1.0, 0.0),
            kernels=small_suite,
            locality=locality,
        )
        groups = figure.groups
        assert "unified" in groups
        assert "LRB=1,LMB=1 baseline" in groups
        assert "LRB=1,LMB=1 rmca" in groups
        # 1 unified group + 1 bus combo x 2 schedulers, 2 thresholds each.
        assert len(figure.bars) == 6

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            figure5(n_clusters=3)

    def test_rmca_not_worse_than_baseline(self, small_suite, locality):
        figure = figure5(
            n_clusters=2,
            latencies=(1,),
            thresholds=(0.0,),
            kernels=small_suite,
            locality=locality,
        )
        base = figure.bar("LRB=1,LMB=1 baseline", "baseline", 0.0)
        rmca = figure.bar("LRB=1,LMB=1 rmca", "rmca", 0.0)
        assert rmca.norm_total <= base.norm_total * 1.05


class TestSharedGrid:
    def test_figures_share_cells_through_one_grid(self, small_suite):
        grid = ExperimentGrid(locality=SamplingCME(max_points=256))
        figure5(
            n_clusters=2, latencies=(1,), thresholds=(1.0,),
            kernels=small_suite, grid=grid,
        )
        after_fig5 = grid.stats.computed
        figure6(
            n_clusters=2, bus_counts=(1,), bus_latencies=(1,),
            thresholds=(1.0,), kernels=small_suite, grid=grid,
        )
        # figure6 reuses figure5's Unified reference cells: it only adds
        # its own unified group and the NMB=1,LMB=1 cells.
        fig6_new = grid.stats.computed - after_fig5
        assert fig6_new == 3 * len(small_suite)
        assert grid.stats.memory_hits >= len(small_suite)

    def test_conflicting_locality_and_grid_rejected(self, small_suite):
        grid = ExperimentGrid(locality=SamplingCME(max_points=256))
        with pytest.raises(ValueError, match="conflicting locality"):
            figure5(
                n_clusters=2, latencies=(1,), thresholds=(1.0,),
                kernels=small_suite,
                locality=SamplingCME(max_points=64), grid=grid,
            )

    def test_matching_locality_and_grid_accepted(self, small_suite):
        grid = ExperimentGrid(locality=SamplingCME(max_points=256))
        reference = unified_reference(
            small_suite, SamplingCME(max_points=256), grid=grid
        )
        assert set(reference) == {k.name for k in small_suite}

    def test_suite_bar_and_reference_accept_grid(self, small_suite):
        grid = ExperimentGrid(locality=SamplingCME(max_points=256))
        reference = unified_reference(small_suite, grid=grid)
        bar, records = suite_bar(
            "g", small_suite, two_cluster(), "baseline", 1.0,
            None, reference, grid=grid,
        )
        assert bar.group == "g"
        assert len(records) == len(small_suite)
        assert grid.stats.computed == 2 * len(small_suite)


class TestFigure6:
    def test_structure(self, small_suite, locality):
        figure = figure6(
            n_clusters=2,
            bus_counts=(1,),
            bus_latencies=(1,),
            thresholds=(1.0,),
            kernels=small_suite,
            locality=locality,
        )
        assert "NMB=1,LMB=1 baseline" in figure.groups
        assert "NMB=1,LMB=1 rmca" in figure.groups
        assert len(figure.bars) == 3  # unified + 2 schedulers, 1 thr each

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            figure6(n_clusters=8)
