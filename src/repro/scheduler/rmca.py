"""RMCA — Register and Memory Communication-Aware modulo scheduling.

The paper's contribution (Section 4.3).  Non-memory operations are placed
with the register output-edge heuristic, exactly like the Baseline.  For
**memory operations** the cluster is chosen by *cache-miss profit*: every
cluster is scored with the number of cache misses its memory operations
would incur before and after adding the candidate operation (computed by
the Cache Miss Equations analyzer), and the cluster where the added misses
are smallest wins.  Clusters tied on miss profit fall back to the register
heuristic.

After the cluster is fixed the engine's binding-prefetch step decides
whether to schedule the load with the miss latency (threshold test plus
the recurrence guard) — see
:meth:`repro.scheduler.base.CommunicationAwareScheduler._assumed_latency`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir.operations import Operation
from .base import CommunicationAwareScheduler, SchedulerConfig, _State

__all__ = ["RMCAScheduler"]


class RMCAScheduler(CommunicationAwareScheduler):
    """Register *and memory* communication-aware modulo scheduler."""

    name = "rmca"

    def __init__(
        self,
        locality,
        config: Optional[SchedulerConfig] = None,
    ):
        if locality is None:
            raise ValueError("RMCA requires a locality analyzer")
        super().__init__(config=config, locality=locality)

    def rank_clusters(
        self, state: _State, op: Operation
    ) -> List[int]:
        """Clusters in decreasing miss-profit preference for memory ops.

        When the analyzer exposes the batched probe API every cluster's
        ``resident + [op]`` probe is answered in one sweep — the probes
        share the candidate's address trace, and the snapshots they
        leave behind turn the engine's follow-up ``_assumed_latency``
        miss-ratio query into a memo hit.  The ranking is identical to
        scoring clusters one by one (``tests/test_scheduler_equivalence``
        holds the two paths together).
        """
        machine = state.machine
        if (
            not op.is_memory
            or machine.n_clusters == 1
            or getattr(self.locality, "probe_clusters", None) is None
        ):
            return super().rank_clusters(state, op)
        loop = state.kernel.loop
        clusters = list(range(machine.n_clusters))
        residents = [state.memory_ops_in(k) for k in clusters]
        caches = [machine.cluster(k).cache for k in clusters]
        probes = self.locality.probe_clusters(loop, op, residents, caches)
        scored = []
        for cluster, resident, cache, after in zip(
            clusters, residents, caches, probes
        ):
            # An empty resident set incurs no misses; skip the probe.
            before = (
                self.locality.miss_count(loop, resident, cache)
                if resident
                else 0.0
            )
            score = (
                before - after.total_misses,  # <= 0; closer to 0 is better
                self.register_affinity(state, op, cluster),
                -state.ops_per_cluster[cluster],
            )
            scored.append((score, cluster))
        scored.sort(key=lambda item: (tuple(-x for x in item[0]), item[1]))
        return [cluster for _, cluster in scored]

    def cluster_score(
        self, state: _State, op: Operation, cluster: int
    ) -> Tuple[float, ...]:
        if not op.is_memory:
            return super().cluster_score(state, op, cluster)
        loop = state.kernel.loop
        cache = state.machine.cluster(cluster).cache
        resident = state.memory_ops_in(cluster)
        before = self.locality.miss_count(loop, resident, cache)
        after = self.locality.miss_count(loop, resident + [op], cache)
        miss_profit = before - after  # <= 0; closer to 0 is better
        return (
            miss_profit,
            self.register_affinity(state, op, cluster),
            -state.ops_per_cluster[cluster],
        )
