"""Record the PR 6 warm-state win: simulate-stage seconds for a cold
pass (empty warm-state store) vs a warm pass (store primed by the cold
pass) on the fig6, streaming and streaming-long scenarios, on both
simulate engines.

Each trial builds a fresh in-memory ``WarmStateStore``, runs the
scenario cold on a cache-disabled single-job grid (steady-state
detection in its default ``auto`` mode, incremental CME analyzer), then
runs it again against the now-primed store.  The cold pass already
reuses warm states *within* the run (threshold sweeps frequently
produce byte-identical schedules); the warm pass is the repeat-sweep
case the store exists for — every post-warm-up memory state is adopted
instead of re-simulated.  Results must be identical across engines and
across cold/warm passes (bars for figure scenarios, per-cell
cycle/stall/memory digests for grid scenarios); timings, the per-stage
second split and warm-store telemetry go to ``benchmarks/BENCH_pr6.json``.

The acceptance bar of PR 6 is the **simulate-stage** speedup of the
warm vectorized pass against the PR 5 recording
(``benchmarks/BENCH_pr5.json``, same container/protocol): >= 1.5x on
fig6 with bit-identical figures and a non-zero warm hit count.  The
cold-pass speedup (incremental signatures + in-run reuse alone) is
quoted alongside.

Usage::

    PYTHONPATH=src python benchmarks/record_perf.py [--out PATH]
        [--skip-fig6] [--repeats N]

Single-job on purpose: the point is the per-cell speedup, not process
fan-out (which composes with it).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import get_scenario, run_scenario
from repro.simulator import WarmStateStore

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_pr6.json"
PR5_RECORDING = pathlib.Path(__file__).parent / "BENCH_pr5.json"

#: The engines under comparison; both are bit-identical lockstep models.
SIM_ENGINES = ("scalar", "vectorized")
#: Store passes: "cold" primes a fresh store, "warm" replays from it.
PASSES = ("cold", "warm")


def _digest(outcome):
    """Engine- and store-independent fingerprint of a scenario's results."""
    if outcome.figure is not None:
        return [
            (bar.group, bar.scheduler, bar.threshold,
             bar.norm_compute, bar.norm_stall)
            for bar in outcome.figure.bars
        ]
    return [
        (result.kernel, result.machine, result.scheduler, result.threshold,
         result.total_cycles, result.stall_cycles,
         result.simulation.memory.as_dict())
        for result in outcome.results
    ]


def _run_pass(scenario, sim: str, store: WarmStateStore) -> dict:
    grid = ExperimentGrid(locality=scenario.locality.build(), cache=False)
    grid.warm_store = store
    before = (store.hits, store.misses, store.stores)
    start = time.perf_counter()
    outcome = run_scenario(scenario, grid=grid, steady="auto", sim=sim)
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 3),
        "cells_requested": grid.stats.requested,
        "cells_computed": grid.stats.computed,
        "stage_seconds": {
            stage: round(value, 3)
            for stage, value in grid.stats.stage_seconds.items()
        },
        "warm_state": {
            "hits": store.hits - before[0],
            "misses": store.misses - before[1],
            "stores": store.stores - before[2],
        },
        "digest": _digest(outcome),
    }


def _measure(scenario_name: str, sim: str, repeats: int) -> dict:
    """Best cold/warm pair over ``repeats`` trials (fresh store each)."""
    scenario = get_scenario(scenario_name)
    best = None
    for _ in range(repeats):
        store = WarmStateStore()  # in-memory only: no disk layer
        trial = {name: _run_pass(scenario, sim, store) for name in PASSES}
        if best is None or (
            trial["warm"]["seconds"] < best["warm"]["seconds"]
        ):
            best = trial
    return best


def _pr5_baseline() -> dict:
    """Quote the PR 5 recording (same protocol) when it is available."""
    if not PR5_RECORDING.exists():
        return {"note": "BENCH_pr5.json not found"}
    data = json.loads(PR5_RECORDING.read_text())
    quoted = {}
    for name, entry in data.get("scenarios", {}).items():
        run = entry.get("sims", {}).get("vectorized", {})
        quoted[name] = {
            "seconds": run.get("seconds"),
            "simulate_stage_seconds": run.get("stage_seconds", {}).get(
                "simulate"
            ),
        }
    return quoted


def _speedup(before, after):
    # 0.0 denominators mean "unmeasurably fast" — no ratio to quote.
    if before is None or not after:
        return None
    return round(before / after, 2)


def record(scenarios, out: pathlib.Path, repeats: int) -> dict:
    pr5 = _pr5_baseline()
    results = {}
    for name in scenarios:
        runs = {}
        for sim in SIM_ENGINES:
            print(f"[{name}] sim={sim} ...", flush=True)
            runs[sim] = _measure(name, sim, repeats)
            for pass_name in PASSES:
                sample = runs[sim][pass_name]
                print(
                    f"[{name}]   {pass_name}: {sample['seconds']}s "
                    f"(simulate "
                    f"{sample['stage_seconds'].get('simulate')}s), "
                    f"warm {sample['warm_state']['hits']} hits / "
                    f"{sample['warm_state']['stores']} stores",
                    flush=True,
                )
        reference = runs["scalar"]["cold"]["digest"]
        for sim, trial in runs.items():
            for pass_name, sample in trial.items():
                if sample["digest"] != reference:
                    raise AssertionError(
                        f"{name}: sim={sim} {pass_name} pass diverges "
                        f"from the cold scalar reference"
                    )
                del sample["digest"]
        vec = runs["vectorized"]
        before = (pr5.get(name) or {}).get("simulate_stage_seconds")
        results[name] = {
            "sims": runs,
            #: The PR's acceptance number: PR 5 recording vs the warm
            #: vectorized pass (the repeat-sweep case the store serves).
            "speedup_simulate_warm_vs_pr5": _speedup(
                before, vec["warm"]["stage_seconds"].get("simulate")
            ),
            #: Cold-pass before/after: incremental signatures plus
            #: in-run warm reuse, without a primed store.
            "speedup_simulate_cold_vs_pr5": _speedup(
                before, vec["cold"]["stage_seconds"].get("simulate")
            ),
            "speedup_total_warm_vs_pr5": _speedup(
                (pr5.get(name) or {}).get("seconds"),
                vec["warm"]["seconds"],
            ),
            #: In-run cold-vs-warm A/B on the vectorized engine.
            "speedup_simulate_warm_vs_cold": _speedup(
                vec["cold"]["stage_seconds"].get("simulate"),
                vec["warm"]["stage_seconds"].get("simulate"),
            ),
        }
    payload = {
        "pr": 6,
        "protocol": (
            "single-job ExperimentGrid, cell cache disabled, steady=auto, "
            "incremental CME analyzer, fresh in-memory WarmStateStore per "
            "trial; each trial runs the scenario cold (priming the store) "
            "then warm (replaying from it); best warm pass of "
            f"{repeats} trials per engine, identical results asserted "
            "across engines and passes"
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "pr5_baseline": pr5,
        "scenarios": results,
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--skip-fig6", action="store_true",
        help="record only the streaming suites (fig6 is the larger grid)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold+warm trials per engine; the best warm pass is "
             "recorded (default: 3)",
    )
    args = parser.parse_args(argv)
    scenarios = ["streaming", "streaming-long"]
    if not args.skip_fig6:
        scenarios.append("fig6-2cluster")
    payload = record(scenarios, args.out, args.repeats)
    failed = False
    for name, entry in payload["scenarios"].items():
        speedup = entry["speedup_simulate_warm_vs_pr5"]
        if speedup is None:
            speedup = entry["speedup_simulate_warm_vs_cold"]
        print(
            f"{name}: warm simulate stage {speedup}x vs PR 5 "
            f"(cold {entry['speedup_simulate_cold_vs_pr5']}x, "
            f"warm-vs-cold {entry['speedup_simulate_warm_vs_cold']}x)"
        )
        warm_hits = entry["sims"]["vectorized"]["warm"]["warm_state"]["hits"]
        if warm_hits == 0:
            print(f"WARNING: {name} warm pass had zero warm-state hits")
            failed = True
        if name == "fig6-2cluster" and (speedup is None or speedup < 1.5):
            print(
                f"WARNING: {name} warm simulate-stage speedup is "
                f"{speedup}x (< 1.5x)"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
