"""Tests for the parallel experiment-grid engine (harness.grid)."""

import json
import pickle

import pytest

from repro.analysis.compare import CELL_EXECUTIONS
from repro.cme import SamplingCME
from repro.harness.grid import (
    CellSpec,
    ExperimentGrid,
    kernel_fingerprint,
    locality_fingerprint,
    machine_from_key,
    machine_key,
)
from repro.harness.sweep import figure5
from repro.machine import BusConfig, two_cluster, unified
from repro.workloads import spec_suite


@pytest.fixture(scope="module")
def small_suite():
    return spec_suite(["su2cor", "applu"])


def _locality():
    return SamplingCME(max_points=128)


def _specs(kernels, thresholds=(1.0, 0.0)):
    """A small mixed grid: both kernels x both schedulers x thresholds."""
    machines = [unified(), two_cluster()]
    return [
        CellSpec.of(kernel, machine, scheduler, threshold)
        for kernel in kernels
        for machine in machines
        for scheduler in ("baseline", "rmca")
        for threshold in thresholds
    ]


class TestFingerprints:
    def test_machine_key_roundtrip(self):
        machine = two_cluster(
            register_bus=BusConfig(count=None, latency=2),
            memory_bus=BusConfig(count=2, latency=4),
        )
        assert machine_from_key(machine_key(machine)) == machine

    def test_machine_key_canonical(self):
        assert machine_key(two_cluster()) == machine_key(two_cluster())
        assert machine_key(two_cluster()) != machine_key(unified())

    def test_kernel_fingerprint_stable(self, small_suite):
        a, b = spec_suite(["su2cor"])[0], small_suite[0]
        assert kernel_fingerprint(a) == kernel_fingerprint(b)

    def test_kernel_fingerprint_distinguishes(self, small_suite):
        fps = {kernel_fingerprint(k) for k in small_suite}
        assert len(fps) == len(small_suite)

    def test_locality_fingerprint(self):
        assert locality_fingerprint(SamplingCME(max_points=64)) == "sampling:64"
        assert locality_fingerprint(
            SamplingCME(max_points=64)
        ) != locality_fingerprint(SamplingCME(max_points=128))


class TestCellSpec:
    def test_hashable_and_equal(self, small_suite):
        kernel = small_suite[0]
        a = CellSpec.of(kernel, two_cluster(), "rmca", 0.25)
        b = CellSpec.of(kernel, two_cluster(), "rmca", 0.25)
        assert a == b
        assert len({a, b}) == 1

    def test_json_roundtrip(self, small_suite):
        spec = CellSpec.of(
            small_suite[0], two_cluster(), "rmca", 0.25, n_iterations=8
        )
        again = CellSpec.from_json(spec.to_json())
        assert again == spec
        assert json.loads(spec.to_json())["kernel"] == spec.kernel

    def test_build_machine(self, small_suite):
        spec = CellSpec.of(small_suite[0], two_cluster(), "baseline", 1.0)
        assert spec.build_machine() == two_cluster()
        assert spec.machine_name == "2-cluster"

    def test_cache_key_covers_locality(self, small_suite):
        spec = CellSpec.of(small_suite[0], two_cluster(), "baseline", 1.0)
        assert spec.cache_key("sampling:64") != spec.cache_key("sampling:128")

    def test_suite_kernel_by_name(self):
        by_name = CellSpec.of("applu", unified(), "baseline", 1.0)
        by_object = CellSpec.of(
            spec_suite(["applu"])[0], unified(), "baseline", 1.0
        )
        assert by_name == by_object


class TestCaching:
    def test_warm_run_computes_nothing(self, small_suite):
        grid = ExperimentGrid(locality=_locality())
        specs = _specs(small_suite)
        cold = grid.run(specs)
        assert grid.stats.computed == len(specs)
        CELL_EXECUTIONS.reset()
        warm = grid.run(specs)
        assert CELL_EXECUTIONS.count == 0
        assert grid.stats.computed == len(specs)  # unchanged
        assert grid.stats.memory_hits == len(specs)
        assert [r.canonical() for r in warm] == [
            r.canonical() for r in cold
        ]

    def test_duplicates_computed_once(self, small_suite):
        grid = ExperimentGrid(locality=_locality())
        spec = CellSpec.of(small_suite[0], unified(), "baseline", 1.0)
        results = grid.run([spec, spec, spec])
        assert grid.stats.computed == 1
        assert grid.stats.deduplicated == 2
        assert results[0] is results[1] is results[2]

    def test_disk_cache_survives_new_engine(self, small_suite, tmp_path):
        specs = _specs(small_suite, thresholds=(1.0,))
        first = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        cold = first.run(specs)
        second = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        CELL_EXECUTIONS.reset()
        warm = second.run(specs)
        assert CELL_EXECUTIONS.count == 0
        assert second.stats.computed == 0
        assert second.stats.disk_hits == len(specs)
        assert [r.canonical() for r in warm] == [
            r.canonical() for r in cold
        ]

    def test_different_locality_invalidates(self, small_suite, tmp_path):
        spec = CellSpec.of(small_suite[0], unified(), "baseline", 1.0)
        ExperimentGrid(
            locality=SamplingCME(max_points=64), cache_dir=tmp_path
        ).run_one(spec)
        other = ExperimentGrid(
            locality=SamplingCME(max_points=128), cache_dir=tmp_path
        )
        other.run_one(spec)
        assert other.stats.computed == 1

    def test_no_cache_recomputes(self, small_suite):
        grid = ExperimentGrid(locality=_locality(), cache=False)
        spec = CellSpec.of(small_suite[0], unified(), "baseline", 1.0)
        grid.run_one(spec)
        grid.run_one(spec)
        assert grid.stats.computed == 2
        assert grid.stats.memory_hits == 0

    def test_corrupt_disk_entry_recomputed(self, small_suite, tmp_path):
        spec = CellSpec.of(small_suite[0], unified(), "baseline", 1.0)
        grid = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        grid.run_one(spec)
        for path in tmp_path.glob("*/*.pkl"):
            path.write_bytes(b"not a pickle")
        fresh = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        result = fresh.run_one(spec)
        assert fresh.stats.computed == 1
        assert result.kernel == small_suite[0].name

    def test_truncated_disk_entry_unlinked_and_recomputed(
        self, small_suite, tmp_path
    ):
        """A half-written cache file is a miss: dropped, recomputed, and
        the recomputed result takes its slot (served on the next run)."""
        spec = CellSpec.of(small_suite[0], unified(), "baseline", 1.0)
        grid = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        expected = grid.run_one(spec)
        paths = list(tmp_path.glob("*/*.pkl"))
        assert paths
        for path in paths:
            path.write_bytes(path.read_bytes()[: max(1, path.stat().st_size // 2)])
        fresh = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        result = fresh.run_one(spec)
        assert fresh.stats.computed == 1
        assert fresh.stats.disk_hits == 0
        assert result.canonical() == expected.canonical()
        # The rot was unlinked and replaced by the recomputed entry:
        again = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        served = again.run_one(spec)
        assert again.stats.disk_hits == 1
        assert again.stats.computed == 0
        assert served.canonical() == expected.canonical()

    def test_foreign_disk_entry_treated_as_miss(
        self, small_suite, tmp_path
    ):
        """A valid pickle of the wrong type must not be served."""
        spec = CellSpec.of(small_suite[0], unified(), "baseline", 1.0)
        grid = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        grid.run_one(spec)
        for path in tmp_path.glob("*/*.pkl"):
            path.write_bytes(pickle.dumps({"not": "a RunResult"}))
        fresh = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        result = fresh.run_one(spec)
        assert fresh.stats.computed == 1
        assert result.kernel == small_suite[0].name

    def test_clear_cache(self, small_suite, tmp_path):
        spec = CellSpec.of(small_suite[0], unified(), "baseline", 1.0)
        grid = ExperimentGrid(locality=_locality(), cache_dir=tmp_path)
        grid.run_one(spec)
        grid.clear_cache()
        assert not list(tmp_path.glob("*/*.pkl"))
        grid.run_one(spec)
        assert grid.stats.computed == 2


class TestKernelResolution:
    def test_unknown_kernel_rejected(self):
        grid = ExperimentGrid(locality=_locality())
        spec = CellSpec(
            kernel="nonesuch",
            machine=machine_key(unified()),
            scheduler="baseline",
            threshold=1.0,
            kernel_fp="0" * 16,
        )
        with pytest.raises(KeyError, match="nonesuch"):
            grid.run_one(spec)

    def test_fingerprint_mismatch_rejected(self, small_suite):
        grid = ExperimentGrid(locality=_locality())
        spec = CellSpec(
            kernel="applu",
            machine=machine_key(unified()),
            scheduler="baseline",
            threshold=1.0,
            kernel_fp="deadbeefdeadbeef",
        )
        with pytest.raises(ValueError, match="content mismatch"):
            grid.run_one(spec)

    def test_registered_custom_kernel(self, saxpy):
        grid = ExperimentGrid(locality=_locality())
        grid.register([saxpy])
        result = grid.run_one(
            CellSpec.of(saxpy, unified(), "baseline", 1.0)
        )
        assert result.kernel == "saxpy"


class TestParallelEquivalence:
    def test_results_identical_and_ordered(self, small_suite):
        specs = _specs(small_suite)
        serial = ExperimentGrid(locality=_locality(), n_jobs=1).run(specs)
        parallel = ExperimentGrid(locality=_locality(), n_jobs=4).run(specs)
        assert len(serial) == len(parallel) == len(specs)
        for spec, s, p in zip(specs, serial, parallel):
            assert s.kernel == p.kernel == spec.kernel
            assert s.scheduler == p.scheduler == spec.scheduler
            assert s.canonical() == p.canonical()

    def test_results_picklable(self, small_suite):
        grid = ExperimentGrid(locality=_locality(), n_jobs=2)
        results = grid.run(_specs(small_suite, thresholds=(0.0,)))
        for result in results:
            clone = pickle.loads(pickle.dumps(result))
            assert clone.canonical() == result.canonical()

    def test_parallel_warm_cache_identical_to_cold(self, small_suite):
        grid = ExperimentGrid(locality=_locality(), n_jobs=4)
        specs = _specs(small_suite)
        cold = grid.run(specs)
        CELL_EXECUTIONS.reset()
        warm = grid.run(specs)
        assert CELL_EXECUTIONS.count == 0
        assert [r.canonical() for r in warm] == [
            r.canonical() for r in cold
        ]

    def test_figure5_parallel_matches_serial(self, small_suite):
        """Acceptance: figure5 via ExperimentGrid(n_jobs=4) == serial."""
        kwargs = dict(
            n_clusters=2,
            latencies=(1,),
            thresholds=(1.0, 0.0),
            kernels=small_suite,
        )
        serial = figure5(locality=_locality(), **kwargs)
        parallel_grid = ExperimentGrid(locality=_locality(), n_jobs=4)
        parallel = figure5(grid=parallel_grid, **kwargs)
        assert serial.bars == parallel.bars
        assert serial.records == parallel.records
        # Warm repeat: zero cell computations, identical bars.
        computed_before = parallel_grid.stats.computed
        CELL_EXECUTIONS.reset()
        warm = figure5(grid=parallel_grid, **kwargs)
        assert CELL_EXECUTIONS.count == 0
        assert parallel_grid.stats.computed == computed_before
        assert warm.bars == parallel.bars


class TestProgress:
    def test_progress_reports_every_cell(self, small_suite):
        events = []
        grid = ExperimentGrid(
            locality=_locality(),
            progress=lambda done, total, spec, source: events.append(
                (done, total, source)
            ),
        )
        spec = CellSpec.of(small_suite[0], unified(), "baseline", 1.0)
        other = CellSpec.of(small_suite[1], unified(), "baseline", 1.0)
        grid.run([spec, other, spec])
        assert [e[0] for e in events] == [1, 2, 3]
        assert all(e[1] == 3 for e in events)
        assert sorted(e[2] for e in events) == [
            "computed", "computed", "dedup"
        ]

    def test_rejects_bad_n_jobs(self):
        with pytest.raises(ValueError):
            ExperimentGrid(n_jobs=0)
