"""Content-addressed reuse of post-warm-up memory state.

The steady-state detectors (:mod:`repro.steady`) already skip the
*periodic* part of a simulation, but every cell still pays for the
miss-heavy warm-up prefix the detectors must observe before they can
fire.  That prefix is a pure function of the schedule content and the
run geometry — and fig6-style sweeps run many cells whose schedules
land byte-identical (neighbouring thresholds that move no load across
the miss-ratio boundary, schedulers that agree on a kernel).  This
module content-addresses the detector-confirmed warm state so each
unique (schedule, geometry, steady mode) pays for warm-up once:

* the **key** is ``Schedule.fingerprint()`` (kernel + machine + II +
  placements + communications; scheduler name and threshold are
  excluded so equal schedules share) crossed with the steady mode and
  the ``n_iterations``/``n_times`` overrides.  The simulate engine is
  *not* part of the key: the scalar and vectorized engines are proven
  bit-identical by ``tests/test_simulator_vectorized.py``, so warm
  state recorded by either serves both.
* the **record** holds a deep :meth:`DistributedMemorySystem.snapshot`
  of the memory state at the detector's confirmation boundary plus the
  detector evidence (per-entry counter-delta records, or the
  iteration-level detections) needed to finish the run arithmetically.
  A consumer re-proves replay soundness against its own address tables
  before trusting a record — a hit changes *where* the proof inputs
  come from, never whether the proof runs.
* the store is a sibling of :class:`repro.cme.trace.TraceStore`: an
  in-memory dict fronted by an optional content-addressed disk layer
  under the experiment grid's cache directory, shipped to worker
  processes by :func:`repro.harness.grid._init_worker` so a sweep's
  fan-out starts warm.  Corrupt, truncated or version-mismatched disk
  entries are treated as misses (unlinked and recomputed), never as
  errors.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = ["WARM_STATE_VERSION", "WarmRecord", "WarmStateStore"]

#: Bump when the record layout or snapshot format changes: older disk
#: entries are then treated as misses and rewritten.
WARM_STATE_VERSION = 1


@dataclass(frozen=True)
class WarmRecord:
    """One reusable simulation prefix, in one of two shapes.

    *Entry shape* (``match_start is not None``): the entry-level
    detector confirmed at entry ``entries_simulated`` that the cycle
    ``match_start..entries_simulated-1`` repeats.  ``snapshot`` is the
    memory state at that boundary (before any replay deltas were
    applied) and ``records`` the per-entry ``(stall, counters-delta)``
    evidence, so a consumer restores, re-proves soundness, and replays.

    *Iteration shape* (``match_start is None``): a single-entry run
    whose iteration-level detector fired.  ``snapshot`` is the final
    memory state (after the fast-forward translation), ``entry_stall``
    the entry's total stall, ``iterations`` the telemetry records.
    """

    version: int
    entries_simulated: int
    records: Tuple[Tuple[int, Dict[str, int]], ...]
    match_start: Optional[int]
    snapshot: dict
    entry_stall: int = 0
    iterations: tuple = ()


class WarmStateStore:
    """In-memory + on-disk content-addressed map of warm records."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self._memory: Dict[str, WarmRecord] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        # The experiment service shares one store across job threads;
        # entry-map and counter mutation happens under this lock.
        self._lock = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks don't pickle; workers get their own
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @staticmethod
    def key(
        schedule_fingerprint: str,
        steady_mode: str,
        n_iterations: int,
        n_times: int,
    ) -> str:
        """Content address of one warm-up prefix."""
        return "|".join(
            [
                f"w{WARM_STATE_VERSION}",
                schedule_fingerprint,
                steady_mode,
                repr(n_iterations),
                repr(n_times),
            ]
        )

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self.cache_dir / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[WarmRecord]:
        """Return the record for ``key`` or ``None`` (counting a miss)."""
        with self._lock:
            record = self._memory.get(key)
            if record is not None:
                self.hits += 1
                return record
            record = self._disk_load(key)
            if record is not None:
                self._memory[key] = record
                self.hits += 1
                return record
            self.misses += 1
            return None

    def store(self, key: str, record: WarmRecord) -> None:
        with self._lock:
            self._memory[key] = record
            self.stores += 1
        self._disk_store(key, record)

    # ------------------------------------------------------------------
    def _disk_load(self, key: str) -> Optional[WarmRecord]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                record = pickle.load(handle)
            if (
                not isinstance(record, WarmRecord)
                or record.version != WARM_STATE_VERSION
            ):
                raise ValueError("stale or foreign warm-state entry")
            return record
        except Exception:
            # Corrupt / truncated / version-mismatched entry: a cache
            # must never turn disk rot into a failed sweep.  Drop the
            # file and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_store(self, key: str, record: WarmRecord) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)  # atomic on POSIX: readers never see partials
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def clear_memory(self) -> None:
        """Drop the in-memory layer (the disk layer is untouched)."""
        with self._lock:
            self._memory.clear()

    def clear_disk(self) -> None:
        """Remove every on-disk entry (the in-memory map is untouched)."""
        if self.cache_dir is None or not self.cache_dir.exists():
            return
        for path in self.cache_dir.glob("*/*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
