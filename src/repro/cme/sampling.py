"""Sampling-based miss estimation (the Vera et al. fast CME solver).

Solving the Cache Miss Equations exactly means counting integer points in
exponentially many polyhedra; the paper uses the sampled approximation of
Vera et al. [25] to bring the cost down to seconds per loop.  This module
implements that idea directly: the set of references under study is swept
over a (possibly sampled) prefix of the iteration space through an exact
functional model of one direct-mapped (or set-associative) cache, and the
observed per-instruction miss ratios are the estimate.

The estimator is deterministic: systematic sampling over the iteration
stream (every ``k``-th window of consecutive iterations) rather than
random points, which preserves the spatial-reuse structure a random
point-sample would destroy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.loop import Loop
from ..ir.operations import Operation
from ..machine.config import CacheConfig
from .trace import loop_fingerprint

__all__ = ["MissEstimate", "SamplingCME"]


@dataclass
class MissEstimate:
    """Per-operation and aggregate miss statistics for one reference set."""

    accesses: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def total_miss_ratio(self) -> float:
        total = self.total_accesses
        return self.total_misses / total if total else 0.0

    def miss_ratio(self, op_name: str) -> float:
        accesses = self.accesses.get(op_name, 0)
        if accesses == 0:
            return 0.0
        return self.misses.get(op_name, 0) / accesses


class _FunctionalCache:
    """Exact functional model of one cache (no timing)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # set index -> list of tags, most recently used last
        self._sets: Dict[int, List[int]] = {}

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit."""
        config = self.config
        index = config.set_index(address)
        tag = config.tag(address)
        ways = self._sets.setdefault(index, [])
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        ways.append(tag)
        if len(ways) > config.associativity:
            ways.pop(0)
        return False


class SamplingCME:
    """Locality analyzer backed by sampled functional cache simulation.

    Parameters
    ----------
    max_points:
        Maximum iteration points simulated per query.  The iteration
        stream beyond this limit is cut off; per-instruction *ratios*
        remain representative because affine loops reach a steady state
        within a few cache-fulls of iterations.
    """

    name = "sampling"

    def __init__(self, max_points: int = 2048):
        if max_points < 1:
            raise ValueError("max_points must be positive")
        self.max_points = max_points
        # Keyed on the loop *content* fingerprint: a GC'd loop's address
        # can be recycled by a fresh loop, so an id-keyed memo could
        # alias a stale estimate.  Content keys are also safe to keep
        # across pickling / process fan-out.
        self._memo: Dict[Tuple, MissEstimate] = {}

    # ------------------------------------------------------------------
    def estimate(
        self,
        loop: Loop,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> MissEstimate:
        """Miss statistics for ``ops`` sharing one cache over ``loop``."""
        mem_ops = tuple(
            op for op in ops if op.is_memory
        )
        key = (
            loop_fingerprint(loop),
            tuple(sorted(op.name for op in mem_ops)),
            cache.size,
            cache.line_size,
            cache.associativity,
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        estimate = self._simulate(loop, mem_ops, cache)
        self._memo[key] = estimate
        return estimate

    def _simulate(
        self,
        loop: Loop,
        ops: Tuple[Operation, ...],
        cache: CacheConfig,
    ) -> MissEstimate:
        # Keep the loop's program order among the selected operations —
        # intra-iteration ordering matters for group reuse.
        ordered = [op for op in loop.operations if op in ops]
        model = _FunctionalCache(cache)
        estimate = MissEstimate(
            accesses={op.name: 0 for op in ordered},
            misses={op.name: 0 for op in ordered},
        )
        if not ordered:
            return estimate
        for point in loop.iteration_points(limit=self.max_points):
            for op in ordered:
                ref = loop.ref_of(op)
                address = ref.address(point)
                estimate.accesses[op.name] += 1
                if not model.access(address):
                    estimate.misses[op.name] += 1
        return estimate

    # ------------------------------------------------------------------
    # LocalityAnalyzer protocol
    # ------------------------------------------------------------------
    def miss_count(
        self,
        loop: Loop,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        """Estimated misses per simulated window for a reference set."""
        return float(self.estimate(loop, ops, cache).total_misses)

    def miss_ratio(
        self,
        loop: Loop,
        op: Operation,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        """Miss ratio of ``op`` when co-located with ``ops`` in one cache."""
        return self.estimate(loop, ops, cache).miss_ratio(op.name)
