"""Unit tests for the modulo reservation table."""

import pytest

from repro.ir.operations import FUType
from repro.machine import BusConfig, two_cluster
from repro.scheduler.mrt import ModuloReservationTable, Transaction


def _mrt(ii=3, register_bus=None):
    machine = two_cluster(register_bus=register_bus)
    return ModuloReservationTable(machine, ii)


class TestFunctionalUnits:
    def test_reserve_up_to_capacity(self):
        mrt = _mrt()
        txn = Transaction()
        # 2-cluster machine has 2 memory units per cluster.
        assert mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        assert mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        assert not mrt.reserve_fu(0, 0, FUType.MEMORY, txn)

    def test_modulo_wrapping(self):
        mrt = _mrt(ii=3)
        txn = Transaction()
        assert mrt.reserve_fu(1, 0, FUType.FP, txn)
        assert mrt.reserve_fu(4, 0, FUType.FP, txn)  # same slot 1
        assert not mrt.reserve_fu(7, 0, FUType.FP, txn)

    def test_negative_times_wrap(self):
        mrt = _mrt(ii=3)
        txn = Transaction()
        assert mrt.reserve_fu(-1, 0, FUType.FP, txn)  # slot 2
        assert mrt.reserve_fu(2, 0, FUType.FP, txn)
        assert not mrt.reserve_fu(5, 0, FUType.FP, txn)

    def test_clusters_independent(self):
        mrt = _mrt()
        txn = Transaction()
        assert mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        assert mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        assert mrt.reserve_fu(0, 1, FUType.MEMORY, txn)

    def test_fu_types_independent(self):
        mrt = _mrt()
        txn = Transaction()
        assert mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        assert mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        assert mrt.reserve_fu(0, 0, FUType.FP, txn)

    def test_failed_reserve_has_no_side_effect(self):
        mrt = _mrt()
        txn = Transaction()
        mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        before = len(txn.fu_slots)
        assert not mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        assert len(txn.fu_slots) == before


class TestRegisterBuses:
    def test_bounded_pool_exhausts(self):
        mrt = _mrt(ii=2, register_bus=BusConfig(count=1, latency=1))
        txn = Transaction()
        assert mrt.reserve_bus(0, txn) is not None
        assert mrt.reserve_bus(1, txn) is not None
        assert mrt.reserve_bus(0, txn) is None

    def test_multi_cycle_transfer_occupies_consecutive_slots(self):
        mrt = _mrt(ii=4, register_bus=BusConfig(count=1, latency=2))
        txn = Transaction()
        reservation = mrt.reserve_bus(1, txn)
        assert reservation is not None
        assert reservation.latency == 2
        # Slots 1 and 2 are now busy.
        assert mrt.reserve_bus(1, txn) is None
        assert mrt.reserve_bus(2, txn) is None
        # Slot 3 + wrap to 0 is free.
        assert mrt.reserve_bus(3, txn) is not None

    def test_latency_longer_than_ii_unschedulable(self):
        mrt = _mrt(ii=2, register_bus=BusConfig(count=1, latency=3))
        txn = Transaction()
        assert mrt.reserve_bus(0, txn) is None

    def test_second_bus_used_when_first_busy(self):
        mrt = _mrt(ii=2, register_bus=BusConfig(count=2, latency=1))
        txn = Transaction()
        first = mrt.reserve_bus(0, txn)
        second = mrt.reserve_bus(0, txn)
        assert first.bus != second.bus

    def test_unbounded_never_fails(self):
        mrt = _mrt(ii=1, register_bus=BusConfig(count=None, latency=2))
        txn = Transaction()
        for _ in range(20):
            reservation = mrt.reserve_bus(0, txn)
            assert reservation is not None
            assert reservation.bus == -1

    def test_unbounded_tracks_peak_usage(self):
        mrt = _mrt(ii=2, register_bus=BusConfig(count=None, latency=1))
        txn = Transaction()
        mrt.reserve_bus(0, txn)
        mrt.reserve_bus(0, txn)
        mrt.reserve_bus(1, txn)
        assert mrt.peak_bus_usage() == 2


class TestRollback:
    def test_fu_rollback(self):
        mrt = _mrt()
        txn = Transaction()
        mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        mrt.reserve_fu(0, 0, FUType.MEMORY, txn)
        mrt.rollback(txn)
        fresh = Transaction()
        assert mrt.reserve_fu(0, 0, FUType.MEMORY, fresh)
        assert mrt.reserve_fu(0, 0, FUType.MEMORY, fresh)

    def test_bus_rollback(self):
        mrt = _mrt(ii=2, register_bus=BusConfig(count=1, latency=2))
        txn = Transaction()
        assert mrt.reserve_bus(0, txn) is not None
        mrt.rollback(txn)
        fresh = Transaction()
        assert mrt.reserve_bus(0, fresh) is not None

    def test_unbounded_rollback(self):
        mrt = _mrt(ii=2, register_bus=BusConfig(count=None, latency=1))
        txn = Transaction()
        mrt.reserve_bus(0, txn)
        mrt.rollback(txn)
        assert mrt.peak_bus_usage() == 0

    def test_rollback_clears_transaction(self):
        mrt = _mrt()
        txn = Transaction()
        mrt.reserve_fu(0, 0, FUType.FP, txn)
        mrt.rollback(txn)
        assert not txn.fu_slots
        assert not txn.bus_slots


class TestValidation:
    def test_ii_must_be_positive(self):
        with pytest.raises(ValueError):
            ModuloReservationTable(two_cluster(), 0)


# ----------------------------------------------------------------------
# Property tests: no reservation-table conflicts on real schedules
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.compare import run_cell
from repro.cme import SamplingCME
from repro.machine import four_cluster, unified
from repro.workloads import kernel_by_name

_PROPERTY_ANALYZER = SamplingCME(max_points=64)

_MACHINES = {
    "unified": unified(),
    "2-cluster": two_cluster(),
    "2-cluster-1bus": two_cluster(
        register_bus=BusConfig(count=1, latency=2)
    ),
    "4-cluster": four_cluster(),
}

cell_strategy = st.tuples(
    st.sampled_from(("su2cor", "applu")),
    st.sampled_from(sorted(_MACHINES)),
    st.sampled_from(("baseline", "rmca")),
    st.sampled_from((0.0, 0.25, 0.5, 0.75, 1.0)),
)


class TestScheduleResourceProperties:
    """Random cells never oversubscribe FUs or register buses."""

    @given(cell=cell_strategy)
    @settings(max_examples=12, deadline=None)
    def test_no_mrt_resource_conflicts(self, cell):
        kernel_name, machine_name, scheduler, threshold = cell
        machine = _MACHINES[machine_name]
        result = run_cell(
            kernel_by_name(kernel_name),
            machine,
            scheduler,
            threshold,
            _PROPERTY_ANALYZER,
        )
        schedule = result.schedule
        # validate() re-checks dependences, FU capacity per modulo slot
        # and bounded register-bus occupancy; any conflict raises.
        schedule.validate()
        # Re-derive FU usage directly against cluster capacity.
        usage = {}
        loop = schedule.kernel.loop
        for name, placement in schedule.placements.items():
            op = loop.operation(name)
            key = (
                placement.time % schedule.ii,
                placement.cluster,
                op.fu_type,
            )
            usage[key] = usage.get(key, 0) + 1
        for (slot, cluster, fu), used in usage.items():
            assert used <= machine.cluster(cluster).n_units(fu), (
                f"slot {slot} cluster {cluster} {fu} oversubscribed"
            )
        # Bounded buses: every communication fits the pool.
        if machine.register_bus.count is not None:
            assert all(
                0 <= c.bus < machine.register_bus.count
                for c in schedule.communications
            )
