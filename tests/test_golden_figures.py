"""Golden-regression tests against the recorded paper figures.

``benchmarks/results/*.txt`` are the renderings the benchmark suite last
committed.  These tests parse them back and assert that a reduced grid —
the ``LRB=1,LMB=1`` / ``NMB=1,LMB=1`` panels plus the Unified group, all
four thresholds, full kernel suite — reproduces the recorded bars, and
that ``table1.txt`` still matches the machine presets.  The pipeline is
deterministic, so the tolerance only absorbs the files' 3-decimal
rounding; any real change to the scheduler, simulator, CME analyzer or
sweep normalization trips these tests.
"""

import pathlib
import re

import pytest

from repro.cme import SamplingCME
from repro.harness.grid import ExperimentGrid
from repro.harness.sweep import figure5, figure6
from repro.ir.operations import OpClass
from repro.machine import preset, unified

RESULTS = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"

#: The renderings round to 3 decimals.
TOLERANCE = 1.5e-3

_BAR_RE = re.compile(
    r"^\s+thr=(?P<thr>[\d.]+) \|.*\| "
    r"(?P<total>[\d.]+) \((?P<compute>[\d.]+)\+(?P<stall>[\d.]+)\)$"
)


def parse_figure_txt(path):
    """Parse a rendered figure back into {group: {thr: (comp, stall)}}."""
    groups = {}
    current = None
    for line in path.read_text().splitlines():
        match = _BAR_RE.match(line)
        if match:
            assert current is not None, f"bar before any group in {path}"
            groups[current][float(match["thr"])] = (
                float(match["compute"]),
                float(match["stall"]),
            )
            continue
        stripped = line.strip()
        if (
            stripped
            and not line.startswith((" ", "\t"))
            and not stripped.startswith(("Figure", "(full width"))
        ):
            current = stripped
            groups[current] = {}
    return groups


@pytest.fixture(scope="module")
def grid():
    """One grid for both figure tests: the benchmarks use
    ``SamplingCME(max_points=512)``, so matching it here makes the
    reduced runs bit-compatible with the recorded bars; sharing the grid
    computes the Unified reference once."""
    return ExperimentGrid(locality=SamplingCME(max_points=512))


def _assert_bars_match(figure, golden, groups):
    for group in groups:
        assert group in golden, f"group {group!r} missing from golden file"
        for threshold, (compute, stall) in golden[group].items():
            bar = next(
                b for b in figure.bars_in_group(group)
                if abs(b.threshold - threshold) < 1e-9
            )
            assert bar.norm_compute == pytest.approx(
                compute, abs=TOLERANCE
            ), f"{group} thr={threshold} compute drifted"
            assert bar.norm_stall == pytest.approx(
                stall, abs=TOLERANCE
            ), f"{group} thr={threshold} stall drifted"


class TestFigure5Golden:
    def test_reduced_grid_reproduces_recorded_bars(self, grid):
        golden = parse_figure_txt(RESULTS / "fig5_2cluster.txt")
        figure = figure5(n_clusters=2, latencies=(1,), grid=grid)
        _assert_bars_match(
            figure,
            golden,
            ["unified", "LRB=1,LMB=1 baseline", "LRB=1,LMB=1 rmca"],
        )

    def test_golden_file_structure(self):
        golden = parse_figure_txt(RESULTS / "fig5_2cluster.txt")
        # 1 unified + 9 bus combos x 2 schedulers, 4 thresholds each.
        assert len(golden) == 19
        assert all(len(bars) == 4 for bars in golden.values())


class TestFigure6Golden:
    def test_reduced_grid_reproduces_recorded_bars(self, grid):
        golden = parse_figure_txt(RESULTS / "fig6_2cluster.txt")
        figure = figure6(
            n_clusters=2, bus_counts=(1,), bus_latencies=(1,), grid=grid
        )
        _assert_bars_match(
            figure,
            golden,
            ["unified", "NMB=1,LMB=1 baseline", "NMB=1,LMB=1 rmca"],
        )

    def test_golden_file_structure(self):
        golden = parse_figure_txt(RESULTS / "fig6_2cluster.txt")
        # 1 unified + 4 bus configs x 2 schedulers.
        assert len(golden) == 9
        assert all(len(bars) == 4 for bars in golden.values())


class TestTable1Golden:
    _ROW_RE = re.compile(
        r"^(?P<name>[\w-]+)\s+(?P<clusters>\d+)\s+"
        r"(?P<ni>\d+)I/(?P<nf>\d+)F/(?P<nm>\d+)M\s+"
        r"(?P<regs>\d+)\s+(?P<cache>\d+)\s+(?P<issue>\d+)\s*$"
    )

    def test_configurations_match_presets(self):
        text = (RESULTS / "table1.txt").read_text()
        rows = {
            m["name"]: m
            for m in map(self._ROW_RE.match, text.splitlines())
            if m
        }
        assert set(rows) == {"unified", "2-cluster", "4-cluster"}
        for name, row in rows.items():
            machine = preset(name)
            cluster = machine.cluster(0)
            assert machine.n_clusters == int(row["clusters"])
            assert cluster.n_integer == int(row["ni"])
            assert cluster.n_fp == int(row["nf"])
            assert cluster.n_memory == int(row["nm"])
            assert cluster.n_registers == int(row["regs"])
            assert cluster.cache.size == int(row["cache"])
            assert machine.issue_width == int(row["issue"])

    def test_latencies_match_defaults(self):
        text = (RESULTS / "table1.txt").read_text()
        machine = unified()
        recorded = dict(
            re.findall(r"^(\w+)\s+(\d+)\s*$", text, flags=re.MULTILINE)
        )
        for opclass in OpClass:
            assert opclass.value in recorded, f"{opclass.value} not recorded"
            assert machine.latency(opclass) == int(recorded[opclass.value])
        main = re.search(r"main memory: (\d+) cycles", text)
        assert main and machine.main_memory_latency == int(main.group(1))
