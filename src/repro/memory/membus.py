"""Memory-bus pool with hardware arbitration.

Memory buses interconnect the local caches and main memory (Section 2.1).
Unlike register buses they are *not* scheduler resources: arbitration is
done by hardware, so the timing model queues requests on the earliest
available bus.  ``count=None`` models the unbounded study of Section 5.2
(a request is always granted immediately).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..machine.config import BusConfig

__all__ = ["MemoryBusPool"]


class MemoryBusPool:
    """Tracks per-bus busy intervals and grants requests FIFO."""

    def __init__(self, config: BusConfig):
        self.config = config
        self._busy_until: Optional[List[int]] = (
            None if config.unbounded else [0] * config.count
        )
        self.total_wait_cycles = 0
        self.total_transactions = 0
        self.total_busy_cycles = 0

    @property
    def latency(self) -> int:
        return self.config.latency

    def acquire(self, time: int, duration: Optional[int] = None) -> int:
        """Request a bus at ``time``; returns the grant time.

        The chosen bus stays busy for ``duration`` cycles (default: the
        bus latency).  Waiting time is accumulated into the pool stats —
        it is the NC_WaitingBus term of the paper's latency formula.
        """
        if duration is None:
            duration = self.config.latency
        self.total_transactions += 1
        self.total_busy_cycles += duration
        if self._busy_until is None:
            return time
        best = min(range(len(self._busy_until)), key=lambda b: self._busy_until[b])
        grant = max(time, self._busy_until[best])
        self._busy_until[best] = grant + duration
        self.total_wait_cycles += grant - time
        return grant

    def reset_stats(self) -> None:
        self.total_wait_cycles = 0
        self.total_transactions = 0
        self.total_busy_cycles = 0

    def translate(self, time_delta: int) -> None:
        """Shift every bus's busy horizon by ``time_delta`` cycles."""
        if time_delta and self._busy_until is not None:
            self._busy_until = [t + time_delta for t in self._busy_until]

    def state_signature(self, base: int) -> Tuple[int, ...]:
        """Busy horizon relative to ``base``, as an order-free multiset.

        Arbitration picks the bus with the smallest ``busy_until``, so
        behaviour depends only on the multiset of values; bus identity is
        interchangeable.  Values at or before ``base`` are clamped to 0:
        an idle-since-the-past bus grants exactly like a never-used one.
        """
        if self._busy_until is None:
            return ()
        return tuple(sorted(max(0, t - base) for t in self._busy_until))
