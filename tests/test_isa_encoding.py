"""Tests for the VLIW instruction encoding (Figure 2)."""

import pytest

from repro.ir.operations import FUType
from repro.isa import EncodingError, encode_kernel
from repro.machine import BusConfig, two_cluster, unified
from repro.scheduler import BaselineScheduler
from repro.workloads import kernel_by_name, motivating_kernel, motivating_machine


class TestEncodeStructure:
    def test_one_instruction_per_modulo_slot(self, saxpy, two_cluster_machine):
        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        program = encode_kernel(schedule)
        assert program.ii == schedule.ii
        assert [i.slot for i in program.instructions] == list(range(schedule.ii))

    def test_one_cluster_instruction_per_cluster(self, saxpy, two_cluster_machine):
        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        program = encode_kernel(schedule)
        for instruction in program.instructions:
            assert len(instruction.clusters) == 2
            assert [c.cluster for c in instruction.clusters] == [0, 1]

    def test_fu_field_count_matches_cluster(self, saxpy, two_cluster_machine):
        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        program = encode_kernel(schedule)
        cluster = two_cluster_machine.cluster(0)
        for instruction in program.instructions:
            for cluster_instr in instruction.clusters:
                assert len(cluster_instr.fu_fields) == cluster.issue_width

    def test_every_operation_encoded_once(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        program = encode_kernel(schedule)
        encoded = [
            f.op
            for i in program.instructions
            for c in i.clusters
            for f in c.fu_fields
            if f.op is not None
        ]
        assert sorted(encoded) == sorted(schedule.placements)

    def test_operation_field_lookup(self, saxpy, two_cluster_machine):
        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        program = encode_kernel(schedule)
        slot, cluster, fu_field = program.operation_field("mul")
        placement = schedule.placements["mul"]
        assert slot == placement.time % schedule.ii
        assert cluster == placement.cluster
        assert fu_field.fu_type is FUType.FP
        with pytest.raises(KeyError):
            program.operation_field("nonexistent")

    def test_ops_on_correct_fu_type(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        program = encode_kernel(schedule)
        loop = stencil.loop
        for instruction in program.instructions:
            for cluster_instr in instruction.clusters:
                for fu_field in cluster_instr.fu_fields:
                    if fu_field.op is not None:
                        assert loop.operation(fu_field.op).fu_type is fu_field.fu_type


class TestBusFields:
    def test_communications_appear_in_bus_fields(self, motivating):
        kernel, machine = motivating
        schedule = BaselineScheduler().schedule(kernel, machine)
        program = encode_kernel(schedule)
        n_out = sum(
            1
            for i in program.instructions
            for c in i.clusters
            for r in c.out_bus
            if r is not None
        )
        n_in = sum(
            1
            for i in program.instructions
            for c in i.clusters
            for r in c.in_bus
            if r is not None
        )
        # One OUT and one IN field per static communication.
        assert n_out == len(schedule.communications)
        assert n_in == len(schedule.communications)

    def test_out_field_in_source_cluster(self, motivating):
        kernel, machine = motivating
        schedule = BaselineScheduler().schedule(kernel, machine)
        program = encode_kernel(schedule)
        for comm in schedule.communications:
            slot = comm.start % schedule.ii
            cluster_instr = program.instructions[slot].clusters[comm.src_cluster]
            assert cluster_instr.out_bus[comm.bus] is not None

    def test_in_field_in_destination_cluster(self, motivating):
        kernel, machine = motivating
        schedule = BaselineScheduler().schedule(kernel, machine)
        program = encode_kernel(schedule)
        for comm in schedule.communications:
            slot = comm.arrival % schedule.ii
            cluster_instr = program.instructions[slot].clusters[comm.dst_cluster]
            assert cluster_instr.in_bus[comm.bus] is not None

    def test_no_bus_fields_on_unified(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        program = encode_kernel(schedule)
        for instruction in program.instructions:
            for cluster_instr in instruction.clusters:
                assert all(r is None for r in cluster_instr.in_bus)
                assert all(r is None for r in cluster_instr.out_bus)

    def test_unbounded_buses_rejected(self, saxpy):
        machine = two_cluster(register_bus=BusConfig(count=None, latency=1))
        schedule = BaselineScheduler().schedule(saxpy, machine)
        with pytest.raises(EncodingError, match="unbounded"):
            encode_kernel(schedule)


class TestRendering:
    def test_render_mentions_every_op(self, saxpy, two_cluster_machine):
        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        text = encode_kernel(schedule).render()
        for name in schedule.placements:
            assert name in text

    def test_render_contains_nops(self, saxpy, two_cluster_machine):
        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        text = encode_kernel(schedule).render()
        assert "nop" in text

    def test_render_header(self, saxpy, two_cluster_machine):
        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        text = encode_kernel(schedule).render()
        assert f"II={schedule.ii}" in text


class TestSuiteEncoding:
    @pytest.mark.parametrize(
        "name", ["tomcatv", "su2cor", "applu", "turb3d"]
    )
    def test_suite_kernels_encode_and_validate(self, name, two_cluster_machine):
        kernel = kernel_by_name(name)
        schedule = BaselineScheduler().schedule(kernel, two_cluster_machine)
        program = encode_kernel(schedule)
        program.validate()
