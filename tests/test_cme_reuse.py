"""Unit tests for the reuse analysis (CME front-end)."""

import pytest

from repro.cme.reuse import (
    analyze_reuse,
    group_pairs,
    innermost_stride,
    self_spatial,
    self_temporal,
)
from repro.ir import LoopBuilder


def _loop_with_refs(build):
    """Helper: run ``build(b, i)`` on a fresh 1-D builder, return the loop."""
    b = LoopBuilder("k")
    i = b.dim("i", 0, 32)
    build(b, i)
    return b.build().loop


class TestInnermostStride:
    def test_unit_stride(self):
        loop = _loop_with_refs(
            lambda b, i: b.load(b.array("A", (64,)), [b.aff(i=1)])
        )
        assert innermost_stride(loop.refs[0], loop) == 8

    def test_non_unit_stride(self):
        loop = _loop_with_refs(
            lambda b, i: b.load(b.array("A", (128,)), [b.aff(i=2)])
        )
        assert innermost_stride(loop.refs[0], loop) == 16

    def test_invariant_reference(self):
        def build(b, i):
            j = b.dim("j", 0, 4)
            b.load(b.array("A", (64, 64)), [b.aff(i=1), b.aff(3)])
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        build(b, i)
        loop = b.build().loop
        assert innermost_stride(loop.refs[0], loop) == 0

    def test_row_major_outer_var_stride(self):
        b = LoopBuilder("k")
        j = b.dim("j", 0, 8)
        i = b.dim("i", 0, 8)
        a = b.array("A", (8, 8))
        b.load(a, [b.aff(i=1), b.aff(j=1)])  # transposed access
        loop = b.build().loop
        # Moving i by 1 moves the ROW: stride = row size = 8*8 bytes.
        assert innermost_stride(loop.refs[0], loop) == 64

    def test_step_scales_stride(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 32, step=2)
        a = b.array("A", (64,))
        b.load(a, [b.aff(i=1)])
        loop = b.build().loop
        assert innermost_stride(loop.refs[0], loop) == 16


class TestSelfReuse:
    def test_temporal(self):
        b = LoopBuilder("k")
        j = b.dim("j", 0, 4)
        i = b.dim("i", 0, 8)
        a = b.array("A", (16, 16))
        b.load(a, [b.aff(j=1), b.aff(0)])
        loop = b.build().loop
        assert self_temporal(loop.refs[0], loop)
        assert not self_spatial(loop.refs[0], loop, 32)

    def test_spatial(self):
        loop = _loop_with_refs(
            lambda b, i: b.load(b.array("A", (64,)), [b.aff(i=1)])
        )
        assert self_spatial(loop.refs[0], loop, 32)
        assert not self_temporal(loop.refs[0], loop)

    def test_no_reuse_for_large_stride(self):
        loop = _loop_with_refs(
            lambda b, i: b.load(b.array("A", (256,)), [b.aff(i=8)])
        )
        assert not self_spatial(loop.refs[0], loop, 32)
        assert not self_temporal(loop.refs[0], loop)


class TestGroupPairs:
    def test_uniform_pair_found(self):
        def build(b, i):
            a = b.array("A", (64,))
            b.load(a, [b.aff(i=1)])
            b.load(a, [b.aff(1, i=1)])
        loop = _loop_with_refs(build)
        pairs = group_pairs(loop.refs, loop, 32)
        assert pairs == [(0, 1, 8)]

    def test_leader_is_lower_address(self):
        def build(b, i):
            a = b.array("A", (64,))
            b.load(a, [b.aff(2, i=1)])
            b.load(a, [b.aff(i=1)])
        loop = _loop_with_refs(build)
        assert group_pairs(loop.refs, loop, 32) == [(1, 0, 16)]

    def test_different_arrays_never_group(self):
        def build(b, i):
            b.load(b.array("A", (64,)), [b.aff(i=1)])
            b.load(b.array("B", (64,)), [b.aff(i=1)])
        loop = _loop_with_refs(build)
        assert group_pairs(loop.refs, loop, 32) == []

    def test_different_coefficients_never_group(self):
        def build(b, i):
            a = b.array("A", (128,))
            b.load(a, [b.aff(i=1)])
            b.load(a, [b.aff(i=2)])
        loop = _loop_with_refs(build)
        assert group_pairs(loop.refs, loop, 32) == []


class TestAnalyzeReuse:
    def test_motivating_example_structure(self):
        """LD1/LD3 group on B, LD2/LD4 group on C (Section 3)."""
        b = LoopBuilder("k")
        i = b.dim("i", 0, 128, step=2)
        arr_b = b.array("B", (128,), base=0)
        arr_c = b.array("C", (128,), base=2048)
        b.load(arr_b, [b.aff(i=1)])
        b.load(arr_c, [b.aff(i=1)])
        b.load(arr_b, [b.aff(1, i=1)])
        b.load(arr_c, [b.aff(1, i=1)])
        loop = b.build().loop
        infos = analyze_reuse(loop.refs, loop, line_size=64)
        assert infos[2].group_leaders == (0,)  # ld3 reuses ld1
        assert infos[3].group_leaders == (1,)  # ld4 reuses ld2
        assert infos[0].group_leaders == ()
        assert all(info.spatial for info in infos)

    def test_expected_self_miss_ratio(self):
        loop = _loop_with_refs(
            lambda b, i: b.load(b.array("A", (64,)), [b.aff(i=1)])
        )
        infos = analyze_reuse(loop.refs, loop, 32)
        assert infos[0].expected_self_miss_ratio == 1.0

    def test_temporal_ratio_zero(self):
        b = LoopBuilder("k")
        j = b.dim("j", 0, 4)
        i = b.dim("i", 0, 8)
        a = b.array("A", (16, 16))
        b.load(a, [b.aff(j=1), b.aff(0)])
        loop = b.build().loop
        infos = analyze_reuse(loop.refs, loop, 32)
        assert infos[0].expected_self_miss_ratio == 0.0
