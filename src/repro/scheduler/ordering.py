"""Node ordering for the unified assign-and-schedule pass.

The paper (Section 4.3) reuses the ordering of Sánchez & González [22],
which in turn follows the Swing-Modulo-Scheduling ordering: it "minimizes
the number of nodes that have both predecessors and successors in the set
of nodes that precede it in the order", so each node is placed adjacent to
already-ordered neighbours and recurrences are handled first.

The algorithm:

1. Compute ASAP/ALAP times at ``II = MII`` (ignoring resource limits),
   giving every node a *depth* (ASAP), *height* (distance to the sink,
   i.e. ``ALAP_max - ALAP``) and *mobility* (ALAP - ASAP).
2. Build priority sets: strongly connected components with cycles sorted
   by decreasing RecMII, each augmented with the nodes on paths from
   previously ordered sets; the remaining nodes form the last set.
3. Order each set by alternating top-down / bottom-up sweeps, picking the
   highest-height (top-down) or highest-depth (bottom-up) candidate, with
   mobility as the tie-break.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..ir.ddg import DependenceGraph
from ..machine.config import MachineConfig
from .mii import edge_latency

__all__ = ["NodeTimes", "compute_times", "sms_order"]


class NodeTimes:
    """ASAP / ALAP / mobility / depth / height per node at a given II."""

    def __init__(
        self,
        asap: Dict[str, int],
        alap: Dict[str, int],
    ):
        self.asap = asap
        self.alap = alap
        horizon = max(alap.values(), default=0)
        self.mobility = {n: alap[n] - asap[n] for n in asap}
        self.depth = dict(asap)
        self.height = {n: horizon - alap[n] for n in alap}

    def critical_path_length(self) -> int:
        return max(self.alap.values(), default=0)


def compute_times(
    ddg: DependenceGraph, machine: MachineConfig, ii: int
) -> NodeTimes:
    """Longest-path ASAP/ALAP with loop-carried edges relaxed by ``ii``.

    Edges are weighted ``latency - ii*distance``; at ``ii >= RecMII``
    every cycle has non-positive weight, so iterating relaxations to a
    fixed point terminates.
    """
    nodes = ddg.nodes()
    asap = {n: 0 for n in nodes}
    edges = [
        (
            e.src,
            e.dst,
            edge_latency(ddg.op(e.src), e.kind, machine) - ii * e.distance,
        )
        for e in ddg.edges()
    ]
    for _ in range(len(nodes) + 1):
        changed = False
        for src, dst, weight in edges:
            candidate = asap[src] + weight
            if candidate > asap[dst]:
                asap[dst] = candidate
                changed = True
        if not changed:
            break
    else:  # pragma: no cover - guarded by RecMII precondition
        raise ValueError("positive cycle: ii below RecMII")
    floor = min(asap.values(), default=0)
    if floor < 0:
        asap = {n: t - floor for n, t in asap.items()}
    horizon = max(asap.values(), default=0)
    alap = {n: horizon for n in nodes}
    for _ in range(len(nodes) + 1):
        changed = False
        for src, dst, weight in edges:
            candidate = alap[dst] - weight
            if candidate < alap[src]:
                alap[src] = candidate
                changed = True
        if not changed:
            break
    return NodeTimes(asap, alap)


def _scc_rec_mii(
    ddg: DependenceGraph, component: Set[str], machine: MachineConfig
) -> float:
    """RecMII restricted to one strongly connected component."""
    best = 0.0
    sub = nx.MultiDiGraph(
        (u, v, d)
        for u, v, d in ddg.nx.edges(data=True)
        if u in component and v in component
    )
    sub.add_nodes_from(component)
    for cycle in nx.simple_cycles(sub):
        lat = 0
        dist = 0
        ring = list(cycle) + [cycle[0]]
        for u, v in zip(ring, ring[1:]):
            datas = sub.get_edge_data(u, v)
            if not datas:
                continue
            choice = max(
                datas.values(),
                key=lambda d: (
                    edge_latency(ddg.op(u), d["kind"], machine),
                    -d["distance"],
                ),
            )
            lat += edge_latency(ddg.op(u), choice["kind"], machine)
            dist += choice["distance"]
        if dist > 0:
            best = max(best, lat / dist)
    return best


def _priority_sets(
    ddg: DependenceGraph, machine: MachineConfig
) -> List[Set[str]]:
    """Recurrence components (hardest first) padded with path nodes."""
    comps: List[Tuple[float, Set[str]]] = []
    for component in nx.strongly_connected_components(ddg.nx):
        is_cycle = len(component) > 1 or any(
            ddg.nx.has_edge(n, n) for n in component
        )
        if is_cycle:
            comps.append((_scc_rec_mii(ddg, component, machine), set(component)))
    comps.sort(key=lambda item: -item[0])
    plain = nx.DiGraph(ddg.nx)
    sets: List[Set[str]] = []
    covered: Set[str] = set()
    for _, component in comps:
        members = set(component)
        if covered:
            for prior in covered:
                for node in component:
                    for path_set in _nodes_on_paths(plain, prior, node):
                        members |= path_set
        members -= covered
        if members:
            sets.append(members)
            covered |= members
    rest = set(ddg.nodes()) - covered
    if rest:
        sets.append(rest)
    return sets


def _nodes_on_paths(
    graph: nx.DiGraph, a: str, b: str
) -> List[Set[str]]:
    """Nodes on directed paths a->b or b->a (both orientations checked)."""
    result: List[Set[str]] = []
    for src, dst in ((a, b), (b, a)):
        if nx.has_path(graph, src, dst):
            desc = nx.descendants(graph, src) | {src}
            anc = nx.ancestors(graph, dst) | {dst}
            result.append(desc & anc)
    return result


def sms_order(
    ddg: DependenceGraph,
    machine: MachineConfig,
    mii: int,
) -> List[str]:
    """Compute the scheduling order of the operations.

    Returns all node names; every node appears exactly once.
    """
    times = compute_times(ddg, machine, max(1, mii))
    ordered: List[str] = []
    placed: Set[str] = set()
    for node_set in _priority_sets(ddg, machine):
        _order_set(ddg, node_set, times, ordered, placed)
    return ordered


def _order_set(
    ddg: DependenceGraph,
    node_set: Set[str],
    times: NodeTimes,
    ordered: List[str],
    placed: Set[str],
) -> None:
    remaining = set(node_set)
    while remaining:
        succ_ready = {
            n for n in remaining if ddg.predecessors(n) & placed
        }
        pred_ready = {
            n for n in remaining if ddg.successors(n) & placed
        }
        if succ_ready and not pred_ready:
            direction = "top-down"
            frontier = succ_ready
        elif pred_ready and not succ_ready:
            direction = "bottom-up"
            frontier = pred_ready
        elif succ_ready and pred_ready:
            direction = "top-down"
            frontier = succ_ready | pred_ready
        else:
            # Fresh set: seed with the node of least mobility (the most
            # constrained one, typically on the critical path).
            direction = "top-down"
            frontier = remaining
        node = _pick(frontier, times, direction)
        ordered.append(node)
        placed.add(node)
        remaining.discard(node)


def _pick(frontier: Set[str], times: NodeTimes, direction: str) -> str:
    if direction == "top-down":
        # Highest height first (deep chains early); mobility breaks ties.
        key = lambda n: (-times.height[n], times.mobility[n], n)
    else:
        key = lambda n: (-times.depth[n], times.mobility[n], n)
    return min(frontier, key=key)
