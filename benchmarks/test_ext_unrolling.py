"""Extension: loop unrolling × binding prefetching (the paper's deferred
optimization, Section 4.3 / reference [22]).

A unit-stride load misses only when it crosses a line boundary (ratio
0.25 on 8-byte elements and 32-byte lines), but binding prefetching is
all-or-nothing per *static* instruction.  Unrolling by the line factor
splits the stream into one always-missing leader copy and always-hitting
follower copies, so the miss threshold can select exactly the leader —
the paper's "one of them always miss and the other always hit".

The benchmark sweeps unroll factors {1, 2, 4} × thresholds {1.00, 0.50,
0.00} on a clean three-stream kernel (disjoint cache images — no
conflict or coherence noise) and reports per-element cycles, prefetch
counts, register pressure and stall.

It also records a nuance the paper's abstraction glosses over: at the
tag level the follower copies always hit, but their *data* arrives with
the leader's in-flight fill (the same-line accesses merge in the MSHR),
so selectively prefetching only the leader leaves the followers'
consumers waiting on part of the fill latency.  Full prefetching
(threshold 0.00) removes that residual stall at the price of higher
register pressure — the trade-off the table quantifies.
"""

from repro.analysis.compare import make_scheduler
from repro.harness.report import format_table
from repro.ir import LoopBuilder
from repro.machine import BusConfig, two_cluster
from repro.scheduler.lifetimes import max_live
from repro.simulator import simulate
from repro.transform import unroll

from conftest import save_and_print

N = 128


def _stream_kernel():
    """Three unit-stride streams with pure 25% spatial miss ratios.

    The 1KB arrays occupy disjoint thirds of the 4KB cache image, so the
    experiment isolates *spatial* misses.
    """
    b = LoopBuilder("ustream")
    i = b.dim("i", 0, N)
    x = b.array("X", (N,))
    y = b.array("Y", (N,))
    out = b.array("OUT", (N,))
    xi = b.load(x, [b.aff(i=1)], name="ld_x")
    yi = b.load(y, [b.aff(i=1)], name="ld_y")
    t = b.fmul(xi, yi, name="mul")
    u = b.fadd(t, xi, name="add")
    b.store(out, [b.aff(i=1)], u, name="st")
    return b.build()


def _run(locality):
    machine = two_cluster(memory_bus=BusConfig(count=None, latency=1))
    kernel = _stream_kernel()
    rows = []
    outcome = {}
    for factor in (1, 2, 4):
        variant = unroll(kernel, factor)
        for threshold in (1.0, 0.5, 0.0):
            engine = make_scheduler("rmca", threshold, locality)
            schedule = engine.schedule(variant, machine)
            schedule.validate()
            result = simulate(schedule)
            per_element = result.total_cycles / N
            rows.append(
                (
                    factor,
                    threshold,
                    schedule.ii,
                    len(schedule.prefetched_loads()),
                    max_live(schedule),
                    result.stall_cycles,
                    round(per_element, 3),
                )
            )
            outcome[(factor, threshold)] = (schedule, result, per_element)
    return rows, outcome


def test_unrolling_extension(benchmark, results_dir, locality):
    rows, outcome = benchmark.pedantic(
        _run, args=(locality,), rounds=1, iterations=1
    )
    table = format_table(
        ["unroll", "threshold", "II", "prefetched loads", "MaxLive",
         "stall cycles", "cycles/element"],
        rows,
    )
    save_and_print(results_dir, "ext_unrolling", table)

    # Without unrolling, the 0.25 spatial ratio sits below the 0.5
    # threshold: nothing is prefetched, every boundary crossing stalls.
    sched_u1 = outcome[(1, 0.5)][0]
    assert sched_u1.prefetched_loads() == []
    assert outcome[(1, 0.5)][1].stall_cycles > 0

    # After unrolling by the line factor, threshold 0.5 selects exactly
    # the leading copy of each stream in each cluster (ratio 1.0), never
    # a follower (ratio 0.0).
    sched_u4, result_u4, _pe = outcome[(4, 0.5)]
    prefetched = set(sched_u4.prefetched_loads())
    assert prefetched, "no load was binding-prefetched after unrolling"
    leaders = set()
    for stream in ("x", "y"):
        for cluster in range(2):
            copies = sorted(
                name for name in sched_u4.placements
                if name.startswith(f"ld_{stream}@")
                and sched_u4.cluster_of(name) == cluster
            )
            if copies:
                leaders.add(copies[0])
    assert prefetched <= leaders, (prefetched, leaders)

    # Selective prefetching reduces stall but cannot eliminate it: the
    # follower copies' data arrives with the leader's in-flight fill, a
    # timing effect the paper's tag-level hit/miss abstraction hides.
    assert result_u4.stall_cycles < outcome[(4, 1.0)][1].stall_cycles
    assert result_u4.stall_cycles > 0

    # Prefetching the *single* rolled load (factor 1, threshold 0.00)
    # covers every instance and removes the stall entirely...
    rolled_full = outcome[(1, 0.0)]
    assert rolled_full[1].stall_cycles == 0
    # ... at much higher register pressure than the unrolled selective
    # scheme — the paper's motivation for unrolling, which in our
    # arrival-accurate model buys pressure, not time.
    assert max_live(rolled_full[0]) >= 2 * max_live(sched_u4)

    # A prefetched configuration achieves the best per-element cycles.
    per_element = {key: value[2] for key, value in outcome.items()}
    best = min(per_element, key=per_element.get)
    assert best[1] < 1.0, f"best config {best} used no prefetching"
