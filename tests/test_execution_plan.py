"""Plan-based grid execution: equivalence, dedup accounting, batching.

The load-bearing contract of the execution plan (PR 10): running a grid
through the :class:`~repro.engine.plan.ExecutionPlanner` stage-task DAG
produces **byte-identical** results — and byte-identical stage-store
telemetry — compared to the per-cell reference walk (``--no-plan``),
for every registered grid scenario, across ``n_jobs`` ∈ {1, 2}, and for
a golden figure panel.  On a cold run each unique
analyze/schedule/simulate key executes exactly once (planned task count
== unique store keys), and co-batched simulate is raw-state-equal to
solo runs.
"""

import json

import pytest

from repro.cme import IncrementalCME, SamplingCME
from repro.engine import ExecutionPlanner, StageStore
from repro.engine.plan import run_schedule_task
from repro.engine.stages import make_scheduler
from repro.harness.grid import CellSpec, ExperimentGrid, machine_from_key
from repro.harness.scenarios import all_scenarios, run_scenario
from repro.machine import four_cluster, two_cluster
from repro.simulator import LockstepSimulator, VectorizedSimulator
from repro.workloads import spec_suite

MAX_POINTS = 512

GRID_SCENARIOS = [s.name for s in all_scenarios() if not s.is_figure]


def _canonical(results):
    return [result.canonical() for result in results]


# ----------------------------------------------------------------------
# Plan vs per-cell reference path
# ----------------------------------------------------------------------
class TestPlanReferenceEquivalence:
    @pytest.mark.parametrize("name", GRID_SCENARIOS)
    def test_every_grid_scenario(self, name):
        planned = run_scenario(name, cache=False)
        reference = run_scenario(name, cache=False, plan=False)
        assert _canonical(planned.results) == _canonical(reference.results)
        # The plan path ran (and reported itself); the reference didn't.
        assert planned.grid.stats.plan["runs"] == 1
        assert planned.grid.stats.plan["cells"] == len(planned.results)
        assert reference.grid.stats.plan == {}

    def test_store_telemetry_matches_reference_probe_for_probe(self):
        """Owner cells probe at plan time, duplicates at assembly —
        the net store telemetry equals the per-cell path's exactly."""
        planned = run_scenario("fig6-smoke", cache=False)
        reference = run_scenario("fig6-smoke", cache=False, plan=False)
        assert (
            planned.grid.stage_store.telemetry()
            == reference.grid.stage_store.telemetry()
        )

    def test_parallel_plan_matches_serial_reference(self):
        reference = run_scenario("streaming", cache=False, plan=False)
        fanned = run_scenario("streaming", cache=False, n_jobs=2)
        assert _canonical(fanned.results) == _canonical(reference.results)
        assert fanned.grid.stats.plan["runs"] == 1

    def test_golden_figure_panel(self):
        planned = run_scenario("fig6-smoke", cache=False)
        reference = run_scenario("fig6-smoke", cache=False, plan=False)
        assert planned.figure.bars == reference.figure.bars
        assert planned.figure.records == reference.figure.records


# ----------------------------------------------------------------------
# Cold-run task accounting (the dedup acceptance criterion)
# ----------------------------------------------------------------------
class TestColdRunTaskAccounting:
    def test_fig6_unique_keys_execute_exactly_once(self):
        outcome = run_scenario("fig6-smoke", cache=False)
        plan = outcome.grid.stats.plan
        telemetry = outcome.grid.stage_store.telemetry()
        # Cold store: every unique key misses once, becomes exactly one
        # task, and stores exactly one entry.
        assert plan["schedule_tasks"] == plan["schedule_unique"]
        assert (
            plan["schedule_tasks"]
            == telemetry["schedule"]["stores"]
            == telemetry["schedule"]["entries"]
        )
        assert plan["simulate_tasks"] == plan["simulate_unique"]
        assert (
            plan["simulate_tasks"]
            == telemetry["simulate"]["stores"]
            == telemetry["simulate"]["entries"]
        )
        assert plan["analyze_tasks"] == telemetry["analyze"]["entries"]
        # Every cell probed the schedule family exactly once (owners at
        # plan time, duplicates at assembly).
        schedule = telemetry["schedule"]
        assert schedule["hits"] + schedule["misses"] == plan["cells"]
        assert schedule["hits"] == plan["cells"] - plan["schedule_unique"]
        # The threshold sweep collapses simulate work below cell count.
        assert plan["simulate_unique"] < plan["cells"]
        assert plan["batch_width_max"] > 1

    def test_analyze_tasks_planned_for_trace_backed_analyzer(self):
        grid = ExperimentGrid(
            locality=IncrementalCME(max_points=MAX_POINTS), cache=False
        )
        outcome = run_scenario("streaming", grid=grid)
        plan = grid.stats.plan
        telemetry = grid.stage_store.telemetry()
        assert plan["analyze_tasks"] > 0
        assert plan["analyze_tasks"] == telemetry["analyze"]["entries"]
        # One analyze task per unique loop, not per cell.
        assert plan["analyze_tasks"] < len(outcome.results)

    def test_sampling_analyzer_plans_no_analyze_tasks(self):
        grid = ExperimentGrid(
            locality=SamplingCME(max_points=MAX_POINTS), cache=False
        )
        run_scenario("streaming", grid=grid)
        assert grid.stats.plan["analyze_tasks"] == 0

    def test_warm_store_plans_zero_tasks(self, tmp_path):
        cold = run_scenario("streaming", cache_dir=tmp_path)
        fresh_grid = ExperimentGrid(
            locality=cold.scenario.locality.build(), cache=False
        )
        fresh_grid.stage_store = StageStore(cache_dir=tmp_path / "stages")
        warm = run_scenario("streaming", grid=fresh_grid)
        plan = fresh_grid.stats.plan
        # Every unique key hits at plan time: nothing left to execute.
        assert plan["schedule_tasks"] == 0
        assert plan["simulate_tasks"] == 0
        assert plan["batches"] == 0
        assert plan["schedule_unique"] > 0
        assert _canonical(warm.results) == _canonical(cold.results)


# ----------------------------------------------------------------------
# Planner unit contracts
# ----------------------------------------------------------------------
class TestPlannerUnit:
    def _specs(self):
        machine = two_cluster()
        suite = spec_suite(["tomcatv", "hydro2d"])
        specs = [
            CellSpec.of(kernel, machine, scheduler, threshold)
            for kernel in suite
            for scheduler in ("baseline", "rmca")
            for threshold in (1.0, 0.0)
        ]
        return specs, {kernel.name: kernel for kernel in suite}

    def _build_plan(self, locality):
        specs, kernels = self._specs()
        planner = ExecutionPlanner(locality, StageStore())
        plan = planner.plan(specs, kernels)
        for task in plan.schedule_tasks:
            schedule = run_schedule_task(
                task,
                kernels[str(task.payload["kernel"])],
                machine_from_key(str(task.payload["machine"])),
                locality,
            )
            plan.schedules[task.key] = schedule
        planner.plan_simulate(plan)
        return plan

    def test_planner_is_deterministic(self):
        first = self._build_plan(SamplingCME(max_points=MAX_POINTS))
        second = self._build_plan(SamplingCME(max_points=MAX_POINTS))
        for stage in ("analyze_tasks", "schedule_tasks", "simulate_tasks"):
            assert [t.to_dict() for t in getattr(first, stage)] == [
                t.to_dict() for t in getattr(second, stage)
            ], stage
        assert [b.to_dict() for b in first.batches] == [
            b.to_dict() for b in second.batches
        ]
        assert [a.to_dict() for a in first.assembly] == [
            a.to_dict() for a in second.assembly
        ]
        assert first.counters == second.counters

    def test_plan_to_dict_is_json_serializable(self):
        plan = self._build_plan(SamplingCME(max_points=MAX_POINTS))
        dumped = json.loads(json.dumps(plan.to_dict()))
        assert dumped["counters"] == plan.counters
        assert len(dumped["assembly"]) == plan.counters["cells"]

    def test_schedule_tasks_unique_and_owned(self):
        plan = self._build_plan(SamplingCME(max_points=MAX_POINTS))
        keys = [task.key for task in plan.schedule_tasks]
        assert len(keys) == len(set(keys))
        owners = [n for n in plan.assembly if n.schedule_owner]
        assert len(owners) == plan.counters["schedule_unique"]
        # Every assembly node resolves to a materialized product key.
        for node in plan.assembly:
            assert node.schedule_key in plan.schedules
            assert node.simulate_key is not None

    def test_batches_group_by_kernel_and_geometry(self):
        plan = self._build_plan(SamplingCME(max_points=MAX_POINTS))
        seen_tasks = []
        for batch in plan.batches:
            for task in batch.tasks:
                assert task.stage == "simulate"
                seen_tasks.append(task.task_id)
            assert batch.width >= 1
        assert sorted(seen_tasks) == sorted(
            t.task_id for t in plan.simulate_tasks
        )
        assert plan.counters["batch_width_max"] == max(
            batch.width for batch in plan.batches
        )


# ----------------------------------------------------------------------
# Co-batched simulate vs solo runs (raw-state equality)
# ----------------------------------------------------------------------
class TestRunBatchEquivalence:
    @pytest.fixture(scope="class")
    def schedules(self):
        analyzer = IncrementalCME(max_points=MAX_POINTS)
        kernel = spec_suite(["tomcatv"])[0]
        return [
            make_scheduler(scheduler, threshold, analyzer).schedule(
                kernel, machine
            )
            for scheduler, threshold, machine in (
                ("baseline", 1.0, two_cluster()),
                ("rmca", 0.0, two_cluster()),
                ("baseline", 0.0, four_cluster()),
            )
        ]

    def test_batch_is_raw_state_equal_to_solo(self, schedules):
        solo_sims = [VectorizedSimulator(s) for s in schedules]
        solo = [sim.run() for sim in solo_sims]
        batch_sims = [VectorizedSimulator(s) for s in schedules]
        batched = VectorizedSimulator.run_batch(batch_sims)
        for want_sim, got_sim, want, got in zip(
            solo_sims, batch_sims, solo, batched
        ):
            assert got.as_dict() == want.as_dict()
            assert got_sim.memory.counters() == want_sim.memory.counters()
            assert (
                got_sim.memory.state_signature(0)
                == want_sim.memory.state_signature(0)
            )
            assert got_sim.steady_report == want_sim.steady_report
            assert got_sim.vector_stats["co_batch_width"] == len(schedules)
            # The provider is uninstalled after the batch completes.
            assert got_sim._batch_addresses is None

    def test_mixed_batch_keeps_input_order(self, schedules):
        reference = [VectorizedSimulator(s).run() for s in schedules]
        scalar_want = LockstepSimulator(schedules[1]).run()
        sims = [
            VectorizedSimulator(schedules[0]),
            LockstepSimulator(schedules[1]),
            VectorizedSimulator(schedules[2]),
        ]
        results = VectorizedSimulator.run_batch(sims)
        assert results[0].as_dict() == reference[0].as_dict()
        assert results[1].as_dict() == scalar_want.as_dict()
        assert results[2].as_dict() == reference[2].as_dict()
        # Only the two vectorized members co-batched.
        assert sims[0].vector_stats["co_batch_width"] == 2
        assert sims[2].vector_stats["co_batch_width"] == 2

    def test_single_member_batch_runs_solo(self, schedules):
        want = VectorizedSimulator(schedules[0]).run()
        sim = VectorizedSimulator(schedules[0])
        (got,) = VectorizedSimulator.run_batch([sim])
        assert got.as_dict() == want.as_dict()
        assert "co_batch_width" not in sim.vector_stats
