"""ASCII stacked-bar rendering of figure data.

Approximates the paper's stacked compute/stall bar charts in plain text:
the compute part renders as ``#`` and the stall part as ``.``, scaled to
a fixed character width, one bar per line, grouped as in the figure.
"""

from __future__ import annotations

from typing import List, Optional

from .sweep import Bar, FigureData

__all__ = ["render_bar", "render_figure"]


def render_bar(bar: Bar, scale: float, width: int = 50) -> str:
    """One stacked bar line.  ``scale`` is the value rendered full-width."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    compute_chars = round(bar.norm_compute / scale * width)
    total_chars = round(bar.norm_total / scale * width)
    stall_chars = max(0, total_chars - compute_chars)
    body = "#" * compute_chars + "." * stall_chars
    return (
        f"thr={bar.threshold:4.2f} |{body.ljust(width)}| "
        f"{bar.norm_total:.3f} ({bar.norm_compute:.3f}+{bar.norm_stall:.3f})"
    )


def render_figure(
    figure: FigureData, width: int = 50, max_scale: Optional[float] = None
) -> str:
    """Render all groups of a figure as stacked ASCII bars."""
    if not figure.bars:
        return figure.title + "\n(no bars)"
    scale = (
        max(bar.norm_total for bar in figure.bars)
        if max_scale is None
        else max_scale
    )
    lines: List[str] = [figure.title, f"(full width = {scale:.3f}x unified)"]
    for group in figure.groups:
        lines.append("")
        lines.append(group)
        for bar in figure.bars_in_group(group):
            lines.append("  " + render_bar(bar, scale, width))
    return "\n".join(lines)
