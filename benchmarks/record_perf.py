"""Record the PR 2 hot-path win: fig5/fig6 single-job wall-clock.

Runs each figure sweep twice on a cold, cache-disabled grid — once with
``exact=True`` (every loop entry simulated instance by instance, the
PR 1 execution strategy) and once with steady-state memoization enabled
— asserts the bars are identical, and writes the timings plus
cells-computed counts to ``benchmarks/BENCH_pr2.json``.

Usage::

    PYTHONPATH=src python benchmarks/record_perf.py [--out PATH] [--skip-fig5]

Single-job on purpose: the point is the per-cell speedup, not process
fan-out (which composes with it).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.cme import SamplingCME
from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import run_scenario

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_pr2.json"

#: fig6 2-cluster, single job, measured at the PR 1 tree (commit
#: f9f1a5f, same protocol: cache disabled, no progress output).  The
#: acceptance bar for this PR is memoized fig6 >= 2x faster than this.
PR1_FIG6_SECONDS = 42.7


def _measure(scenario_name: str, exact: bool) -> dict:
    grid = ExperimentGrid(
        locality=SamplingCME(max_points=512), cache=False, exact=exact
    )
    start = time.perf_counter()
    outcome = run_scenario(scenario_name, grid=grid)
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 3),
        "cells_requested": grid.stats.requested,
        "cells_computed": grid.stats.computed,
        "stage_seconds": {
            stage: round(value, 3)
            for stage, value in grid.stats.stage_seconds.items()
        },
        "bars": [
            (bar.group, bar.scheduler, bar.threshold,
             bar.norm_compute, bar.norm_stall)
            for bar in outcome.figure.bars
        ],
    }


def record(scenarios: list, out: pathlib.Path) -> dict:
    figures = {}
    for name in scenarios:
        print(f"[{name}] exact (PR 1 strategy) ...", flush=True)
        exact = _measure(name, exact=True)
        print(f"[{name}]   {exact['seconds']}s, "
              f"{exact['cells_computed']} cells computed", flush=True)
        print(f"[{name}] memoized ...", flush=True)
        memoized = _measure(name, exact=False)
        print(f"[{name}]   {memoized['seconds']}s, "
              f"{memoized['cells_computed']} cells computed", flush=True)
        if memoized["bars"] != exact["bars"]:
            raise AssertionError(
                f"{name}: memoized bars diverge from exact replay"
            )
        if memoized["cells_computed"] != exact["cells_computed"]:
            raise AssertionError(f"{name}: cells-computed count changed")
        for run in (exact, memoized):
            del run["bars"]
        figures[name] = {
            "exact": exact,
            "memoized": memoized,
            "speedup_vs_exact": round(
                exact["seconds"] / memoized["seconds"], 2
            ),
        }
    payload = {
        "pr": 2,
        "protocol": (
            "single-job ExperimentGrid, cell cache disabled, identical "
            "bars asserted between modes; exact=True reproduces the PR 1 "
            "execution strategy (every loop entry simulated)"
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "pr1_baseline": {
            "fig6-2cluster_seconds": PR1_FIG6_SECONDS,
            "note": (
                "measured at commit f9f1a5f with the same protocol; the "
                "PR 2 memoized run must be >= 2x faster"
            ),
        },
        "figures": figures,
    }
    if "fig6-2cluster" in figures:
        memo_seconds = figures["fig6-2cluster"]["memoized"]["seconds"]
        payload["fig6_speedup_vs_pr1"] = round(
            PR1_FIG6_SECONDS / memo_seconds, 2
        )
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--skip-fig5", action="store_true",
        help="record only the fig6 sweep (fig5 is the larger grid)",
    )
    args = parser.parse_args(argv)
    scenarios = ["fig6-2cluster"]
    if not args.skip_fig5:
        scenarios.append("fig5-2cluster")
    payload = record(scenarios, args.out)
    speedup = payload.get("fig6_speedup_vs_pr1")
    if speedup is not None and speedup < 2.0:
        print(f"WARNING: fig6 speedup vs PR 1 is {speedup}x (< 2x)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
