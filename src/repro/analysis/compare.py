"""Scheduler comparison helpers.

Wraps the schedule→simulate pipeline for one kernel × machine ×
scheduler × threshold cell and provides the normalization the paper's
figures use (cycles relative to the Unified configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..cme.locality import LocalityAnalyzer, default_analyzer
from ..ir.builder import Kernel
from ..machine.config import MachineConfig
from ..scheduler.base import SchedulerConfig
from ..scheduler.baseline import BaselineScheduler
from ..scheduler.result import Schedule
from ..scheduler.rmca import RMCAScheduler
from ..simulator.executor import simulate
from ..simulator.stats import SimulationResult

__all__ = [
    "RunResult",
    "run_cell",
    "make_scheduler",
    "normalized_cycles",
    "ExecutionCounter",
    "CELL_EXECUTIONS",
]

_SCHEDULERS = ("baseline", "rmca")


class ExecutionCounter:
    """Process-local count of :func:`run_cell` executions.

    The sweep grid's cache tests assert that warm runs perform *zero*
    schedule/simulate computations; this counter is what they observe.
    """

    def __init__(self) -> None:
        self.count = 0

    def increment(self) -> None:
        self.count += 1

    def reset(self) -> None:
        self.count = 0


#: Incremented on every run_cell call in this process.
CELL_EXECUTIONS = ExecutionCounter()


@dataclass(frozen=True)
class RunResult:
    """One (kernel, machine, scheduler, threshold) experiment cell."""

    kernel: str
    machine: str
    scheduler: str
    threshold: float
    schedule: Schedule
    simulation: SimulationResult

    @property
    def total_cycles(self) -> int:
        return self.simulation.total_cycles

    @property
    def compute_cycles(self) -> int:
        return self.simulation.compute_cycles

    @property
    def stall_cycles(self) -> int:
        return self.simulation.stall_cycles

    def canonical(self) -> Dict[str, object]:
        """Plain-data projection of everything the cell observed.

        Two results are equivalent iff their canonical forms are equal;
        unlike ``==`` this also holds across pickling boundaries (the
        dependence graph inside ``schedule.kernel`` compares by identity),
        so the parallel-equivalence tests compare these.
        """
        return {
            "kernel": self.kernel,
            "machine": self.machine,
            "scheduler": self.scheduler,
            "threshold": self.threshold,
            "ii": self.schedule.ii,
            "mii": self.schedule.mii,
            "placements": sorted(
                (p.op, p.cluster, p.time, p.assumed_latency)
                for p in self.schedule.placements.values()
            ),
            "communications": sorted(
                (c.producer, c.src_cluster, c.dst_cluster, c.bus,
                 c.start, c.latency)
                for c in self.schedule.communications
            ),
            "simulation": self.simulation.as_dict(),
        }


def make_scheduler(
    name: str,
    threshold: float = 1.0,
    locality: Optional[LocalityAnalyzer] = None,
):
    """Instantiate a scheduler by its paper name (``baseline``/``rmca``).

    Both schedulers receive the locality analyzer: the figures apply the
    miss-threshold binding-prefetch step to Baseline too (its bars also
    sweep the threshold); only *cluster selection* differs.
    """
    if name not in _SCHEDULERS:
        raise KeyError(f"unknown scheduler {name!r}; choose from {_SCHEDULERS}")
    analyzer = locality if locality is not None else default_analyzer()
    config = SchedulerConfig(threshold=threshold)
    if name == "rmca":
        return RMCAScheduler(analyzer, config)
    return BaselineScheduler(config=config, locality=analyzer)


def run_cell(
    kernel: Kernel,
    machine: MachineConfig,
    scheduler: str,
    threshold: float = 1.0,
    locality: Optional[LocalityAnalyzer] = None,
    n_iterations: Optional[int] = None,
    n_times: Optional[int] = None,
) -> RunResult:
    """Schedule and simulate one experiment cell."""
    CELL_EXECUTIONS.increment()
    engine = make_scheduler(scheduler, threshold, locality)
    schedule = engine.schedule(kernel, machine)
    result = simulate(schedule, n_iterations=n_iterations, n_times=n_times)
    return RunResult(
        kernel=kernel.name,
        machine=machine.name,
        scheduler=scheduler,
        threshold=threshold,
        schedule=schedule,
        simulation=result,
    )


def normalized_cycles(
    results: Sequence[RunResult],
    baselines: Dict[str, int],
) -> List[Dict[str, float]]:
    """Normalize each result's cycles to its kernel's baseline total.

    ``baselines`` maps kernel name → the Unified-configuration total for
    that kernel (the paper normalizes every bar to Unified).  Returns one
    record per result with normalized compute / stall / total.
    """
    records = []
    for result in results:
        try:
            reference = baselines[result.kernel]
        except KeyError:
            raise KeyError(
                f"no baseline for kernel {result.kernel!r}; "
                f"baselines cover {sorted(baselines)}"
            ) from None
        if reference <= 0:
            raise ValueError(f"non-positive baseline for {result.kernel!r}")
        records.append(
            {
                "kernel": result.kernel,
                "machine": result.machine,
                "scheduler": result.scheduler,
                "threshold": result.threshold,
                "norm_compute": result.compute_cycles / reference,
                "norm_stall": result.stall_cycles / reference,
                "norm_total": result.total_cycles / reference,
            }
        )
    return records
