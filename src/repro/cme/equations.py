"""Cache Miss Equations solved by point enumeration.

The CME framework [9] classifies each access of an affine reference as:

* a **cold miss** — no earlier access touched the memory line, or
* a **replacement miss** — the line was touched before (at the *reuse
  source*), but accesses between the reuse source and now map at least
  ``associativity`` distinct other lines into the same cache set, or
* a hit otherwise.

Solving the equations exactly means counting integer points in an
exponential number of polyhedra; the paper uses the sampled estimator of
Vera et al. [25].  This backend takes the same route but keeps the CME
*structure*: it enumerates (a prefix of) the iteration space, locates
each access's reuse source, and evaluates the interference condition over
the reuse interval — per-access classification into cold / replacement /
hit rather than a cache-state simulation.  For LRU caches the interference
condition is exact, so this backend and the functional-simulation backend
(:class:`~repro.cme.sampling.SamplingCME`) must agree — an invariant the
test suite checks.

The extra value over the simulation backend is the breakdown: the
scheduler only needs miss ratios, but the equations also say *why* an
access misses, which the ablation benchmarks report.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..ir.loop import Loop
from ..ir.operations import Operation
from ..machine.config import CacheConfig
from .trace import loop_fingerprint

__all__ = ["MissBreakdown", "EquationCME"]


@dataclass
class MissBreakdown:
    """Per-operation CME classification counts."""

    accesses: Dict[str, int] = field(default_factory=dict)
    cold: Dict[str, int] = field(default_factory=dict)
    replacement: Dict[str, int] = field(default_factory=dict)

    def misses(self, op_name: str) -> int:
        return self.cold.get(op_name, 0) + self.replacement.get(op_name, 0)

    def miss_ratio(self, op_name: str) -> float:
        accesses = self.accesses.get(op_name, 0)
        if accesses == 0:
            return 0.0
        return self.misses(op_name) / accesses

    @property
    def total_misses(self) -> int:
        return sum(self.cold.values()) + sum(self.replacement.values())

    @property
    def total_cold(self) -> int:
        return sum(self.cold.values())

    @property
    def total_replacement(self) -> int:
        return sum(self.replacement.values())


class EquationCME:
    """Locality analyzer evaluating the cache miss equations per access."""

    name = "equations"

    def __init__(self, max_points: int = 2048):
        if max_points < 1:
            raise ValueError("max_points must be positive")
        self.max_points = max_points
        # Content-fingerprint keys (see SamplingCME): immune to id reuse
        # after GC and safe to keep across pickling.
        self._memo: Dict[Tuple, MissBreakdown] = {}

    # ------------------------------------------------------------------
    def solve(
        self,
        loop: Loop,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> MissBreakdown:
        """Classify every access of ``ops`` sharing one cache."""
        mem_ops = tuple(op for op in ops if op.is_memory)
        key = (
            loop_fingerprint(loop),
            tuple(sorted(op.name for op in mem_ops)),
            cache.size,
            cache.line_size,
            cache.associativity,
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        breakdown = self._evaluate(loop, mem_ops, cache)
        self._memo[key] = breakdown
        return breakdown

    def _evaluate(
        self,
        loop: Loop,
        ops: Tuple[Operation, ...],
        cache: CacheConfig,
    ) -> MissBreakdown:
        ordered = [op for op in loop.operations if op in ops]
        breakdown = MissBreakdown(
            accesses={op.name: 0 for op in ordered},
            cold={op.name: 0 for op in ordered},
            replacement={op.name: 0 for op in ordered},
        )
        if not ordered:
            return breakdown

        # last_touch: line -> sequence index of its most recent access.
        last_touch: Dict[int, int] = {}
        # Per cache set, the ordered access history [(seq, line), ...].
        set_history: Dict[int, List[Tuple[int, int]]] = {}
        assoc = cache.associativity
        seq = 0
        for point in loop.iteration_points(limit=self.max_points):
            for op in ordered:
                ref = loop.ref_of(op)
                address = ref.address(point)
                line = address // cache.line_size
                cache_set = cache.set_index(address)
                breakdown.accesses[op.name] += 1

                source = last_touch.get(line)
                if source is None:
                    # Cold miss equation: the reuse vector leaves the
                    # iteration space (no earlier access to the line).
                    breakdown.cold[op.name] += 1
                else:
                    # Replacement equations: count the distinct other
                    # lines mapping to this set inside the reuse interval
                    # (source, seq); >= associativity evicts the line.
                    history = set_history.get(cache_set, [])
                    start = bisect.bisect_right(history, (source, 2 ** 62))
                    conflicting = {
                        other
                        for _, other in history[start:]
                        if other != line
                    }
                    if len(conflicting) >= assoc:
                        breakdown.replacement[op.name] += 1

                last_touch[line] = seq
                set_history.setdefault(cache_set, []).append((seq, line))
                seq += 1
        return breakdown

    # ------------------------------------------------------------------
    # LocalityAnalyzer protocol
    # ------------------------------------------------------------------
    def miss_count(
        self,
        loop: Loop,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        """Misses of ``ops`` sharing one cache over the evaluated window."""
        return float(self.solve(loop, ops, cache).total_misses)

    def miss_ratio(
        self,
        loop: Loop,
        op: Operation,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        """Miss ratio of ``op`` when co-located with ``ops``."""
        return self.solve(loop, ops, cache).miss_ratio(op.name)
