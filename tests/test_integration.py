"""Cross-module integration tests: the paper's headline claims, end to end.

Cells run through :class:`~repro.harness.grid.ExperimentGrid` /
:class:`~repro.harness.grid.CellSpec` — the engine-pipeline entry the
ROADMAP points new call sites at (the historical
``analysis.compare.run_cell`` shim remains only for backcompat).
"""

import pytest

from repro.cme import SamplingCME
from repro.harness.grid import CellSpec, ExperimentGrid
from repro.machine import BusConfig, four_cluster, two_cluster, unified
from repro.scheduler import BaselineScheduler, RMCAScheduler, SchedulerConfig
from repro.workloads import kernel_by_name, spec_suite


@pytest.fixture(scope="module")
def locality():
    return SamplingCME(max_points=512)


@pytest.fixture(scope="module")
def grid(locality):
    # In-memory cell cache only: cells shared between tests (the same
    # kernel × machine × threshold shows up in several claims) compute
    # once for the module.
    return ExperimentGrid(locality=locality)


def run_cell(grid, kernel, machine, scheduler, threshold):
    return grid.run_one(CellSpec.of(kernel, machine, scheduler, threshold))


class TestThresholdTradeoff:
    """Lower threshold -> compute grows, stall shrinks (Section 5.2)."""

    @pytest.mark.parametrize("name", ["tomcatv", "hydro2d", "mgrid"])
    def test_stall_decreases_with_threshold(self, name, grid):
        kernel = kernel_by_name(name)
        machine = unified(memory_bus=BusConfig(count=None, latency=1))
        stalls = []
        computes = []
        for threshold in (1.0, 0.25, 0.0):
            result = run_cell(grid, kernel, machine, "baseline", threshold)
            stalls.append(result.stall_cycles)
            computes.append(result.compute_cycles)
        assert stalls[0] >= stalls[1] >= stalls[2]
        assert computes[-1] >= computes[0]

    def test_threshold_zero_stall_near_zero_clustered(self, grid):
        """With unbounded buses and threshold 0.00, the multiVLIWprocessor
        stall time is almost zero (the Figure 5 observation)."""
        machine = two_cluster(
            register_bus=BusConfig(count=None, latency=1),
            memory_bus=BusConfig(count=None, latency=1),
        )
        for name in ("tomcatv", "swim", "hydro2d", "mgrid", "applu", "apsi"):
            kernel = kernel_by_name(name)
            result = run_cell(grid, kernel, machine, "rmca", 0.0)
            assert result.stall_cycles <= 0.05 * result.total_cycles, name


class TestRmcaVsBaseline:
    def test_rmca_wins_on_average_realistic_buses(self, grid):
        """Figure 6's headline: RMCA < Baseline with limited buses."""
        machine = four_cluster()  # 1 memory bus @ 1 cycle
        ratio_sum = 0.0
        kernels = spec_suite(["tomcatv", "su2cor", "hydro2d", "turb3d"])
        for kernel in kernels:
            base = run_cell(grid, kernel, machine, "baseline", 0.0)
            rmca = run_cell(grid, kernel, machine, "rmca", 0.0)
            ratio_sum += rmca.total_cycles / base.total_cycles
        assert ratio_sum / len(kernels) < 1.0

    def test_gap_larger_with_four_clusters(self, grid):
        """The paper reports ~5% (2 clusters) vs ~20% (4 clusters)."""
        kernels = spec_suite(["tomcatv", "su2cor", "hydro2d", "turb3d"])
        gaps = {}
        for machine in (two_cluster(), four_cluster()):
            base_total = rmca_total = 0
            for kernel in kernels:
                base_total += run_cell(
                    grid, kernel, machine, "baseline", 0.0
                ).total_cycles
                rmca_total += run_cell(
                    grid, kernel, machine, "rmca", 0.0
                ).total_cycles
            gaps[machine.name] = 1.0 - rmca_total / base_total
        assert gaps["4-cluster"] > 0
        # On the full suite the 4-cluster gap exceeds the 2-cluster one
        # (~16% vs ~15%; the paper reports 20% vs 5%); on this 4-kernel
        # subset the ordering can wobble by a few points.
        assert gaps["4-cluster"] >= gaps["2-cluster"] - 0.05


class TestClusteredVsUnified:
    def test_clustered_close_to_unified_at_threshold_zero(self, grid):
        """Figure 5: at threshold 0.00 the clustered machines approach the
        unified one (unbounded buses hide the communication cost)."""
        reference_machine = unified(memory_bus=BusConfig(count=None, latency=1))
        clustered = two_cluster(
            register_bus=BusConfig(count=None, latency=1),
            memory_bus=BusConfig(count=None, latency=1),
        )
        for name in ("tomcatv", "hydro2d"):
            kernel = kernel_by_name(name)
            uni = run_cell(grid, kernel, reference_machine, "baseline", 0.0)
            clu = run_cell(grid, kernel, clustered, "rmca", 0.0)
            assert clu.total_cycles <= 1.25 * uni.total_cycles, name


class TestBusLatencySensitivity:
    def test_slower_register_buses_cost_cycles(self, grid):
        kernel = kernel_by_name("tomcatv")
        totals = []
        for lrb in (1, 4):
            machine = two_cluster(
                register_bus=BusConfig(count=None, latency=lrb),
                memory_bus=BusConfig(count=None, latency=1),
            )
            totals.append(
                run_cell(grid, kernel, machine, "rmca", 0.0).total_cycles
            )
        assert totals[1] >= totals[0]

    def test_slower_memory_buses_cost_stall(self, grid):
        kernel = kernel_by_name("turb3d")  # miss-heavy
        totals = []
        for lmb in (1, 4):
            machine = two_cluster(memory_bus=BusConfig(count=1, latency=lmb))
            totals.append(
                run_cell(grid, kernel, machine, "baseline", 1.0).stall_cycles
            )
        assert totals[1] > totals[0]


class TestSchedulerInvariantsOnSuite:
    @pytest.mark.parametrize("name", ["swim", "mgrid", "apsi"])
    def test_rmca_schedules_validate_on_four_clusters(self, name, locality):
        kernel = kernel_by_name(name)
        schedule = RMCAScheduler(locality, SchedulerConfig(threshold=0.25)).schedule(
            kernel, four_cluster()
        )
        schedule.validate()

    @pytest.mark.parametrize("name", ["swim", "mgrid", "apsi"])
    def test_ii_never_below_mii(self, name, locality):
        kernel = kernel_by_name(name)
        for machine in (unified(), two_cluster(), four_cluster()):
            schedule = BaselineScheduler().schedule(kernel, machine)
            assert schedule.ii >= schedule.mii
