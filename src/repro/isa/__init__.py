"""VLIW instruction encoding (the ISA of Figure 2)."""

from .encoding import (
    ClusterInstruction,
    EncodingError,
    FUField,
    KernelProgram,
    VLIWInstruction,
    encode_kernel,
)

__all__ = [
    "ClusterInstruction",
    "EncodingError",
    "FUField",
    "KernelProgram",
    "VLIWInstruction",
    "encode_kernel",
]
