"""DSP / multimedia kernels.

The paper motivates clustered VLIWs with the embedded/DSP processors of
the day (TI TMS320C6000, Equator MAP1000, Analog TigerSharc — Section 1)
and notes modulo scheduling is effective "for both numeric and multimedia
applications".  This module provides the classic DSP kernel set those
machines were benchmarked with; each is a single innermost affine loop
ready for the schedulers.

Compared with the SPECfp95-style suite these loops are smaller, hotter
(footprints closer to the 8KB cache) and richer in reductions — the
regime where register buses, not memory buses, dominate.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional

from ..ir.builder import Kernel, LoopBuilder

__all__ = [
    "fir",
    "iir",
    "dotprod",
    "vecsum",
    "complex_mac",
    "autocorr",
    "DSP_KERNELS",
    "dsp_suite",
]

_NTAPS = 8
_N = 512


def fir(n: int = _N, taps: int = _NTAPS) -> Kernel:
    """Finite impulse response filter, fully unrolled taps.

    ``Y[i] = sum_t H[t] * X[i+t]`` — the inner tap loop is unrolled (as
    DSP compilers do), giving ``taps`` uniformly generated loads of X
    with maximal group reuse.
    """
    b = LoopBuilder("fir")
    i = b.dim("i", 0, n)
    x = b.array("X", (n + taps,))
    y = b.array("Y", (n,))
    acc = None
    for t in range(taps):
        xt = b.load(x, [b.aff(t, i=1)], name=f"ld_x{t}")
        ht = b.fconst(f"h{t}")
        term = b.fmul(xt, ht, name=f"mul{t}")
        acc = term if acc is None else b.fadd(acc, term, name=f"acc{t}")
    b.store(y, [b.aff(i=1)], acc, name="st_y")
    return b.build()


def iir(n: int = _N) -> Kernel:
    """Biquad IIR section: the output recurrence bounds the II.

    ``Y[i] = b0*X[i] + a1*Y[i-1] + a2*Y[i-2]`` with the feedback carried
    in registers (distances 1 and 2).
    """
    b = LoopBuilder("iir")
    i = b.dim("i", 0, n)
    x = b.array("X", (n,))
    y = b.array("Y", (n,))
    xi = b.load(x, [b.aff(i=1)], name="ld_x")
    ff = b.fmul(xi, b.fconst("b0"), name="feedfwd")
    f1 = b.fmul(b.prev_value("yout", 1), b.fconst("a1"), name="fb1")
    f2 = b.fmul(b.prev_value("yout", 2), b.fconst("a2"), name="fb2")
    yout = b.fadd(ff, b.fadd(f1, f2, name="fbsum"), dest="yout", name="out")
    b.store(y, [b.aff(i=1)], yout, name="st_y")
    return b.build()


def dotprod(n: int = _N) -> Kernel:
    """Dot product — the canonical reduction loop."""
    b = LoopBuilder("dotprod")
    i = b.dim("i", 0, n)
    x = b.array("X", (n,))
    y = b.array("Y", (n,))
    xi = b.load(x, [b.aff(i=1)], name="ld_x")
    yi = b.load(y, [b.aff(i=1)], name="ld_y")
    prod = b.fmul(xi, yi, name="mul")
    b.fadd(b.prev_value("acc", 1), prod, dest="acc", name="accum")
    return b.build()


def vecsum(n: int = _N) -> Kernel:
    """Element-wise vector sum — pure streaming, no recurrence."""
    b = LoopBuilder("vecsum")
    i = b.dim("i", 0, n)
    x = b.array("X", (n,))
    y = b.array("Y", (n,))
    z = b.array("Z", (n,))
    xi = b.load(x, [b.aff(i=1)], name="ld_x")
    yi = b.load(y, [b.aff(i=1)], name="ld_y")
    b.store(z, [b.aff(i=1)], b.fadd(xi, yi, name="add"), name="st_z")
    return b.build()


def complex_mac(n: int = _N // 2) -> Kernel:
    """Complex multiply-accumulate over interleaved re/im vectors."""
    b = LoopBuilder("complex_mac")
    i = b.dim("i", 0, n)
    x = b.array("X", (2 * n,))
    w = b.array("W", (2 * n,))
    xr = b.load(x, [b.aff(i=2)], name="ld_xr")
    xi_ = b.load(x, [b.aff(1, i=2)], name="ld_xi")
    wr = b.load(w, [b.aff(i=2)], name="ld_wr")
    wi = b.load(w, [b.aff(1, i=2)], name="ld_wi")
    rr = b.fmul(xr, wr, name="mul_rr")
    ii = b.fmul(xi_, wi, name="mul_ii")
    ri = b.fmul(xr, wi, name="mul_ri")
    ir = b.fmul(xi_, wr, name="mul_ir")
    real = b.fsub(rr, ii, name="real")
    imag = b.fadd(ri, ir, name="imag")
    b.fadd(b.prev_value("acc_re", 1), real, dest="acc_re", name="accum_re")
    b.fadd(b.prev_value("acc_im", 1), imag, dest="acc_im", name="accum_im")
    return b.build()


def autocorr(n: int = _N, lag: int = 16) -> Kernel:
    """Autocorrelation at a fixed lag: two reads of one array.

    ``R += X[i] * X[i+lag]`` — uniformly generated pair ``lag`` elements
    apart; for lags beyond a cache line the pair has no group reuse and
    streams twice through the cache.
    """
    b = LoopBuilder("autocorr")
    i = b.dim("i", 0, n)
    x = b.array("X", (n + lag,))
    x0 = b.load(x, [b.aff(i=1)], name="ld_x0")
    xl = b.load(x, [b.aff(lag, i=1)], name="ld_xl")
    prod = b.fmul(x0, xl, name="mul")
    b.fadd(b.prev_value("acc", 1), prod, dest="acc", name="accum")
    return b.build()


DSP_KERNELS: Mapping[str, Callable[[], Kernel]] = {
    "fir": fir,
    "iir": iir,
    "dotprod": dotprod,
    "vecsum": vecsum,
    "complex_mac": complex_mac,
    "autocorr": autocorr,
}


def dsp_suite(names: Optional[List[str]] = None) -> List[Kernel]:
    """Instantiate the DSP suite (or a named subset, in registry order)."""
    selected = list(DSP_KERNELS) if names is None else names
    unknown = [n for n in selected if n not in DSP_KERNELS]
    if unknown:
        raise KeyError(f"unknown kernels {unknown}; known: {list(DSP_KERNELS)}")
    return [DSP_KERNELS[name]() for name in selected]
