"""Tests for the SPECfp95-style kernel suite."""

import pytest

from repro.cme.reuse import analyze_reuse
from repro.machine import four_cluster, two_cluster, unified
from repro.scheduler import BaselineScheduler
from repro.scheduler.mii import rec_mii
from repro.workloads import SPEC_KERNELS, kernel_by_name, spec_suite, suite_stats


class TestSuiteRegistry:
    def test_eight_kernels_in_paper_order(self):
        assert list(SPEC_KERNELS) == [
            "tomcatv", "swim", "su2cor", "hydro2d",
            "mgrid", "applu", "turb3d", "apsi",
        ]

    def test_spec_suite_instantiates_all(self):
        kernels = spec_suite()
        assert [k.name for k in kernels] == list(SPEC_KERNELS)

    def test_subset_selection(self):
        kernels = spec_suite(["swim", "applu"])
        assert [k.name for k in kernels] == ["swim", "applu"]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError, match="unknown kernels"):
            spec_suite(["gcc"])
        with pytest.raises(KeyError, match="unknown kernel"):
            kernel_by_name("gcc")

    def test_kernel_by_name(self):
        assert kernel_by_name("mgrid").name == "mgrid"

    def test_suite_stats_structure(self):
        stats = suite_stats()
        assert set(stats) == set(SPEC_KERNELS)
        for record in stats.values():
            assert record["memory_operations"] >= 1
            assert record["niter"] > 4  # the paper's selection criterion


class TestKernelStructure:
    @pytest.mark.parametrize("name", list(SPEC_KERNELS))
    def test_every_memory_op_has_a_ref(self, name):
        kernel = kernel_by_name(name)
        for op in kernel.loop.memory_operations:
            ref = kernel.loop.ref_of(op)
            assert ref.is_store == op.is_store

    @pytest.mark.parametrize("name", list(SPEC_KERNELS))
    def test_refs_affine_in_loop_variables(self, name):
        kernel = kernel_by_name(name)
        dim_vars = {d.var for d in kernel.loop.dims}
        for ref in kernel.loop.refs:
            assert set(ref.variables) <= dim_vars

    @pytest.mark.parametrize("name", list(SPEC_KERNELS))
    def test_addresses_in_bounds(self, name):
        kernel = kernel_by_name(name)
        loop = kernel.loop
        for point in loop.iteration_points(limit=64):
            for ref in loop.refs:
                element = ref.element(point)
                for index, extent in zip(element, ref.array.shape):
                    assert 0 <= index < extent, (
                        f"{name}: {ref} out of bounds at {point}"
                    )

    def test_recurrence_kernels_have_recmii_above_one(self):
        for name in ("applu", "apsi", "su2cor"):
            kernel = kernel_by_name(name)
            assert kernel.ddg.has_recurrences(), name
        assert rec_mii(kernel_by_name("applu").ddg, unified()) > 1

    def test_stencils_have_group_reuse(self):
        for name in ("tomcatv", "swim", "hydro2d", "mgrid"):
            kernel = kernel_by_name(name)
            infos = analyze_reuse(kernel.loop.refs, kernel.loop, 32)
            assert any(info.group_leaders for info in infos), name

    def test_turb3d_streams_conflict_in_direct_mapped_cache(self):
        """The RE/IM butterfly streams alias a 2KB direct-mapped image."""
        kernel = kernel_by_name("turb3d")
        loop = kernel.loop
        cache = four_cluster().cluster(0).cache
        point = next(loop.iteration_points(limit=1))
        re_lo = loop.ref_of(loop.operation("ld_rlo")).address(point)
        im_lo = loop.ref_of(loop.operation("ld_ilo")).address(point)
        assert cache.set_index(re_lo) == cache.set_index(im_lo)


class TestSchedulability:
    @pytest.mark.parametrize("name", list(SPEC_KERNELS))
    def test_schedulable_on_all_presets(self, name):
        kernel = kernel_by_name(name)
        for machine in (unified(), two_cluster(), four_cluster()):
            schedule = BaselineScheduler().schedule(kernel, machine)
            schedule.validate()
