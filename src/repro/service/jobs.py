"""Job lifecycle: the persistent grid, the worker thread, the events.

:class:`JobManager` is the service's heart and the whole point of
``repro serve``: **one warm process owns the experiment stack across
jobs**.  Grids — one per locality-analyzer configuration, since a grid's
cache keys embed the analyzer fingerprint — live for the manager's
lifetime, so the trace store, the warm-state store and the per-stage
result store accumulate across every job.  The second submission of a
scenario (or the first submission of a neighbouring one) adopts
analyze/schedule/simulate products instead of recomputing them the way a
fresh CLI process would, and each job's telemetry reports exactly what
the stores served it.

The grids deliberately run ``cell_cache=False``: whole-cell memoization
would answer a repeated job from the outermost cache without touching
the pipeline, which is correct but tells the operator nothing.  With the
cell layer off, every job's cells execute through the pipeline and the
per-job ``store_hits`` / ``sim_warm_hits`` deltas show the reuse — the
stage stores make the repeat nearly as cheap as the cell cache would.

Execution model: jobs run on a **single worker thread**
(``ThreadPoolExecutor(max_workers=1)``), submitted from the event loop
with ``loop.run_in_executor``.  Submission is thread-safe and concurrent;
execution is serialized — the paper's cells are CPU-bound, so two jobs
interleaving on one process would only trade latency for confusion, and
the single writer keeps per-job telemetry deltas exact.  Parallelism
*within* a job is the grid's own ``n_jobs`` process fan-out.

Progress flows through the existing
:data:`~repro.harness.grid.ProgressCallback` hook: each running job
installs its per-cell callback on the grid, events append to the job's
list under a condition variable, and the server's NDJSON handler drains
them by cursor (:meth:`Job.events_since`).
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..cme.locality import locality_fingerprint
from ..harness.grid import CellSpec, ExperimentGrid
from ..harness.io import figure_payload
from ..harness.scenarios import (
    ScenarioOutcome,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)
from ..simulator import validate_sim_engine
from ..steady import validate_steady_mode
from .backend import MemoryBackend, ResultBackend
from .export import outcome_records

__all__ = ["JOB_STATES", "Job", "JobManager"]

#: A job's lifecycle, in order.  ``done`` and ``failed`` are terminal.
JOB_STATES = ("queued", "running", "done", "failed")


class Job:
    """One submitted scenario run and its observable state.

    Everything a client can see lives here: the (resolved) spec, the
    run overrides, the state machine, the monotonically growing event
    list, and — once terminal — the result payload, flat export records
    and per-job store telemetry.  Mutation happens only on the manager's
    worker thread; reads may come from any thread, so state transitions
    and event appends happen under :attr:`condition`.
    """

    def __init__(
        self,
        job_id: str,
        sequence: int,
        spec: ScenarioSpec,
        overrides: Dict[str, object],
    ):
        self.id = job_id
        self.sequence = sequence
        self.spec = spec
        self.overrides = overrides
        self.state = "queued"
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result: Optional[Dict[str, object]] = None
        self.export_records: Optional[List[Dict[str, object]]] = None
        self.telemetry: Optional[Dict[str, object]] = None
        self.condition = threading.Condition()
        self.events: List[Dict[str, object]] = []
        self._emit({"type": "state", "state": "queued"})

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _emit(self, event: Dict[str, object]) -> None:
        with self.condition:
            event = dict(event)
            event["seq"] = len(self.events)
            event["job"] = self.id
            self.events.append(event)
            self.condition.notify_all()

    def _transition(self, state: str, **extra: object) -> None:
        with self.condition:
            self.state = state
        self._emit({"type": "state", "state": state, **extra})

    @property
    def is_terminal(self) -> bool:
        return self.state in ("done", "failed")

    def events_since(
        self, cursor: int
    ) -> Tuple[List[Dict[str, object]], int, bool]:
        """Events past ``cursor`` plus the new cursor and terminality.

        The terminal flag is read *after* the slice under the same lock,
        so a consumer that sees ``finished=True`` with no new events has
        provably drained the stream.
        """
        with self.condition:
            fresh = self.events[cursor:]
            return fresh, len(self.events), self.is_terminal

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.condition:
            while not self.is_terminal:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self.condition.wait(remaining)
            return True

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """The job summary ``GET /jobs`` and ``GET /jobs/<id>`` serve."""
        with self.condition:
            return {
                "id": self.id,
                "sequence": self.sequence,
                "scenario": self.spec.name,
                "overrides": dict(self.overrides),
                "state": self.state,
                "error": self.error,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "n_events": len(self.events),
            }

    def record(self) -> Dict[str, object]:
        """The full JSON record the :class:`ResultBackend` persists."""
        record = self.describe()
        record["spec"] = self.spec.to_dict()
        record["result"] = self.result
        record["export_records"] = self.export_records
        record["telemetry"] = self.telemetry
        return record


def _progress_event(
    done: int, total: int, spec: CellSpec, source: str
) -> Dict[str, object]:
    return {
        "type": "cell",
        "done": done,
        "total": total,
        "kernel": spec.kernel,
        "machine": spec.machine_name,
        "scheduler": spec.scheduler,
        "threshold": spec.threshold,
        "source": source,
    }


def _result_payload(outcome: ScenarioOutcome) -> Dict[str, object]:
    """The JSON result body — bit-identical to what the in-process APIs
    produce (``RunResult.canonical()`` rows; the shared figure payload)."""
    if outcome.figure is not None:
        return {"kind": "figure", "figure": figure_payload(outcome.figure)}
    return {
        "kind": "grid",
        "rows": [
            {
                "group": label,
                "threshold": threshold,
                "kernel": kernel,
                "result": result.canonical(),
            }
            for label, threshold, kernel, result in outcome.iter_rows()
        ],
    }


#: The keys ``POST /jobs`` accepts.
_SUBMIT_KEYS = frozenset({"scenario", "spec", "steady", "sim"})


class JobManager:
    """Owns the persistent grids and runs submitted jobs against them."""

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        backend: Optional[ResultBackend] = None,
        n_jobs: int = 1,
        exact: bool = False,
        plan: bool = True,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.backend = backend if backend is not None else MemoryBackend()
        self.n_jobs = n_jobs
        self.exact = exact
        self.plan = plan
        self.started = time.time()
        # Grids keyed by locality fingerprint: a grid's caches embed the
        # analyzer configuration, so scenarios declaring different
        # analyzers get different (equally persistent) grids.
        self._grids: Dict[str, ExperimentGrid] = {}
        self._jobs: Dict[str, Job] = {}
        self._sequence = 0
        self._lock = threading.RLock()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-job"
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def parse_payload(
        self, payload: object
    ) -> Tuple[ScenarioSpec, Dict[str, object]]:
        """Validate a ``POST /jobs`` body into (spec, overrides).

        Every malformed shape raises ``ValueError`` naming the offending
        key (the spec itself validates through
        :meth:`ScenarioSpec.from_dict`), so the server can answer 400
        with a message that tells the client what to fix.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"job submission must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        unknown = sorted(str(key) for key in payload if key not in _SUBMIT_KEYS)
        if unknown:
            raise ValueError(
                f"unknown key(s) {', '.join(map(repr, unknown))} in job "
                f"submission; allowed: {sorted(_SUBMIT_KEYS)}"
            )
        name = payload.get("scenario")
        inline = payload.get("spec")
        if (name is None) == (inline is None):
            raise ValueError(
                "job submission needs exactly one of 'scenario' "
                "(a registry name) or 'spec' (an inline scenario spec)"
            )
        if name is not None:
            if not isinstance(name, str):
                raise ValueError(
                    f"key 'scenario' in job submission must be a string, "
                    f"got {type(name).__name__}"
                )
            try:
                spec = get_scenario(name)
            except KeyError as exc:
                raise ValueError(str(exc).strip('"')) from None
        else:
            spec = ScenarioSpec.from_dict(inline)
        overrides: Dict[str, object] = {}
        for key, validate in (
            ("steady", validate_steady_mode),
            ("sim", validate_sim_engine),
        ):
            value = payload.get(key)
            if value is None:
                continue
            if not isinstance(value, str):
                raise ValueError(
                    f"key {key!r} in job submission must be a string, "
                    f"got {type(value).__name__}"
                )
            try:
                overrides[key] = validate(value)
            except (KeyError, ValueError) as exc:
                raise ValueError(
                    f"key {key!r} in job submission: {exc}"
                ) from None
        return spec, overrides

    def submit_payload(self, payload: object) -> Job:
        """Validate and enqueue one job (the ``POST /jobs`` entry)."""
        spec, overrides = self.parse_payload(payload)
        return self.submit(spec, overrides)

    def submit(
        self, spec: ScenarioSpec, overrides: Optional[Dict[str, object]] = None
    ) -> Job:
        overrides = dict(overrides or {})
        with self._lock:
            self._sequence += 1
            job = Job(
                job_id=uuid.uuid4().hex[:12],
                sequence=self._sequence,
                spec=spec,
                overrides=overrides,
            )
            self._jobs[job.id] = job
        self.backend.save(job.record())
        self._executor.submit(self._run, job)
        return job

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        """Every job, in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.sequence)

    # ------------------------------------------------------------------
    # The persistent grids
    # ------------------------------------------------------------------
    def grid_for(self, spec: ScenarioSpec) -> ExperimentGrid:
        """The long-lived grid matching the scenario's analyzer config."""
        locality = spec.locality.build()
        fingerprint = locality_fingerprint(locality)
        with self._lock:
            grid = self._grids.get(fingerprint)
            if grid is None:
                grid = ExperimentGrid(
                    locality=locality,
                    n_jobs=self.n_jobs,
                    cache=True,
                    cache_dir=self.cache_dir,
                    exact=self.exact,
                    # The service's defining trade: no whole-cell
                    # memoization, full trace/warm/stage reuse — see the
                    # module docstring.
                    cell_cache=False,
                    plan=self.plan,
                )
                self._grids[fingerprint] = grid
            return grid

    @staticmethod
    def _store_snapshot(grid: ExperimentGrid) -> Dict[str, object]:
        stages = (
            grid.stage_store.telemetry()
            if grid.stage_store is not None
            else {}
        )
        warm = grid.warm_store
        return {
            "stages": stages,
            "warm": {
                "hits": warm.hits if warm else 0,
                "misses": warm.misses if warm else 0,
                "stores": warm.stores if warm else 0,
            },
            "grid": {
                "requested": grid.stats.requested,
                "computed": grid.stats.computed,
                "deduplicated": grid.stats.deduplicated,
            },
            "plan": dict(grid.stats.plan),
        }

    @staticmethod
    def _telemetry_delta(
        before: Dict[str, object], after: Dict[str, object]
    ) -> Dict[str, object]:
        """Per-job store activity: ``after - before`` on every counter."""
        stages = {
            stage: {
                name: counters[name] - before["stages"].get(stage, {}).get(name, 0)
                for name in ("hits", "misses", "stores")
            }
            for stage, counters in after["stages"].items()
        }
        warm = {
            name: after["warm"][name] - before["warm"][name]
            for name in ("hits", "misses", "stores")
        }
        grid = {
            name: after["grid"][name] - before["grid"][name]
            for name in after["grid"]
        }
        plan = {
            key: (
                value  # high-water mark, not additive
                if key.endswith("_max")
                else value - before["plan"].get(key, 0)
            )
            for key, value in after["plan"].items()
        }
        # Planned = unique tasks the planner identified up front;
        # executed = the subset that actually ran (store misses).
        plan["planned"] = (
            plan.get("analyze_tasks", 0)
            + plan.get("schedule_unique", 0)
            + plan.get("simulate_unique", 0)
        )
        plan["executed"] = (
            plan.get("analyze_tasks", 0)
            + plan.get("schedule_tasks", 0)
            + plan.get("simulate_tasks", 0)
        )
        return {
            "stages": stages,
            "store_hits": sum(c["hits"] for c in stages.values()),
            "sim_warm_hits": warm["hits"],
            "sim_warm_misses": warm["misses"],
            "sim_warm_stores": warm["stores"],
            "grid": grid,
            "plan": plan,
        }

    # ------------------------------------------------------------------
    # Execution (worker thread)
    # ------------------------------------------------------------------
    def _run(self, job: Job) -> None:
        with job.condition:
            job.started = time.time()
        job._transition("running")
        try:
            grid = self.grid_for(job.spec)
            before = self._store_snapshot(grid)
            # Safe single-writer mutation: jobs execute one at a time,
            # so the grid's progress hook is this job's for the run.
            grid.progress = lambda done, total, spec, source: job._emit(
                _progress_event(done, total, spec, source)
            )
            try:
                outcome = run_scenario(
                    job.spec,
                    grid=grid,
                    steady=job.overrides.get("steady"),
                    sim=job.overrides.get("sim"),
                )
            finally:
                grid.progress = None
            telemetry = self._telemetry_delta(
                before, self._store_snapshot(grid)
            )
            with job.condition:
                job.result = _result_payload(outcome)
                job.export_records = outcome_records(outcome)
                job.telemetry = telemetry
                job.finished = time.time()
            job._transition("done", telemetry=telemetry)
        except Exception as exc:
            with job.condition:
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished = time.time()
            job._transition("failed", error=job.error)
        self.backend.save(job.record())

    # ------------------------------------------------------------------
    # Service-wide stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """What ``GET /stats`` serves: jobs, grids, store telemetry."""
        with self._lock:
            jobs = list(self._jobs.values())
            grids = dict(self._grids)
        states = {state: 0 for state in JOB_STATES}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "started": self.started,
            "uptime": time.time() - self.started,
            "scenarios": len(scenario_names()),
            "jobs": {"total": len(jobs), **states},
            "grids": {
                fingerprint: {
                    "requested": grid.stats.requested,
                    "computed": grid.stats.computed,
                    "deduplicated": grid.stats.deduplicated,
                    "stage_seconds": dict(grid.stats.stage_seconds),
                    "plan": dict(grid.stats.plan),
                    "stages": (
                        grid.stage_store.telemetry()
                        if grid.stage_store is not None
                        else {}
                    ),
                    "warm": {
                        "hits": grid.warm_store.hits,
                        "misses": grid.warm_store.misses,
                        "stores": grid.warm_store.stores,
                    }
                    if grid.warm_store is not None
                    else {},
                }
                for fingerprint, grid in grids.items()
            },
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for the queue."""
        self._executor.shutdown(wait=wait)
