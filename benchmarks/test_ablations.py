"""Ablations of design choices beyond the paper's figures.

Three studies quantify the design decisions DESIGN.md calls out:

* **CME backend** — RMCA driven by the sampled solver vs the closed-form
  analytic model: do the cheap equations reach the same schedules?
* **Node ordering** — the SMS ordering of Section 4.3 vs plain program
  order: how much II does the ordering save?
* **Sampling budget** — miss-ratio estimates at different ``max_points``
  budgets: how quickly does the estimator converge?
"""

import pytest

from repro.cme import SamplingCME
from repro.harness.report import format_table
from repro.harness.scenarios import ABLATION_KERNELS, run_scenario
from repro.machine import four_cluster, two_cluster
from repro.scheduler import BaselineScheduler, SchedulerConfig
from repro.workloads import spec_suite

from conftest import save_and_print

KERNELS = ABLATION_KERNELS


def test_cme_backend_ablation(benchmark, results_dir, grid):
    """RMCA driven by all three locality backends: the sampled functional
    simulation (the paper's practical solver), the exact per-access miss
    equations, and the closed-form analytic model.

    One registered scenario per backend; the sampling one shares the
    session grid (same analyzer), the others expand on their own grids.
    """

    def run():
        sampled = run_scenario("ablation-cme-sampling", grid=grid)
        exact = run_scenario("ablation-cme-equations")
        closed = run_scenario("ablation-cme-analytic")
        rows = []
        for kernel in sampled.kernels:
            cells = [
                outcome.result_for(label, 0.0, kernel.name)
                for outcome, label in (
                    (sampled, "sampling"),
                    (exact, "equations"),
                    (closed, "analytic"),
                )
            ]
            rows.append(
                (
                    kernel.name,
                    cells[0].total_cycles,
                    cells[1].total_cycles,
                    cells[2].total_cycles,
                    cells[2].total_cycles / cells[0].total_cycles,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["kernel", "sampled CME", "equation CME", "analytic CME",
         "analytic/sampled"],
        rows,
    )
    save_and_print(results_dir, "ablation_cme_backend", table)
    # The equation backend is exact w.r.t. the sampled one (same window,
    # LRU-exact interference condition) so schedules must match.
    for row in rows:
        assert row[2] == row[1], f"{row[0]}: equations diverge from sampling"
    mean_ratio = sum(row[4] for row in rows) / len(rows)
    # The analytic model is rougher but must stay in the same regime.
    assert 0.7 <= mean_ratio <= 1.4, f"backends diverge: {mean_ratio:.2f}"


def test_ordering_ablation(benchmark, results_dir):
    """SMS ordering vs program order: II and schedule quality."""

    def run():
        rows = []
        for kernel in spec_suite(list(KERNELS)):
            sms = BaselineScheduler(
                SchedulerConfig(use_sms_ordering=True)
            ).schedule(kernel, two_cluster())
            prog = BaselineScheduler(
                SchedulerConfig(use_sms_ordering=False)
            ).schedule(kernel, two_cluster())
            sms.validate()
            prog.validate()
            rows.append(
                (kernel.name, sms.mii, sms.ii, prog.ii,
                 sms.n_communications, prog.n_communications)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["kernel", "MII", "II (SMS)", "II (program order)",
         "comms (SMS)", "comms (program order)"],
        rows,
    )
    save_and_print(results_dir, "ablation_ordering", table)
    sms_ii = sum(row[2] for row in rows)
    prog_ii = sum(row[3] for row in rows)
    # The ordering never loses on aggregate II.
    assert sms_ii <= prog_ii


def test_sampling_budget_ablation(benchmark, results_dir):
    """Miss-ratio estimates converge with the sampling budget."""

    def run():
        kernel = spec_suite(["tomcatv"])[0]
        cache = four_cluster().cluster(0).cache
        ops = kernel.loop.memory_operations
        rows = []
        reference = SamplingCME(max_points=4096)
        ref_ratios = {
            op.name: reference.miss_ratio(kernel.loop, op, ops, cache)
            for op in ops
        }
        for budget in (64, 256, 1024, 4096):
            cme = SamplingCME(max_points=budget)
            error = max(
                abs(
                    cme.miss_ratio(kernel.loop, op, ops, cache)
                    - ref_ratios[op.name]
                )
                for op in ops
            )
            rows.append((budget, round(error, 4)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["max_points", "max abs ratio error"], rows)
    save_and_print(results_dir, "ablation_sampling_budget", table)
    errors = [row[1] for row in rows]
    assert errors[-1] == 0.0           # the reference budget itself
    assert errors[-2] <= errors[0] + 1e-9  # more samples never much worse
    assert errors[1] <= 0.25           # 256 points already close
