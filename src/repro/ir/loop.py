"""Loop-nest representation.

The unit of modulo scheduling is the *innermost* loop of an affine loop
nest.  A :class:`Loop` bundles:

* the loop-nest structure (:class:`LoopDim` per nesting level, innermost
  last),
* the body operations in program order,
* the memory-reference table (one :class:`ArrayReference` per memory op),
* the data-dependence graph (built separately, see :mod:`repro.ir.ddg`).

Iteration counts follow the paper's accounting: ``n_iterations`` (NITER) is
the trip count of the innermost loop per entry, and ``n_times`` (NTIMES) is
how many times the innermost loop is entered (the product of the outer
trip counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .operations import Operation
from .references import ArrayReference

__all__ = ["LoopDim", "Loop"]


@dataclass(frozen=True)
class LoopDim:
    """One loop of the nest: ``for var in range(lower, upper, step)``."""

    var: str
    lower: int
    upper: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step == 0:
            raise ValueError(f"loop {self.var!r} must have non-zero step")

    @property
    def trip_count(self) -> int:
        """Number of iterations executed."""
        span = self.upper - self.lower
        if self.step > 0:
            return max(0, (span + self.step - 1) // self.step)
        return max(0, (-span + (-self.step) - 1) // (-self.step))

    def values(self) -> Iterator[int]:
        """Iterate the induction-variable values."""
        return iter(range(self.lower, self.upper, self.step))


@dataclass
class Loop:
    """An innermost loop plus its enclosing affine nest.

    Parameters
    ----------
    name:
        Identifier used in reports (``"tomcatv_l1"``).
    dims:
        Loop dimensions, outermost first; the innermost dimension is the
        modulo-scheduled one.
    operations:
        Body operations in program order.
    refs:
        Memory-reference table; ``operations[k].ref_index`` indexes here.
    """

    name: str
    dims: Tuple[LoopDim, ...]
    operations: Tuple[Operation, ...]
    refs: Tuple[ArrayReference, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError(f"loop {self.name!r} needs at least one dim")
        names = [op.name for op in self.operations]
        if len(set(names)) != len(names):
            raise ValueError(f"loop {self.name!r} has duplicate op names")
        for op in self.operations:
            if op.ref_index is not None and not (
                0 <= op.ref_index < len(self.refs)
            ):
                raise ValueError(
                    f"op {op.name!r} ref_index {op.ref_index} out of range"
                )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def inner(self) -> LoopDim:
        """The innermost (modulo-scheduled) dimension."""
        return self.dims[-1]

    @property
    def outer_dims(self) -> Tuple[LoopDim, ...]:
        """Enclosing dimensions, outermost first."""
        return self.dims[:-1]

    @property
    def n_iterations(self) -> int:
        """NITER: trip count of the innermost loop."""
        return self.inner.trip_count

    @property
    def n_times(self) -> int:
        """NTIMES: how many times the innermost loop is entered."""
        total = 1
        for dim in self.outer_dims:
            total *= dim.trip_count
        return total

    @property
    def memory_operations(self) -> Tuple[Operation, ...]:
        """Loads and stores, in program order."""
        return tuple(op for op in self.operations if op.is_memory)

    def operation(self, name: str) -> Operation:
        """Look an operation up by name (O(1); schedulers call this on
        every placement).  The index is built lazily and cached on the
        instance — sound because the operation tuple is fixed at
        construction."""
        index = self.__dict__.get("_op_index")
        if index is None:
            index = {op.name: op for op in self.operations}
            self.__dict__["_op_index"] = index
        op = index.get(name)
        if op is None:
            raise KeyError(
                f"no operation named {name!r} in loop {self.name!r}"
            )
        return op

    def ref_of(self, op: Operation) -> ArrayReference:
        """The memory reference accessed by a memory operation."""
        if op.ref_index is None:
            raise ValueError(f"{op.name!r} is not a memory operation")
        return self.refs[op.ref_index]

    # ------------------------------------------------------------------
    # Iteration-space helpers (used by CME estimators and the simulator)
    # ------------------------------------------------------------------
    def iteration_points(
        self, limit: Optional[int] = None
    ) -> Iterator[Dict[str, int]]:
        """Yield iteration points of the whole nest in execution order.

        ``limit`` truncates the stream (useful for sampling estimators).
        """
        count = 0
        for point in self._walk(0, {}):
            yield point
            count += 1
            if limit is not None and count >= limit:
                return

    def _walk(
        self, depth: int, partial: Dict[str, int]
    ) -> Iterator[Dict[str, int]]:
        if depth == len(self.dims):
            yield dict(partial)
            return
        dim = self.dims[depth]
        for value in dim.values():
            partial[dim.var] = value
            yield from self._walk(depth + 1, partial)
        partial.pop(dim.var, None)

    def stats(self) -> Dict[str, int]:
        """Basic size statistics for reports."""
        return {
            "operations": len(self.operations),
            "memory_operations": len(self.memory_operations),
            "dims": len(self.dims),
            "niter": self.n_iterations,
            "ntimes": self.n_times,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = ", ".join(
            f"{d.var}[{d.lower}:{d.upper}:{d.step}]" for d in self.dims
        )
        return f"Loop({self.name}: {dims}, {len(self.operations)} ops)"
