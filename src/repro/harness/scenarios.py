"""Declarative scenario registry: every sweep as a named, serializable spec.

A *scenario* is a JSON-serializable description of one experiment —
machine preset (with optional bus overrides), scheduler, thresholds,
workload selection, locality-analyzer configuration and simulation
overrides — that expands to a :class:`~repro.harness.grid.CellSpec` grid
and runs on a shared :class:`~repro.harness.grid.ExperimentGrid`.  The
registry gives every sweep in the repository a name: the paper figures,
the DSP extension and the CME-backend ablations are all entries, runnable
via ``python -m repro.cli run <scenario>`` and reusable from benchmarks.

Two kinds of scenario exist:

* **grid** scenarios enumerate ``groups × thresholds × kernels`` cells
  explicitly; :func:`run_scenario` returns the per-cell
  :class:`RunResult` list in enumeration order.
* **figure** scenarios delegate to the figure generators
  (:func:`~repro.harness.sweep.figure5` / ``figure6``), which do their
  own cell enumeration plus the paper's Unified normalization;
  :func:`run_scenario` returns the :class:`FigureData`.

Adding a scenario is one :func:`register_scenario` call (or an entry in
``_BUILTIN_SCENARIOS`` below); specs round-trip through
:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict` so they can
live in JSON files or CLI pipelines.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..cme import AnalyticCME, EquationCME, IncrementalCME
from ..cme.locality import LocalityAnalyzer, locality_fingerprint
from ..engine.result import RunResult
from ..engine.stages import SCHEDULER_NAMES
from ..ir.builder import Kernel
from ..machine.config import BusConfig, MachineConfig
from ..machine.presets import ALL_PRESETS, preset
from ..simulator import DEFAULT_SIM_ENGINE, validate_sim_engine
from ..steady import STEADY_MODES, validate_steady_mode
from ..workloads.dsp import DSP_KERNELS, dsp_suite
from ..workloads.suite import (
    SPEC_KERNELS,
    STREAMING_LONG_KERNELS,
    spec_suite,
    streaming_long_suite,
)
from .grid import CellSpec, ExperimentGrid, ProgressCallback
from .sweep import FigureData, figure5, figure6

__all__ = [
    "MachineSpec",
    "LocalitySpec",
    "GroupSpec",
    "ScenarioSpec",
    "ScenarioOutcome",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "scenario_listing",
    "run_scenario",
]

_SUITES = {
    "spec": (SPEC_KERNELS, spec_suite),
    "dsp": (DSP_KERNELS, dsp_suite),
    "streaming-long": (STREAMING_LONG_KERNELS, streaming_long_suite),
}

_FIGURES = {"figure5": figure5, "figure6": figure6}


def _bus_to_json(bus: Optional[Tuple[Optional[int], int]]):
    return None if bus is None else list(bus)


# ----------------------------------------------------------------------
# from_dict validation helpers
# ----------------------------------------------------------------------
# The specs accept untrusted JSON (the experiment service's POST /jobs
# body goes straight through ``ScenarioSpec.from_dict``), so malformed
# input must fail with a ``ValueError`` that names the offending key —
# never an incidental ``TypeError``/``AttributeError`` from deeper in
# the constructor.


def _expect_object(data: object, context: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise ValueError(
            f"{context} must be a JSON object, got {type(data).__name__}"
        )
    return data


def _reject_unknown_keys(data: Mapping, allowed: frozenset, context: str):
    unknown = sorted(str(key) for key in data if key not in allowed)
    if unknown:
        raise ValueError(
            f"unknown key(s) {', '.join(map(repr, unknown))} in {context}; "
            f"allowed: {sorted(allowed)}"
        )


def _typed(
    data: Mapping,
    key: str,
    types,
    type_name: str,
    context: str,
    required: bool = False,
    default=None,
):
    """Fetch ``data[key]`` with a type check that names the key.

    ``None`` values follow the optional-field convention: absent and
    ``null`` both mean "use the default" unless the field is required.
    ``bool`` is rejected wherever a number is expected — it *is* an
    ``int`` to ``isinstance``, but a spec saying ``"threshold": true``
    is a mistake, not a threshold.
    """
    value = data.get(key)
    if value is None:
        if required:
            raise ValueError(f"{context} is missing required key {key!r}")
        return default
    if not isinstance(value, types) or isinstance(value, bool):
        raise ValueError(
            f"key {key!r} in {context} must be {type_name}, "
            f"got {type(value).__name__}"
        )
    return value


def _typed_list(
    data: Mapping,
    key: str,
    item_types,
    item_name: str,
    context: str,
    default=None,
):
    """Fetch a homogeneous-list field, naming the key on any mismatch."""
    value = data.get(key)
    if value is None:
        return default
    if not isinstance(value, (list, tuple)):
        raise ValueError(
            f"key {key!r} in {context} must be a list of {item_name}, "
            f"got {type(value).__name__}"
        )
    for item in value:
        if not isinstance(item, item_types) or isinstance(item, bool):
            raise ValueError(
                f"key {key!r} in {context} must be a list of {item_name}; "
                f"item {item!r} is a {type(item).__name__}"
            )
    return list(value)


def _bus_from_json(data, key: str = "bus", context: str = "machine spec"):
    if data is None:
        return None
    if (
        not isinstance(data, (list, tuple))
        or len(data) != 2
        or not (data[0] is None or isinstance(data[0], int))
        or not isinstance(data[1], int)
        or isinstance(data[0], bool)
        or isinstance(data[1], bool)
    ):
        raise ValueError(
            f"key {key!r} in {context} must be a [count, latency] pair "
            f"(count may be null for an unbounded pool), got {data!r}"
        )
    return (data[0], data[1])


@dataclass(frozen=True)
class MachineSpec:
    """A machine preset plus optional bus overrides.

    Buses are ``(count, latency)`` pairs; ``count=None`` means the
    unbounded pool of the paper's Section 5.2 study.
    """

    preset: str
    register_bus: Optional[Tuple[Optional[int], int]] = None
    memory_bus: Optional[Tuple[Optional[int], int]] = None

    def __post_init__(self) -> None:
        if self.preset not in ALL_PRESETS:
            raise KeyError(
                f"unknown machine preset {self.preset!r}; "
                f"choose from {sorted(ALL_PRESETS)}"
            )

    def build(self) -> MachineConfig:
        kwargs = {}
        if self.register_bus is not None:
            kwargs["register_bus"] = BusConfig(*self.register_bus)
        if self.memory_bus is not None:
            kwargs["memory_bus"] = BusConfig(*self.memory_bus)
        return preset(self.preset, **kwargs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "preset": self.preset,
            "register_bus": _bus_to_json(self.register_bus),
            "memory_bus": _bus_to_json(self.memory_bus),
        }

    _KEYS = frozenset({"preset", "register_bus", "memory_bus"})

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MachineSpec":
        context = "machine spec"
        data = _expect_object(data, context)
        _reject_unknown_keys(data, cls._KEYS, context)
        return cls(
            preset=_typed(
                data, "preset", str, "a preset name", context, required=True
            ),
            register_bus=_bus_from_json(
                data.get("register_bus"), "register_bus", context
            ),
            memory_bus=_bus_from_json(
                data.get("memory_bus"), "memory_bus", context
            ),
        )


@dataclass(frozen=True)
class LocalitySpec:
    """Which CME backend drives the schedulers, and at what budget.

    ``"sampling"`` builds the incremental engine — it computes the
    sampled estimator bit-identically (and shares its fingerprint), so
    existing scenario specs, cache entries and golden recordings are
    unchanged by the engine swap.
    """

    kind: str = "sampling"
    max_points: Optional[int] = 512

    _BUILDERS = {
        "sampling": lambda points: IncrementalCME(max_points=points),
        "equations": lambda points: EquationCME(max_points=points),
        "analytic": lambda points: AnalyticCME(),
    }

    def __post_init__(self) -> None:
        if self.kind not in self._BUILDERS:
            raise KeyError(
                f"unknown locality kind {self.kind!r}; "
                f"choose from {sorted(self._BUILDERS)}"
            )

    def build(self) -> LocalityAnalyzer:
        return self._BUILDERS[self.kind](self.max_points)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "max_points": self.max_points}

    _KEYS = frozenset({"kind", "max_points"})

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LocalitySpec":
        context = "locality spec"
        data = _expect_object(data, context)
        _reject_unknown_keys(data, cls._KEYS, context)
        return cls(
            kind=_typed(
                data, "kind", str, "an analyzer name", context, required=True
            ),
            max_points=_typed(
                data, "max_points", int, "an integer", context
            ),
        )


@dataclass(frozen=True)
class GroupSpec:
    """One bar group of a grid scenario: a machine and a scheduler.

    ``steady`` overrides the scenario-wide steady-state detector
    selection for this group's cells (``None`` inherits it) — this is
    how one scenario compares detector modes side by side.
    """

    label: str
    machine: MachineSpec
    scheduler: str
    steady: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULER_NAMES:
            raise KeyError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {SCHEDULER_NAMES}"
            )
        if self.steady is not None:
            validate_steady_mode(self.steady)

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "machine": self.machine.to_dict(),
            "scheduler": self.scheduler,
            "steady": self.steady,
        }

    _KEYS = frozenset({"label", "machine", "scheduler", "steady"})

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GroupSpec":
        context = "group spec"
        data = _expect_object(data, context)
        _reject_unknown_keys(data, cls._KEYS, context)
        label = _typed(
            data, "label", str, "a string", context, required=True
        )
        context = f"group spec {label!r}"
        machine = data.get("machine")
        if machine is None:
            raise ValueError(f"{context} is missing required key 'machine'")
        return cls(
            label=label,
            machine=MachineSpec.from_dict(machine),
            scheduler=_typed(
                data, "scheduler", str, "a scheduler name", context,
                required=True,
            ),
            steady=_typed(data, "steady", str, "a steady mode", context),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, serializable experiment description.

    Grid scenarios set ``groups`` (+ ``thresholds``/workload selection);
    figure scenarios set ``figure`` (+ ``figure_args`` forwarded to the
    generator).  ``kernels=None`` selects the whole suite.
    """

    name: str
    description: str
    groups: Tuple[GroupSpec, ...] = ()
    thresholds: Tuple[float, ...] = (1.0,)
    suite: str = "spec"
    kernels: Optional[Tuple[str, ...]] = None
    locality: LocalitySpec = LocalitySpec()
    n_iterations: Optional[int] = None
    n_times: Optional[int] = None
    #: Scenario-wide steady-state detector selection; groups may
    #: override it per bar (see :class:`GroupSpec`).
    steady: str = "auto"
    #: Simulate-engine selection (results are bit-identical across
    #: engines; see :data:`repro.simulator.SIM_ENGINES`).
    sim: str = DEFAULT_SIM_ENGINE
    figure: Optional[str] = None
    figure_args: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        validate_steady_mode(self.steady)
        validate_sim_engine(self.sim)
        if self.suite not in _SUITES:
            raise KeyError(
                f"unknown suite {self.suite!r}; choose from {sorted(_SUITES)}"
            )
        if self.figure is not None and self.figure not in _FIGURES:
            raise KeyError(
                f"unknown figure {self.figure!r}; "
                f"choose from {sorted(_FIGURES)}"
            )
        if self.figure is None and not self.groups:
            raise ValueError(
                f"scenario {self.name!r} needs groups (grid kind) or a "
                f"figure (figure kind)"
            )
        registry, _factory = _SUITES[self.suite]
        unknown = [
            name for name in (self.kernels or ()) if name not in registry
        ]
        if unknown:
            raise KeyError(
                f"scenario {self.name!r} selects unknown {self.suite} "
                f"kernels {unknown}; known: {list(registry)}"
            )

    # ------------------------------------------------------------------
    @property
    def is_figure(self) -> bool:
        return self.figure is not None

    def build_kernels(self) -> List[Kernel]:
        """Instantiate the selected workload kernels, in suite order."""
        registry, factory = _SUITES[self.suite]
        if self.kernels is None:
            return factory()
        return factory(list(self.kernels))

    def expand(
        self, kernels: Optional[Sequence[Kernel]] = None
    ) -> List[CellSpec]:
        """The scenario's cell grid: groups × thresholds × kernels."""
        if self.is_figure:
            raise ValueError(
                f"figure scenario {self.name!r} delegates enumeration to "
                f"{self.figure}; run it via run_scenario()"
            )
        kernels = (
            list(kernels) if kernels is not None else self.build_kernels()
        )
        return [
            CellSpec.of(
                kernel,
                group.machine.build(),
                group.scheduler,
                threshold,
                n_iterations=self.n_iterations,
                n_times=self.n_times,
                steady=(
                    group.steady if group.steady is not None else self.steady
                ),
                sim=self.sim,
            )
            for group in self.groups
            for threshold in self.thresholds
            for kernel in kernels
        ]

    def n_cells(self) -> Optional[int]:
        """Cell count of a grid scenario (``None`` for figure kind)."""
        if self.is_figure:
            return None
        registry, _factory = _SUITES[self.suite]
        n_kernels = (
            len(registry) if self.kernels is None else len(self.kernels)
        )
        return len(self.groups) * len(self.thresholds) * n_kernels

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "groups": [group.to_dict() for group in self.groups],
            "thresholds": list(self.thresholds),
            "suite": self.suite,
            "kernels": None if self.kernels is None else list(self.kernels),
            "locality": self.locality.to_dict(),
            "n_iterations": self.n_iterations,
            "n_times": self.n_times,
            "steady": self.steady,
            "sim": self.sim,
            "figure": self.figure,
            "figure_args": {key: value for key, value in self.figure_args},
        }

    _KEYS = frozenset(
        {
            "name",
            "description",
            "groups",
            "thresholds",
            "suite",
            "kernels",
            "locality",
            "n_iterations",
            "n_times",
            "steady",
            "sim",
            "figure",
            "figure_args",
        }
    )

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        def _tupled(value):
            return tuple(value) if isinstance(value, list) else value

        context = "scenario spec"
        data = _expect_object(data, context)
        _reject_unknown_keys(data, cls._KEYS, context)
        name = _typed(data, "name", str, "a string", context, required=True)
        context = f"scenario spec {name!r}"
        groups = data.get("groups")
        if groups is None:
            groups = []
        elif not isinstance(groups, (list, tuple)):
            raise ValueError(
                f"key 'groups' in {context} must be a list of group "
                f"specs, got {type(groups).__name__}"
            )
        figure_args = data.get("figure_args")
        if figure_args is None:
            figure_args = {}
        else:
            figure_args = _expect_object(
                figure_args, f"key 'figure_args' in {context}"
            )
        locality = data.get("locality")
        return cls(
            name=name,
            description=_typed(
                data, "description", str, "a string", context, required=True
            ),
            groups=tuple(GroupSpec.from_dict(group) for group in groups),
            thresholds=tuple(
                _typed_list(
                    data, "thresholds", (int, float), "numbers", context,
                    default=[1.0],
                )
            ),
            suite=_typed(
                data, "suite", str, "a suite name", context, default="spec"
            ),
            kernels=(
                None
                if data.get("kernels") is None
                else tuple(
                    _typed_list(
                        data, "kernels", str, "kernel names", context
                    )
                )
            ),
            locality=LocalitySpec.from_dict(
                locality
                if locality is not None
                else {"kind": "sampling", "max_points": 512}
            ),
            n_iterations=_typed(
                data, "n_iterations", int, "an integer", context
            ),
            n_times=_typed(data, "n_times", int, "an integer", context),
            steady=_typed(
                data, "steady", str, "a steady mode", context, default="auto"
            ),
            sim=_typed(
                data, "sim", str, "a simulate engine", context,
                default=DEFAULT_SIM_ENGINE,
            ),
            figure=_typed(data, "figure", str, "a figure name", context),
            figure_args=tuple(
                sorted(
                    (str(key), _tupled(value))
                    for key, value in figure_args.items()
                )
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


@dataclass
class ScenarioOutcome:
    """What running a scenario produced.

    Grid scenarios fill ``results`` (aligned with
    ``scenario.expand()``); figure scenarios fill ``figure``.
    """

    scenario: ScenarioSpec
    grid: ExperimentGrid
    kernels: List[Kernel] = field(default_factory=list)
    results: Optional[List[RunResult]] = None
    figure: Optional[FigureData] = None

    def iter_rows(
        self,
    ) -> Iterator[Tuple[str, float, str, RunResult]]:
        """Yield ``(group label, threshold, kernel name, result)`` in
        enumeration order (grid scenarios only)."""
        if self.results is None:
            raise ValueError(
                f"scenario {self.scenario.name!r} is a figure scenario; "
                f"read .figure instead"
            )
        index = 0
        for group in self.scenario.groups:
            for threshold in self.scenario.thresholds:
                for kernel in self.kernels:
                    yield group.label, threshold, kernel.name, self.results[
                        index
                    ]
                    index += 1

    def result_for(
        self, label: str, threshold: float, kernel: str
    ) -> RunResult:
        """Look one cell result up by its enumeration coordinates."""
        for row_label, row_threshold, row_kernel, result in self.iter_rows():
            if (
                row_label == label
                and row_kernel == kernel
                and abs(row_threshold - threshold) < 1e-12
            ):
                return result
        raise KeyError(
            f"no cell ({label!r}, {threshold}, {kernel!r}) in scenario "
            f"{self.scenario.name!r}"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    scenario: ScenarioSpec, replace: bool = False
) -> ScenarioSpec:
    """Add a scenario to the registry (``replace=True`` to overwrite)."""
    if scenario.name in _REGISTRY and not replace:
        raise KeyError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    return [_REGISTRY[name] for name in scenario_names()]


def scenario_listing() -> List[Dict[str, object]]:
    """Machine-readable registry listing, in name order.

    The single serializer behind both ``repro scenarios --json`` and the
    experiment service's ``GET /scenarios`` endpoint, so the two can
    never drift apart.  Each entry carries the summary columns of the
    human-readable table plus the full round-trippable spec.
    """
    return [
        {
            "name": scenario.name,
            "kind": "figure" if scenario.is_figure else "grid",
            "cells": scenario.n_cells(),
            "description": scenario.description,
            "spec": scenario.to_dict(),
        }
        for scenario in all_scenarios()
    ]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenario(
    scenario: Union[ScenarioSpec, str],
    grid: Optional[ExperimentGrid] = None,
    n_jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
    progress: Optional[ProgressCallback] = None,
    exact: bool = False,
    steady: Optional[str] = None,
    sim: Optional[str] = None,
    warm: bool = True,
    stage_store: bool = True,
    plan: bool = True,
) -> ScenarioOutcome:
    """Execute a scenario (by spec or registry name) on a grid.

    An explicit ``grid`` must run the analyzer configuration the
    scenario declares — silently computing different bars would poison
    its cache — otherwise a grid is built from the scenario's
    :class:`LocalitySpec`.  ``steady`` overrides the scenario's
    scenario-wide detector selection (groups with their own explicit
    ``steady`` keep it — they exist precisely to pin a mode); ``sim``
    overrides the simulate-engine selection the same way.  ``warm``
    and ``stage_store`` control content-addressed warm-state and
    per-stage-result reuse on the grid this call builds (ignored for an
    explicit ``grid``, which owns its stores); ``plan`` controls
    whether that grid executes through the up-front stage-task plan
    (results are bit-identical either way).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if steady is not None:
        scenario = replace(scenario, steady=validate_steady_mode(steady))
    if sim is not None:
        scenario = replace(scenario, sim=validate_sim_engine(sim))
    if grid is None:
        grid = ExperimentGrid(
            locality=scenario.locality.build(),
            n_jobs=n_jobs,
            cache=cache,
            cache_dir=cache_dir,
            progress=progress,
            exact=exact,
            warm=warm,
            stage_store=stage_store,
            plan=plan,
        )
    else:
        wanted = locality_fingerprint(scenario.locality.build())
        actual = locality_fingerprint(grid.locality)
        if wanted != actual:
            raise ValueError(
                f"scenario {scenario.name!r} declares analyzer {wanted!r} "
                f"but the grid runs {actual!r}; pass a matching grid or "
                f"none"
            )
    if scenario.is_figure:
        figure_fn = _FIGURES[scenario.figure]
        kwargs = {key: value for key, value in scenario.figure_args}
        if scenario.kernels is not None:
            kwargs["kernels"] = scenario.build_kernels()
        figure = figure_fn(
            grid=grid, steady=scenario.steady, sim=scenario.sim, **kwargs
        )
        return ScenarioOutcome(scenario=scenario, grid=grid, figure=figure)
    kernels = scenario.build_kernels()
    grid.register(kernels)
    specs = scenario.expand(kernels)
    results = grid.run(specs)
    return ScenarioOutcome(
        scenario=scenario, grid=grid, kernels=kernels, results=results
    )


# ----------------------------------------------------------------------
# Built-in scenarios: every sweep in the repository has a name
# ----------------------------------------------------------------------
#: Kernel subset the CME-backend ablation studies (benchmarks/test_ablations).
ABLATION_KERNELS = ("tomcatv", "su2cor", "hydro2d", "turb3d", "applu")


def _ablation_scenario(kind: str, max_points: Optional[int]) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"ablation-cme-{kind}",
        description=(
            f"RMCA at threshold 0.0 on the 4-cluster machine, driven by "
            f"the {kind} CME backend"
        ),
        groups=(
            GroupSpec(
                label=kind,
                machine=MachineSpec(preset="4-cluster"),
                scheduler="rmca",
            ),
        ),
        thresholds=(0.0,),
        kernels=ABLATION_KERNELS,
        locality=LocalitySpec(kind=kind, max_points=max_points),
    )


#: The paper's single-entry (``NTIMES=1``) streaming kernels — the
#: workloads only the iteration-level steady-state detector can speed up.
STREAMING_KERNELS = ("su2cor", "applu", "turb3d")


def _streaming_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="streaming",
        description=(
            "The NTIMES=1 streaming kernels (su2cor, applu, turb3d) with "
            "RMCA across the clustered machine presets — the "
            "iteration-level steady-state detector's home turf"
        ),
        groups=tuple(
            GroupSpec(
                label=preset_name,
                machine=MachineSpec(preset=preset_name),
                scheduler="rmca",
            )
            for preset_name in ("2-cluster", "4-cluster", "heterogeneous")
        ),
        thresholds=(1.0,),
        kernels=STREAMING_KERNELS,
    )


def _streaming_long_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="streaming-long",
        description=(
            "Long-stream variants of the NTIMES=1 kernels (4x NITER, "
            "matching array extents) with RMCA across the clustered "
            "presets — shows the iteration detector's asymptotic win "
            "and stresses the simulate engines at production scale"
        ),
        groups=tuple(
            GroupSpec(
                label=preset_name,
                machine=MachineSpec(preset=preset_name),
                scheduler="rmca",
            )
            for preset_name in ("2-cluster", "4-cluster", "heterogeneous")
        ),
        thresholds=(1.0,),
        suite="streaming-long",
    )


def _steady_ablation_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig6-steady-ablation",
        description=(
            "Figure-6 cells (2-cluster, NMB=1, LMB=1, threshold 0.25) "
            "once per steady-state detector mode — identical bars, "
            "different wall-clock; the cache key separates the modes"
        ),
        groups=tuple(
            GroupSpec(
                label=f"steady={mode}",
                machine=MachineSpec(preset="2-cluster", memory_bus=(1, 1)),
                scheduler="rmca",
                steady=mode,
            )
            for mode in STEADY_MODES
        ),
        thresholds=(0.25,),
    )


def _bus_design_space_scenario() -> ScenarioSpec:
    """The seeded form of ``examples/bus_design_space.py``: both
    schedulers across the 4-cluster NMB x LMB bus grid on a trimmed
    kernel set — many cells sharing few kernels, so the execution
    planner's cross-cell simulate batching has real work to do."""
    return ScenarioSpec(
        name="bus-design-space-smoke",
        description=(
            "Memory-bus design-space smoke (4-cluster, NMB in {1,2} x "
            "LMB in {1,4}, Baseline vs RMCA): the examples/ bus sweep "
            "as a registered scenario"
        ),
        groups=tuple(
            GroupSpec(
                label=f"NMB={nmb},LMB={lmb} {scheduler}",
                machine=MachineSpec(
                    preset="4-cluster",
                    register_bus=(2, 1),
                    memory_bus=(nmb, lmb),
                ),
                scheduler=scheduler,
            )
            for nmb in (1, 2)
            for lmb in (1, 4)
            for scheduler in ("baseline", "rmca")
        ),
        thresholds=(1.0, 0.0),
        kernels=("tomcatv", "hydro2d", "turb3d"),
    )


_BUILTIN_SCENARIOS = (
    _streaming_scenario(),
    _streaming_long_scenario(),
    _steady_ablation_scenario(),
    _bus_design_space_scenario(),
    ScenarioSpec(
        name="fig5-2cluster",
        description="Figure 5, 2-cluster: unbounded buses, LRB x LMB sweep",
        figure="figure5",
        figure_args=(("n_clusters", 2),),
    ),
    ScenarioSpec(
        name="fig5-4cluster",
        description="Figure 5, 4-cluster: unbounded buses, LRB x LMB sweep",
        figure="figure5",
        figure_args=(("n_clusters", 4),),
    ),
    ScenarioSpec(
        name="fig6-2cluster",
        description="Figure 6, 2-cluster: realistic buses, NMB x LMB sweep",
        figure="figure6",
        figure_args=(("n_clusters", 2),),
    ),
    ScenarioSpec(
        name="fig6-4cluster",
        description="Figure 6, 4-cluster: realistic buses, NMB x LMB sweep",
        figure="figure6",
        figure_args=(("n_clusters", 4),),
    ),
    ScenarioSpec(
        name="fig6-smoke",
        description=(
            "Figure 6 reduced grid (NMB=1, LMB=1): the golden-regression "
            "panel, full suite"
        ),
        figure="figure6",
        figure_args=(
            ("bus_counts", (1,)),
            ("bus_latencies", (1,)),
            ("n_clusters", 2),
        ),
    ),
    ScenarioSpec(
        name="dsp-4cluster",
        description=(
            "DSP/multimedia extension: Baseline vs RMCA at threshold "
            "0.25 on the 4-cluster machine"
        ),
        groups=(
            GroupSpec(
                label="baseline",
                machine=MachineSpec(preset="4-cluster"),
                scheduler="baseline",
            ),
            GroupSpec(
                label="rmca",
                machine=MachineSpec(preset="4-cluster"),
                scheduler="rmca",
            ),
        ),
        thresholds=(0.25,),
        suite="dsp",
    ),
    ScenarioSpec(
        name="unified-reference",
        description=(
            "Unified machine with an unbounded 1-cycle memory bus at "
            "threshold 1.0: the figures' normalization denominator"
        ),
        groups=(
            GroupSpec(
                label="unified",
                machine=MachineSpec(preset="unified", memory_bus=(None, 1)),
                scheduler="baseline",
            ),
        ),
        thresholds=(1.0,),
    ),
    _ablation_scenario("sampling", 512),
    _ablation_scenario("equations", 512),
    _ablation_scenario("analytic", None),
)

for _scenario in _BUILTIN_SCENARIOS:
    register_scenario(_scenario)
