"""Synthetic SPECfp95-style loop kernels.

The paper evaluates eight SPECfp95 programs compiled by ICTINEO
(Section 5.1): *tomcatv, swim, su2cor, hydro2d, mgrid, applu, turb3d* and
*apsi*.  Neither the compiler nor the benchmark inputs are available, so
this module provides one synthetic innermost loop per program, modeled on
the public algorithm at the core of each benchmark.  What matters for the
reproduction is not the exact instruction mix but the *scheduling
structure*: the kernels jointly cover

* group reuse between uniformly generated references (tomcatv, swim,
  hydro2d — the property RMCA exploits),
* spatial-only streaming with unit and non-unit strides (su2cor, turb3d),
* deep loop-carried recurrences that constrain the II (applu, apsi),
* multi-dimensional nests whose footprints exceed the 8KB L1 (mgrid),
* cross-array conflict potential in a direct-mapped cache (turb3d, and
  the dedicated motivating-example kernel in
  :mod:`repro.workloads.motivating`).

Array extents are scaled so that one full experiment (all kernels × all
machine configurations × all thresholds) runs in minutes, while keeping
every footprint at least a few multiples of the 8KB cache so locality
decisions still matter.  All reported metrics are normalized per
iteration, so the scale-down changes absolute cycle counts but not the
relative shapes the paper reports.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..ir.builder import Kernel, LoopBuilder

__all__ = [
    "tomcatv",
    "swim",
    "su2cor",
    "hydro2d",
    "mgrid",
    "applu",
    "turb3d",
    "apsi",
]

#: Default 2-D mesh extent (interior points are N-2 per dimension).
_N2D = 40
#: Default 3-D mesh extent.
_N3D = 12
#: Default 1-D vector length.
_N1D = 1024


def tomcatv(n: int = _N2D) -> Kernel:
    """Mesh-generation stencil (tomcatv's main SOR-like sweep).

    Two coordinate arrays are read at four neighbouring points each; the
    i-1 / i / i+1 columns of the same row are uniformly generated, giving
    the group reuse the RMCA scheduler should co-locate.
    """
    b = LoopBuilder("tomcatv")
    j = b.dim("j", 1, n - 1)
    i = b.dim("i", 1, n - 1)
    x = b.array("X", (n, n))
    y = b.array("Y", (n, n))
    rx = b.array("RX", (n, n))
    ry = b.array("RY", (n, n))

    x_w = b.load(x, [b.aff(j=1), b.aff(-1, i=1)], name="ld_xw")
    x_e = b.load(x, [b.aff(j=1), b.aff(1, i=1)], name="ld_xe")
    x_n = b.load(x, [b.aff(-1, j=1), b.aff(i=1)], name="ld_xn")
    x_s = b.load(x, [b.aff(1, j=1), b.aff(i=1)], name="ld_xs")
    y_w = b.load(y, [b.aff(j=1), b.aff(-1, i=1)], name="ld_yw")
    y_e = b.load(y, [b.aff(j=1), b.aff(1, i=1)], name="ld_ye")

    xx = b.fsub(x_e, x_w)
    yx = b.fsub(y_e, y_w)
    xy = b.fsub(x_s, x_n)
    a = b.fmul(xx, xx)
    bb = b.fmul(yx, yx)
    c = b.fadd(a, bb)
    d = b.fmul(c, xy)
    e = b.fadd(d, xx)
    b.store(rx, [b.aff(j=1), b.aff(i=1)], e, name="st_rx")
    f = b.fmul(c, yx)
    b.store(ry, [b.aff(j=1), b.aff(i=1)], f, name="st_ry")
    return b.build()


def swim(n: int = _N2D) -> Kernel:
    """Shallow-water finite differences (swim's CALC1 loop).

    Computes mass fluxes CU/CV and potential vorticity Z from the height
    and velocity fields; P is read at three points (group reuse on
    ``P[j][i]`` / ``P[j][i-1]`` and across rows).
    """
    b = LoopBuilder("swim")
    j = b.dim("j", 1, n)
    i = b.dim("i", 1, n)
    p = b.array("P", (n + 1, n + 1))
    u = b.array("U", (n + 1, n + 1))
    v = b.array("V", (n + 1, n + 1))
    cu = b.array("CU", (n + 1, n + 1))
    cv = b.array("CV", (n + 1, n + 1))
    z = b.array("Z", (n + 1, n + 1))

    p_c = b.load(p, [b.aff(j=1), b.aff(i=1)], name="ld_pc")
    p_w = b.load(p, [b.aff(j=1), b.aff(-1, i=1)], name="ld_pw")
    p_n = b.load(p, [b.aff(-1, j=1), b.aff(i=1)], name="ld_pn")
    u_c = b.load(u, [b.aff(j=1), b.aff(i=1)], name="ld_u")
    v_c = b.load(v, [b.aff(j=1), b.aff(i=1)], name="ld_v")

    half = b.fconst("half")
    s1 = b.fadd(p_c, p_w)
    cu_v = b.fmul(b.fmul(s1, half), u_c)
    b.store(cu, [b.aff(j=1), b.aff(i=1)], cu_v, name="st_cu")
    s2 = b.fadd(p_c, p_n)
    cv_v = b.fmul(b.fmul(s2, half), v_c)
    b.store(cv, [b.aff(j=1), b.aff(i=1)], cv_v, name="st_cv")
    zn = b.fsub(v_c, u_c)
    zd = b.fadd(b.fadd(p_c, p_w), b.fadd(p_n, p_c))
    z_v = b.fdiv(zn, zd)
    b.store(z, [b.aff(j=1), b.aff(i=1)], z_v, name="st_z")
    return b.build()


def su2cor(n: int = _N1D // 2, name: str = "su2cor") -> Kernel:
    """SU(2) gauge-field correlation (complex multiply-accumulate).

    Interleaved real/imaginary vectors accessed with stride 2 — spatial
    reuse spans two iterations per line instead of four — plus a
    loop-carried accumulation recurrence for the correlation sum.
    """
    b = LoopBuilder(name)
    i = b.dim("i", 0, n)
    a = b.array("A", (2 * n,))
    c = b.array("C", (2 * n,))
    corr = b.array("CORR", (2 * n,))

    ar = b.load(a, [b.aff(i=2)], name="ld_ar")
    ai = b.load(a, [b.aff(1, i=2)], name="ld_ai")
    cr = b.load(c, [b.aff(i=2)], name="ld_cr")
    ci = b.load(c, [b.aff(1, i=2)], name="ld_ci")

    rr = b.fmul(ar, cr)
    ii = b.fmul(ai, ci)
    ri = b.fmul(ar, ci)
    ir = b.fmul(ai, cr)
    real = b.fsub(rr, ii)
    imag = b.fadd(ri, ir)
    b.store(corr, [b.aff(i=2)], real, name="st_re")
    b.store(corr, [b.aff(1, i=2)], imag, name="st_im")
    acc = b.fadd(b.prev_value("acc", distance=1), real, dest="acc")
    return b.build()


def hydro2d(n: int = _N2D) -> Kernel:
    """Hydrodynamical Navier–Stokes update (5-point stencil).

    A classic diffusion sweep on the density field with an advection term
    from the velocity field; all four RO neighbours are uniformly
    generated with the centre point.
    """
    b = LoopBuilder("hydro2d")
    j = b.dim("j", 1, n - 1)
    i = b.dim("i", 1, n - 1)
    ro = b.array("RO", (n, n))
    un = b.array("UN", (n, n))
    ron = b.array("RON", (n, n))

    c_ = b.load(ro, [b.aff(j=1), b.aff(i=1)], name="ld_c")
    w = b.load(ro, [b.aff(j=1), b.aff(-1, i=1)], name="ld_w")
    e = b.load(ro, [b.aff(j=1), b.aff(1, i=1)], name="ld_e")
    nn = b.load(ro, [b.aff(-1, j=1), b.aff(i=1)], name="ld_n")
    s = b.load(ro, [b.aff(1, j=1), b.aff(i=1)], name="ld_s")
    uu = b.load(un, [b.aff(j=1), b.aff(i=1)], name="ld_u")

    four = b.fconst("four")
    alpha = b.fconst("alpha")
    lap = b.fsub(b.fadd(b.fadd(w, e), b.fadd(nn, s)), b.fmul(four, c_))
    adv = b.fmul(uu, b.fsub(e, w))
    out = b.fadd(c_, b.fmul(alpha, b.fsub(lap, adv)))
    b.store(ron, [b.aff(j=1), b.aff(i=1)], out, name="st_ron")
    return b.build()


def mgrid(n: int = _N3D) -> Kernel:
    """Multigrid smoother (mgrid's RESID 7-point 3-D stencil).

    A 3-D nest whose footprint (two ``n**3`` arrays) exceeds the 8KB L1
    many times over; every plane change evicts the previous plane, so the
    miss-threshold prefetching decision dominates.
    """
    b = LoopBuilder("mgrid")
    k = b.dim("k", 1, n - 1)
    j = b.dim("j", 1, n - 1)
    i = b.dim("i", 1, n - 1)
    u = b.array("U", (n, n, n))
    v = b.array("V", (n, n, n))
    r = b.array("R", (n, n, n))

    c_ = b.load(u, [b.aff(k=1), b.aff(j=1), b.aff(i=1)], name="ld_c")
    w = b.load(u, [b.aff(k=1), b.aff(j=1), b.aff(-1, i=1)], name="ld_w")
    e = b.load(u, [b.aff(k=1), b.aff(j=1), b.aff(1, i=1)], name="ld_e")
    s = b.load(u, [b.aff(k=1), b.aff(-1, j=1), b.aff(i=1)], name="ld_s")
    nn = b.load(u, [b.aff(k=1), b.aff(1, j=1), b.aff(i=1)], name="ld_n")
    d = b.load(u, [b.aff(-1, k=1), b.aff(j=1), b.aff(i=1)], name="ld_d")
    t = b.load(u, [b.aff(1, k=1), b.aff(j=1), b.aff(i=1)], name="ld_t")
    rhs = b.load(v, [b.aff(k=1), b.aff(j=1), b.aff(i=1)], name="ld_v")

    a0 = b.fconst("a0")
    a1 = b.fconst("a1")
    face = b.fadd(b.fadd(w, e), b.fadd(b.fadd(s, nn), b.fadd(d, t)))
    resid = b.fsub(rhs, b.fadd(b.fmul(a0, c_), b.fmul(a1, face)))
    b.store(r, [b.aff(k=1), b.aff(j=1), b.aff(i=1)], resid, name="st_r")
    return b.build()


def applu(n: int = _N1D, name: str = "applu") -> Kernel:
    """SSOR lower-triangular solve (applu's BLTS sweep, 1-D slice).

    ``V[i] = (B[i] - L[i] * V[i-1]) * DINV[i]`` — the value recurrence
    through ``V`` makes RecMII the binding constraint and exercises the
    scheduler's recurrence guard on binding prefetching.
    """
    b = LoopBuilder(name)
    i = b.dim("i", 1, n)
    bb = b.array("B", (n,))
    ll = b.array("L", (n,))
    dinv = b.array("DINV", (n,))
    v = b.array("V", (n,))

    b_i = b.load(bb, [b.aff(i=1)], name="ld_b")
    l_i = b.load(ll, [b.aff(i=1)], name="ld_l")
    d_i = b.load(dinv, [b.aff(i=1)], name="ld_d")
    prod = b.fmul(l_i, b.prev_value("vnew", distance=1), name="mul_rec")
    diff = b.fsub(b_i, prod)
    vnew = b.fmul(diff, d_i, dest="vnew")
    b.store(v, [b.aff(i=1)], vnew, name="st_v")
    return b.build()


def turb3d(n: int = _N1D // 2, name: str = "turb3d") -> Kernel:
    """Radix-2 FFT butterfly pass (turb3d's per-dimension transform).

    Reads ``X[i]`` and ``X[i + n]`` — two streams half a vector apart.
    With power-of-two vector sizes the two streams map to the same
    direct-mapped sets, the cross-stream analogue of the motivating
    example's ping-pong interference.
    """
    b = LoopBuilder(name)
    i = b.dim("i", 0, n)
    re = b.array("RE", (2 * n,))
    im = b.array("IM", (2 * n,))

    r_lo = b.load(re, [b.aff(i=1)], name="ld_rlo")
    r_hi = b.load(re, [b.aff(n, i=1)], name="ld_rhi")
    i_lo = b.load(im, [b.aff(i=1)], name="ld_ilo")
    i_hi = b.load(im, [b.aff(n, i=1)], name="ld_ihi")

    wr = b.fconst("wr")
    wi = b.fconst("wi")
    tr = b.fsub(b.fmul(r_hi, wr), b.fmul(i_hi, wi))
    ti = b.fadd(b.fmul(r_hi, wi), b.fmul(i_hi, wr))
    b.store(re, [b.aff(i=1)], b.fadd(r_lo, tr), name="st_rlo")
    b.store(im, [b.aff(i=1)], b.fadd(i_lo, ti), name="st_ilo")
    b.store(re, [b.aff(n, i=1)], b.fsub(r_lo, tr), name="st_rhi")
    b.store(im, [b.aff(n, i=1)], b.fsub(i_lo, ti), name="st_ihi")
    return b.build()


def apsi(n: int = _N2D) -> Kernel:
    """Mesoscale pollutant transport (apsi's vertical diffusion column).

    Mixes a division, a distance-2 smoothing recurrence and streaming
    loads from four arrays — the FU-pressure-heavy member of the suite.
    """
    b = LoopBuilder("apsi")
    j = b.dim("j", 0, n)
    i = b.dim("i", 2, n)
    conc = b.array("CONC", (n, n))
    kdif = b.array("KDIF", (n, n))
    wind = b.array("WIND", (n, n))
    out = b.array("OUT", (n, n))

    c_i = b.load(conc, [b.aff(j=1), b.aff(i=1)], name="ld_c")
    c_m = b.load(conc, [b.aff(j=1), b.aff(-1, i=1)], name="ld_cm")
    k_i = b.load(kdif, [b.aff(j=1), b.aff(i=1)], name="ld_k")
    w_i = b.load(wind, [b.aff(j=1), b.aff(i=1)], name="ld_w")

    grad = b.fsub(c_i, c_m)
    flux = b.fdiv(b.fmul(k_i, grad), w_i)
    smooth = b.fadd(flux, b.prev_value("res", distance=2))
    half = b.fconst("half")
    res = b.fmul(smooth, half, dest="res")
    b.store(out, [b.aff(j=1), b.aff(i=1)], res, name="st_out")
    return b.build()
