"""Guardrail: every piece of mutable memory-system state must be covered
by ``state_signature`` or ``counters``.

Steady-state replay is exact only because
:meth:`DistributedMemorySystem.state_signature` captures *all*
behaviour-relevant state and :meth:`DistributedMemorySystem.counters`
captures *all* additive statistics.  A new attribute added to the memory
system (or its caches, MSHRs, buses or coherence controller) that is
covered by neither would silently break that exactness — replayed runs
would drift from exact ones without any test noticing until a golden
figure moved.  This module makes the omission loud:

* the *inventory* tests walk every ``__dict__`` and fail on any
  attribute that has not been explicitly classified into
  ``signature`` / ``counters`` / ``config`` / ``excluded``;
* the *sensitivity* tests mutate each classified piece of live state and
  assert the claimed channel actually reacts.

When adding memory-system state: wire it into ``state_signature`` (if
it can affect future timing) or ``counters`` (+ ``counters_tuple`` and
``add_counters``, if it is an additive statistic), extend ``translate``,
then classify it here.
"""

import pytest

from repro.machine import BusConfig, four_cluster, two_cluster
from repro.memory.cache import MSHR, CacheLine, ClusterCache, LineState
from repro.memory.coherence import MSIController
from repro.memory.hierarchy import DistributedMemorySystem, MemoryStats
from repro.memory.membus import MemoryBusPool

# ----------------------------------------------------------------------
# The classification.  "signature": covered by state_signature (future
# behaviour); "counters": covered by counters()/add_counters (additive
# statistics); "config": immutable configuration; "recurse": a child
# component with its own classification; "excluded": deliberately
# outside both channels, with the justification in the comment.
# ----------------------------------------------------------------------
COVERAGE = {
    DistributedMemorySystem: {
        "machine": "config",
        "caches": "recurse",
        "bus": "recurse",
        "msi": "recurse",
        "stats": "counters",
        "_main_in_flight": "signature",
        # Pure aliasing: lazily built reference tables for access_batch
        # (every entry points at a component classified above) that are
        # invalidated whenever translate()/reset() rebind a container.
        # No behavioural state of its own.
        "_batch_tables": "excluded",
    },
    ClusterCache: {
        "config": "config",
        "cluster_id": "config",
        "_sets": "signature",
        "mshr": "recurse",
        "in_flight": "signature",
        # Derived views of _sets for incremental signatures: cached
        # per-set fragments plus the set indices mutated since they were
        # built.  No behavioural state of their own — every mutator marks
        # its set dirty, wholesale rebinds funnel through
        # invalidate_fragments(), and the incremental-signature property
        # tests pin fragment-served probes to the from-scratch walk.
        "_set_frags": "excluded",
        "_dirty_sets": "excluded",
    },
    MSHR: {
        "n_entries": "config",
        "_release_times": "signature",
        "total_wait_cycles": "counters",
        # A maximum, not an additive statistic: a replayed steady-state
        # unit repeats behaviour already observed, so the peak cannot
        # move (documented in DistributedMemorySystem.add_counters).
        "peak_occupancy": "excluded",
    },
    MemoryBusPool: {
        "config": "config",
        "_busy_until": "signature",
        "total_wait_cycles": "counters",
        "total_transactions": "counters",
        "total_busy_cycles": "counters",
    },
    MSIController: {
        "caches": "recurse",  # the same ClusterCache objects
        "n_invalidations": "counters",
        "n_interventions": "counters",
        "n_writebacks": "counters",
    },
}

#: counters() key for every attribute classified "counters" above
#: (MemoryStats fields are checked separately, field by field).
COUNTER_KEYS = {
    (MemoryBusPool, "total_wait_cycles"): "bus_total_wait_cycles",
    (MemoryBusPool, "total_transactions"): "bus_total_transactions",
    (MemoryBusPool, "total_busy_cycles"): "bus_total_busy_cycles",
    (MSIController, "n_invalidations"): "msi_invalidations",
    (MSIController, "n_interventions"): "msi_interventions",
    (MSIController, "n_writebacks"): "msi_writebacks",
    (MSHR, "total_wait_cycles"): "mshr{index}_wait_cycles",
}


def _memory(machine=None):
    return DistributedMemorySystem(machine or two_cluster())


def _warmed_memory():
    """A memory system with non-trivial live state in every component."""
    memory = _memory(four_cluster())
    time = 0
    for address in range(0, 4096, 64):
        memory.access(0, address, False, time)
        memory.access(1, address, True, time + 3)
        memory.access(2, address + 8192, False, time + 5)
        time += 11
    return memory, time


class TestInventory:
    """Every mutable attribute must be classified — new state fails here."""

    def test_hierarchy_attributes_classified(self):
        memory, _time = _warmed_memory()
        objects = [
            memory,
            memory.bus,
            memory.msi,
            *memory.caches,
            *(cache.mshr for cache in memory.caches),
        ]
        for obj in objects:
            table = COVERAGE[type(obj)]
            for attribute in vars(obj):
                assert attribute in table, (
                    f"{type(obj).__name__}.{attribute} is not classified in "
                    f"tests/test_memory_signature_coverage.py: wire it into "
                    f"state_signature/counters/translate (or justify an "
                    f"exclusion) before adding memory-system state"
                )

    def test_memory_stats_fields_all_in_counters(self):
        import dataclasses

        memory, _time = _warmed_memory()
        counters = memory.counters()
        for field in dataclasses.fields(MemoryStats):
            assert field.name in counters, (
                f"MemoryStats.{field.name} missing from counters() — "
                f"steady-state replay would not restore it"
            )

    def test_counters_tuple_matches_counters(self):
        memory, _time = _warmed_memory()
        assert memory.counters_tuple() == tuple(memory.counters().values())

    def test_add_counters_inverts_deltas(self):
        memory, time = _warmed_memory()
        before = memory.counters()
        memory.access(0, 65536, False, time)
        after = memory.counters()
        delta = {key: after[key] - before[key] for key in after}
        memory.add_counters(delta, 3)
        expected = {key: after[key] + 3 * delta[key] for key in after}
        assert memory.counters() == expected


class TestSignatureSensitivity:
    """Each "signature" attribute must actually move the signature."""

    def _signature(self, memory, base=10_000):
        return memory.state_signature(base)

    def test_cache_lines(self):
        memory, time = _warmed_memory()
        before = self._signature(memory, time)
        memory.caches[0].fill(1 << 20, LineState.SHARED)
        assert self._signature(memory, time) != before

    def test_line_state_changes(self):
        memory, time = _warmed_memory()
        cache = memory.caches[1]
        address = next(
            cache._line_address(index, line.tag)
            for index, ways in cache._sets.items()
            for line in ways
            if line.state is LineState.MODIFIED
        )
        before = self._signature(memory, time)
        cache.set_state(address, LineState.SHARED)
        assert self._signature(memory, time) != before

    def test_invalid_lines_are_state(self):
        memory, time = _warmed_memory()
        before = self._signature(memory, time)
        # Direct _sets surgery bypasses the mutator hooks, so the
        # fragment cache must be dropped by hand (the hook for exactly
        # this kind of test).
        memory.caches[0]._sets.setdefault(3, []).append(
            CacheLine(tag=999, state=LineState.INVALID)
        )
        memory.caches[0].invalidate_fragments()
        assert self._signature(memory, time) != before

    def test_invalid_lines_strippable(self):
        memory, time = _warmed_memory()
        ghosts = []
        stripped = memory.state_signature(time, invalid_out=ghosts)
        memory.caches[0]._sets.setdefault(3, []).append(
            CacheLine(tag=999, state=LineState.INVALID)
        )
        memory.caches[0].invalidate_fragments()
        ghosts2 = []
        assert memory.state_signature(time, invalid_out=ghosts2) == stripped
        assert len(ghosts2) == len(ghosts) + 1

    def test_cache_in_flight(self):
        memory, time = _warmed_memory()
        before = self._signature(memory, time)
        memory.caches[0].in_flight[1 << 20] = time + 500
        assert self._signature(memory, time) != before

    def test_expired_in_flight_is_not_state(self):
        memory, time = _warmed_memory()
        before = self._signature(memory, time)
        memory.caches[0].in_flight[1 << 20] = time - 1
        assert self._signature(memory, time) == before

    def test_mshr_pending(self):
        memory, time = _warmed_memory()
        before = self._signature(memory, time)
        memory.caches[0].mshr.hold(time + 123)
        assert self._signature(memory, time) != before

    def test_bus_horizon(self):
        machine = two_cluster(memory_bus=BusConfig(count=1, latency=4))
        memory = _memory(machine)
        memory.access(0, 0, False, 0)
        time = 1
        before = self._signature(memory, time)
        memory.bus.acquire(time + 50)
        assert self._signature(memory, time) != before

    def test_main_in_flight(self):
        memory, time = _warmed_memory()
        before = self._signature(memory, time)
        memory._main_in_flight[1 << 20] = time + 77
        assert self._signature(memory, time) != before

    def test_statistics_are_not_signature(self):
        """Counters record the past: bumping them must not move the
        signature (they are replayed through add_counters instead)."""
        memory, time = _warmed_memory()
        before = self._signature(memory, time)
        memory.stats.accesses += 100
        memory.bus.total_wait_cycles += 5
        memory.msi.n_invalidations += 2
        memory.caches[0].mshr.total_wait_cycles += 9
        assert self._signature(memory, time) == before


class TestCounterSensitivity:
    """Each "counters" attribute must actually move counters()."""

    @pytest.mark.parametrize(
        "mutate,key",
        [
            (lambda m: setattr(m.bus, "total_wait_cycles",
                               m.bus.total_wait_cycles + 1),
             "bus_total_wait_cycles"),
            (lambda m: setattr(m.bus, "total_transactions",
                               m.bus.total_transactions + 1),
             "bus_total_transactions"),
            (lambda m: setattr(m.bus, "total_busy_cycles",
                               m.bus.total_busy_cycles + 1),
             "bus_total_busy_cycles"),
            (lambda m: setattr(m.msi, "n_invalidations",
                               m.msi.n_invalidations + 1),
             "msi_invalidations"),
            (lambda m: setattr(m.msi, "n_interventions",
                               m.msi.n_interventions + 1),
             "msi_interventions"),
            (lambda m: setattr(m.msi, "n_writebacks",
                               m.msi.n_writebacks + 1),
             "msi_writebacks"),
            (lambda m: setattr(m.caches[1].mshr, "total_wait_cycles",
                               m.caches[1].mshr.total_wait_cycles + 1),
             "mshr1_wait_cycles"),
        ],
    )
    def test_component_counter_reacts(self, mutate, key):
        memory, _time = _warmed_memory()
        before = memory.counters()
        mutate(memory)
        after = memory.counters()
        assert after[key] == before[key] + 1
        changed = {k for k in after if after[k] != before[k]}
        assert changed == {key}

    def test_every_memory_stats_field_reacts(self):
        import dataclasses

        memory, _time = _warmed_memory()
        for field in dataclasses.fields(MemoryStats):
            before = memory.counters()
            setattr(
                memory.stats, field.name,
                getattr(memory.stats, field.name) + 1,
            )
            after = memory.counters()
            assert after[field.name] == before[field.name] + 1


class TestTranslate:
    """translate() must be the exact physical counterpart of the
    signature normalization: translating by (dt, da) and re-reading the
    signature at the translated anchor reproduces the original."""

    def test_signature_preserved(self):
        memory, time = _warmed_memory()
        unit = memory.signature_shift_unit()
        before = memory.state_signature(time)
        dt, da = 12_345, 16 * unit
        memory.translate(dt, da)
        assert memory.state_signature(time + dt, da) == before

    def test_counters_untouched(self):
        memory, time = _warmed_memory()
        unit = memory.signature_shift_unit()
        counters = memory.counters()
        memory.translate(1000, unit)
        assert memory.counters() == counters

    def test_unaligned_shift_rejected(self):
        memory, time = _warmed_memory()
        unit = memory.signature_shift_unit()
        with pytest.raises(ValueError, match="shift unit"):
            memory.translate(0, unit + 1)

    def test_behavioural_equivalence(self):
        """The same access stream, shifted in time and space, produces
        identical outcomes on the translated system."""
        machine = four_cluster()
        reference, _ = _warmed_memory()
        translated, time = _warmed_memory()
        unit = translated.signature_shift_unit()
        dt, da = 4096, 8 * unit
        translated.translate(dt, da)
        stream = [
            (0, 128, False), (1, 128, True), (2, 8192 + 256, False),
            (3, 1 << 16, True), (0, 160, False),
        ]
        clock = time + 7
        for cluster, address, is_store in stream:
            plain = reference.access(cluster, address, is_store, clock)
            shifted = translated.access(
                cluster, address + da, is_store, clock + dt
            )
            assert shifted.ready_time == plain.ready_time + dt
            assert shifted.level == plain.level
            assert shifted.mshr_wait == plain.mshr_wait
            assert shifted.bus_wait == plain.bus_wait
            assert shifted.merged == plain.merged
            clock += 13
