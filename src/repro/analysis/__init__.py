"""Analysis layer: closed-form cost model, schedule metrics, comparisons."""

from .compare import RunResult, make_scheduler, normalized_cycles, run_cell
from .costmodel import (
    CyclePrediction,
    memory_access_latency,
    ncycle_compute,
    predict_cycles,
)
from .metrics import ScheduleMetrics, schedule_metrics, workload_balance

__all__ = [
    "CyclePrediction",
    "RunResult",
    "ScheduleMetrics",
    "make_scheduler",
    "memory_access_latency",
    "ncycle_compute",
    "normalized_cycles",
    "predict_cycles",
    "run_cell",
    "schedule_metrics",
    "workload_balance",
]
