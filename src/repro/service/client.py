"""Stdlib client for the experiment service.

:class:`ServiceClient` wraps the service's HTTP API in plain method
calls using nothing but ``urllib`` — it is what ``repro submit`` runs
and what the end-to-end tests drive, and it doubles as executable
documentation of the wire protocol.  Errors come back as
:class:`ServiceError` carrying the HTTP status and the server's
``{"error": ...}`` message.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(Exception):
    """A non-2xx answer (or no answer at all) from the service."""

    def __init__(self, status: Optional[int], message: str):
        super().__init__(
            f"HTTP {status}: {message}" if status is not None else message
        )
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one ``repro serve`` instance at ``url``."""

    def __init__(self, url: str, timeout: float = 60.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _open(self, path: str, data: Optional[bytes] = None):
        request = Request(
            self.url + path,
            data=data,
            headers=(
                {"Content-Type": "application/json"} if data is not None else {}
            ),
            method="POST" if data is not None else "GET",
        )
        try:
            return urlopen(request, timeout=self.timeout)
        except HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body.decode("utf-8"))["error"]
            except Exception:
                message = body.decode("utf-8", "replace") or exc.reason
            raise ServiceError(exc.code, str(message)) from None
        except URLError as exc:
            raise ServiceError(
                None, f"cannot reach {self.url}: {exc.reason}"
            ) from None

    def _get_json(self, path: str) -> object:
        with self._open(path) as response:
            return json.loads(response.read().decode("utf-8"))

    def _post_json(self, path: str, payload: object) -> object:
        data = json.dumps(payload).encode("utf-8")
        with self._open(path, data=data) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._get_json("/health")

    def scenarios(self) -> List[Dict[str, object]]:
        return self._get_json("/scenarios")

    def stats(self) -> Dict[str, object]:
        return self._get_json("/stats")

    def submit(
        self,
        scenario: Optional[str] = None,
        spec: Optional[Dict[str, object]] = None,
        steady: Optional[str] = None,
        sim: Optional[str] = None,
    ) -> Dict[str, object]:
        """Submit one job; returns the job summary (with its ``id``)."""
        payload: Dict[str, object] = {}
        if scenario is not None:
            payload["scenario"] = scenario
        if spec is not None:
            payload["spec"] = spec
        if steady is not None:
            payload["steady"] = steady
        if sim is not None:
            payload["sim"] = sim
        return self._post_json("/jobs", payload)

    def jobs(self) -> List[Dict[str, object]]:
        return self._get_json("/jobs")

    def job(self, job_id: str) -> Dict[str, object]:
        return self._get_json(f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, object]:
        return self._get_json(f"/jobs/{job_id}/result")

    def events(
        self, job_id: str, cursor: int = 0, follow: bool = True
    ) -> Iterator[Dict[str, object]]:
        """Yield the job's NDJSON events as they arrive.

        With ``follow=True`` (default) the stream runs until the job is
        terminal and fully drained; the iterator ends when the server
        closes the connection.
        """
        suffix = "" if follow else "&follow=0"
        with self._open(
            f"/jobs/{job_id}/events?cursor={cursor}{suffix}"
        ) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(self, job_id: str) -> Dict[str, object]:
        """Drain the event stream, then return the job's result."""
        for _event in self.events(job_id):
            pass
        return self.result(job_id)

    def export(self, job_id: str, format: str = "npz") -> bytes:
        """Download the job's artifact bytes in ``format``."""
        with self._open(f"/jobs/{job_id}/export?format={format}") as response:
            return response.read()
