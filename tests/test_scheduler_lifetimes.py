"""Tests for register lifetime / pressure analysis."""

import pytest

from repro.ir import LoopBuilder
from repro.machine import two_cluster, unified
from repro.scheduler import BaselineScheduler, SchedulerConfig
from repro.scheduler.lifetimes import (
    cluster_pressures,
    max_live,
    pressure_ok,
)


def _long_lived_kernel(chain=6):
    """A value consumed at the end of a long chain has a long lifetime."""
    b = LoopBuilder("longlive")
    i = b.dim("i", 0, 32)
    a = b.array("A", (64,))
    early = b.load(a, [b.aff(i=1)], name="early")
    v = b.load(a, [b.aff(1, i=1)], name="feeder")
    for k in range(chain):
        v = b.fadd(v, v, name=f"step{k}")
    late = b.fmul(early, v, name="late_use")
    b.store(a, [b.aff(i=1)], late, name="st")
    return b.build()


class TestPressures:
    def test_every_cluster_reported(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        pressures = cluster_pressures(schedule)
        assert set(pressures) == {0, 1}

    def test_pressure_positive_when_values_live(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        assert max_live(schedule) >= 1

    def test_longer_chain_more_pressure(self, unified_machine):
        """At equal II, a value consumed later stays live longer.

        Both variants fit II=1 on the unified machine (at most 4 FP ops),
        so the only difference is the early value's lifetime.
        """
        short = BaselineScheduler().schedule(
            _long_lived_kernel(chain=1), unified_machine
        )
        long = BaselineScheduler().schedule(
            _long_lived_kernel(chain=3), unified_machine
        )
        assert short.ii == long.ii
        assert max_live(long) >= max_live(short)

    def test_pressure_ok_for_engine_output(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        assert pressure_ok(schedule)

    def test_pressure_not_ok_for_tiny_register_file(self, unified_machine):
        """Engine output with the check disabled can exceed a tiny file."""
        from dataclasses import replace

        kernel = _long_lived_kernel(chain=8)
        config = SchedulerConfig(check_register_pressure=False)
        schedule = BaselineScheduler(config).schedule(kernel, unified_machine)
        tiny_cluster = replace(unified_machine.clusters[0], n_registers=1)
        schedule.machine = replace(unified_machine, clusters=(tiny_cluster,))
        assert not pressure_ok(schedule)

    def test_prefetched_load_raises_pressure(self, sampling_cme):
        """Binding prefetching lengthens the destination lifetime."""
        b = LoopBuilder("stream")
        i = b.dim("i", 0, 256)
        a = b.array("A", (2048,))
        v = b.load(a, [b.aff(i=8)], name="ld")
        t = b.fmul(v, v, name="mul")
        b.store(a, [b.aff(i=8)], t, name="st")
        kernel = b.build()
        machine = unified()
        plain = BaselineScheduler(
            SchedulerConfig(threshold=1.0), locality=sampling_cme
        ).schedule(kernel, machine)
        prefetched = BaselineScheduler(
            SchedulerConfig(threshold=0.5), locality=sampling_cme
        ).schedule(kernel, machine)
        assert prefetched.prefetched_loads() == ["ld"]
        assert max_live(prefetched) > max_live(plain)

    def test_cross_cluster_value_counted_in_both_clusters(self):
        """A communicated value occupies registers at both ends."""
        b = LoopBuilder("cross")
        i = b.dim("i", 0, 32)
        a = b.array("A", (64,))
        out = b.array("OUT", (64,))
        # Enough loads to force a split across clusters.
        values = [b.load(a, [b.aff(k, i=1)], name=f"ld{k}") for k in range(5)]
        total = values[0]
        for v in values[1:]:
            total = b.fadd(total, v)
        b.store(out, [b.aff(i=1)], total, name="st")
        kernel = b.build()
        schedule = BaselineScheduler().schedule(kernel, two_cluster())
        if not schedule.communications:
            pytest.skip("no cross-cluster value in this schedule")
        pressures = cluster_pressures(schedule)
        assert all(p >= 1 for p in pressures.values())
