#!/usr/bin/env python
"""Quickstart: build a kernel, schedule it both ways, simulate.

Runs a SAXPY-like loop through the whole pipeline on the paper's
2-cluster machine and prints the modulo reservation table, the static
schedule summary and the simulated cycle breakdown for the Baseline and
RMCA schedulers.

Usage::

    python examples/quickstart.py
"""

from repro import (
    LoopBuilder,
    SchedulerConfig,
    default_analyzer,
    make_scheduler,
    simulate,
    two_cluster,
)


def build_kernel():
    """``Y[i] = alpha * X[i] + Y[i]`` over 1024 doubles."""
    b = LoopBuilder("saxpy")
    i = b.dim("i", 0, 1024)
    x = b.array("X", (1024,))
    y = b.array("Y", (1024,))
    xi = b.load(x, [b.aff(i=1)], name="ld_x")
    yi = b.load(y, [b.aff(i=1)], name="ld_y")
    scaled = b.fmul(xi, b.fconst("alpha"), name="mul")
    summed = b.fadd(scaled, yi, name="add")
    b.store(y, [b.aff(i=1)], summed, name="st_y")
    return b.build()


def main():
    kernel = build_kernel()
    machine = two_cluster()
    locality = default_analyzer()

    print(f"kernel: {kernel.loop}")
    print(f"machine: {machine.name}, issue width {machine.issue_width}")
    print()

    for name in ("baseline", "rmca"):
        scheduler = make_scheduler(name, threshold=0.25, locality=locality)
        schedule = scheduler.schedule(kernel, machine)
        schedule.validate()
        result = simulate(schedule)
        print(f"--- {name} (threshold 0.25) ---")
        print(schedule.format_reservation_table())
        print(f"II={schedule.ii} (MII={schedule.mii})  SC={schedule.stage_count}")
        print(
            f"cycles: total={result.total_cycles} "
            f"(compute={result.compute_cycles}, stall={result.stall_cycles})"
        )
        print(
            f"memory: {result.memory.local_hits} local hits, "
            f"{result.memory.remote_hits} remote hits, "
            f"{result.memory.main_memory} main-memory fills"
        )
        print()


if __name__ == "__main__":
    main()
