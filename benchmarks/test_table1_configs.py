"""Table 1: multiVLIWprocessor configurations and operation latencies.

Regenerates the configuration table and asserts its structural
invariants: three 12-way-issue machines sharing 64 registers and 8KB of
L1 capacity, partitioned 1/2/4 ways.
"""

from repro.harness.report import format_table
from repro.ir.operations import OpClass
from repro.machine import four_cluster, two_cluster, unified

from conftest import save_and_print


def _render_table1() -> str:
    rows = []
    for factory in (unified, two_cluster, four_cluster):
        machine = factory()
        desc = machine.describe()
        rows.append(
            (
                desc["name"],
                desc["clusters"],
                f"{desc['int_units_per_cluster']}I/"
                f"{desc['fp_units_per_cluster']}F/"
                f"{desc['mem_units_per_cluster']}M",
                desc["registers_per_cluster"],
                desc["cache_per_cluster"],
                desc["issue_width"],
            )
        )
    config = format_table(
        ["config", "clusters", "FUs/cluster", "regs/cluster",
         "L1 bytes/cluster", "issue width"],
        rows,
    )
    machine = unified()
    latencies = format_table(
        ["operation", "latency"],
        [(oc.value, machine.latency(oc)) for oc in OpClass],
    )
    return (
        "Table 1: machine configurations\n" + config
        + "\n\nOperation latencies (local-cache hit for load)\n" + latencies
        + f"\nmain memory: {machine.main_memory_latency} cycles"
    )


def test_table1(benchmark, results_dir):
    text = benchmark.pedantic(_render_table1, rounds=1, iterations=1)
    save_and_print(results_dir, "table1", text)

    for factory, n, fu, regs, cache in (
        (unified, 1, 4, 64, 8192),
        (two_cluster, 2, 2, 32, 4096),
        (four_cluster, 4, 1, 16, 2048),
    ):
        machine = factory()
        assert machine.n_clusters == n
        assert machine.issue_width == 12
        assert machine.total_registers == 64
        assert machine.total_cache_size == 8 * 1024
        cluster = machine.cluster(0)
        assert cluster.n_integer == cluster.n_fp == cluster.n_memory == fu
        assert cluster.n_registers == regs
        assert cluster.cache.size == cache
        assert cluster.cache.associativity == 1
        assert cluster.cache.mshr_entries == 10
