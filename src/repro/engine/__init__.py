"""Layered cell-execution engine.

The experiment cell — schedule one kernel on one machine with one
scheduler/threshold, simulate it, measure it — used to be a monolithic
function; this package decomposes it into an explicit pipeline of five
small stages with typed inputs/outputs and per-stage timing records.
The grid, the sweeps, the scenario runner and the CLI all consume it.
"""

from .pipeline import (
    CellOutcome,
    CellPipeline,
    PipelineReport,
    StageRecord,
    default_stages,
    execute_cell,
)
from .result import CELL_EXECUTIONS, ExecutionCounter, RunResult
from .stagestore import (
    STAGE_STORE_STAGES,
    STAGE_STORE_VERSION,
    StageStore,
)
from .stages import (
    SCHEDULER_NAMES,
    AnalyzeStage,
    BuildStage,
    CellContext,
    CellRequest,
    MeasureStage,
    ScheduleStage,
    SimulateStage,
    Stage,
    make_scheduler,
)

__all__ = [
    "AnalyzeStage",
    "BuildStage",
    "CELL_EXECUTIONS",
    "CellContext",
    "CellOutcome",
    "CellPipeline",
    "CellRequest",
    "ExecutionCounter",
    "MeasureStage",
    "PipelineReport",
    "RunResult",
    "SCHEDULER_NAMES",
    "STAGE_STORE_STAGES",
    "STAGE_STORE_VERSION",
    "ScheduleStage",
    "SimulateStage",
    "Stage",
    "StageRecord",
    "StageStore",
    "default_stages",
    "execute_cell",
    "make_scheduler",
]
