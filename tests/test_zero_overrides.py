"""Falsy-zero robustness: zero is a value, not an absence.

The default-or-override plumbing (thresholds, bus overrides, job
counts, iteration overrides, engine selections) must distinguish
``None`` ("use the default") from legitimate falsy values — a
``threshold=0.0`` cell is the paper's most aggressive prefetch setting,
not a request for the default.  These tests pin every boundary that
once used (or could regress to) truthiness tests.
"""

import pytest

from repro.cli import build_parser
from repro.engine import CellRequest, execute_cell
from repro.harness.grid import CellSpec, ExperimentGrid
from repro.harness.scenarios import MachineSpec
from repro.harness.sweep import unified_reference
from repro.machine import BusConfig, two_cluster, unified
from repro.machine.presets import preset
from repro.simulator import DEFAULT_SIM_ENGINE, simulate
from repro.workloads import spec_suite


@pytest.fixture(scope="module")
def kernel():
    return spec_suite(["applu"])[0]


class TestThresholdZero:
    def test_threshold_zero_reaches_schedule(self, kernel):
        """threshold=0.0 must flow to the scheduler as 0.0, end to end."""
        outcome = execute_cell(
            CellRequest(
                kernel=kernel,
                machine=two_cluster(),
                scheduler="rmca",
                threshold=0.0,
            )
        )
        assert outcome.result.threshold == 0.0
        assert outcome.result.schedule.threshold == 0.0
        assert outcome.report.stage("schedule").stats["threshold"] == 0.0

    def test_threshold_zero_distinct_cell(self, kernel):
        """A 0.0 cell is a different experiment from the 1.0 default."""
        zero = CellSpec.of(kernel, two_cluster(), "rmca", 0.0)
        one = CellSpec.of(kernel, two_cluster(), "rmca", 1.0)
        assert zero != one
        assert zero.cache_key("x") != one.cache_key("x")

    def test_threshold_zero_changes_prefetching(self, kernel):
        """At threshold 0.0 every load with any estimated miss ratio is
        binding-prefetched; at 1.0 none are — if 0.0 were swallowed by a
        truthiness test, the two schedules would collapse."""
        zero = execute_cell(
            CellRequest(
                kernel=kernel, machine=two_cluster(),
                scheduler="rmca", threshold=0.0,
            )
        ).result.schedule
        one = execute_cell(
            CellRequest(
                kernel=kernel, machine=two_cluster(),
                scheduler="rmca", threshold=1.0,
            )
        ).result.schedule
        assert len(zero.prefetched_loads()) > len(one.prefetched_loads())


class TestBusZero:
    def test_bus_count_zero_rejected(self):
        with pytest.raises(ValueError, match="bus count"):
            BusConfig(count=0, latency=1)

    def test_bus_latency_zero_rejected(self):
        with pytest.raises(ValueError, match="bus latency"):
            BusConfig(count=1, latency=0)

    @pytest.mark.parametrize("bus", [(0, 1), (1, 0)])
    def test_machinespec_zero_bus_rejected(self, bus):
        spec = MachineSpec(preset="2-cluster", memory_bus=bus)
        with pytest.raises(ValueError):
            spec.build()

    @pytest.mark.parametrize("preset_name", ["2-cluster", "heterogeneous"])
    def test_preset_explicit_bus_used_as_given(self, preset_name):
        """An explicitly passed bus must never be coerced through
        truthiness back to the preset default."""
        bus = BusConfig(count=4, latency=7)
        machine = preset(preset_name, memory_bus=bus)
        assert machine.memory_bus == bus
        assert preset(preset_name).memory_bus != bus

    def test_with_buses_is_none_semantics(self):
        machine = two_cluster()
        bus = BusConfig(count=None, latency=3)
        swapped = machine.with_buses(memory_bus=bus)
        assert swapped.memory_bus == bus
        assert swapped.register_bus == machine.register_bus
        untouched = machine.with_buses()
        assert untouched == machine

    def test_unified_reference_explicit_bus(self, kernel):
        """sweep.unified_reference must honour an explicit bus instead
        of falling back to the unbounded default through truthiness."""
        bounded = unified_reference(
            [kernel], memory_bus=BusConfig(count=1, latency=4)
        )
        unbounded = unified_reference([kernel])
        assert bounded[kernel.name] >= unbounded[kernel.name]


class TestJobsZero:
    def test_grid_rejects_zero_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            ExperimentGrid(n_jobs=0)

    @pytest.mark.parametrize(
        "argv",
        [
            ["fig6", "--jobs", "0"],
            ["run", "streaming", "--jobs", "0"],
            ["fig5", "--jobs", "-2"],
        ],
    )
    def test_cli_rejects_nonpositive_jobs(self, argv, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        assert "must be >= 1" in capsys.readouterr().err


class TestIterationOverrideZero:
    @pytest.mark.parametrize("override", ["n_iterations", "n_times"])
    def test_zero_counts_rejected_not_defaulted(self, kernel, override):
        """A zero iteration override must raise loudly, not silently
        fall back to the kernel's default trip counts."""
        from repro.engine.stages import make_scheduler

        schedule = make_scheduler("baseline", 1.0, None).schedule(
            kernel, unified()
        )
        with pytest.raises(ValueError, match=override):
            simulate(schedule, **{override: 0})

    def test_none_uses_kernel_defaults(self, kernel):
        from repro.engine.stages import make_scheduler

        schedule = make_scheduler("baseline", 1.0, None).schedule(
            kernel, unified()
        )
        result = simulate(schedule)
        assert result.n_times == kernel.loop.n_times


class TestEngineSelectionNone:
    def test_sim_none_means_default_engine(self, kernel):
        from repro.engine.stages import make_scheduler

        schedule = make_scheduler("baseline", 1.0, None).schedule(
            kernel, unified()
        )
        assert (
            simulate(schedule, sim=None).as_dict()
            == simulate(schedule, sim=DEFAULT_SIM_ENGINE).as_dict()
        )

    def test_empty_string_engine_rejected(self, kernel):
        """'' is not a selection; only None may mean 'default'."""
        from repro.engine.stages import make_scheduler

        schedule = make_scheduler("baseline", 1.0, None).schedule(
            kernel, unified()
        )
        with pytest.raises(KeyError):
            simulate(schedule, sim="")
