"""Experiment harness: sweeps, tables, ASCII charts."""

from .charts import render_bar, render_figure
from .io import figure_to_csv, figure_to_json, load_records, records_to_csv, records_to_json
from .report import figure_table, format_float, format_table
from .sweep import (
    DEFAULT_THRESHOLDS,
    Bar,
    FigureData,
    figure5,
    figure6,
    suite_bar,
    unified_reference,
)

__all__ = [
    "Bar",
    "DEFAULT_THRESHOLDS",
    "FigureData",
    "figure5",
    "figure6",
    "figure_table",
    "figure_to_csv",
    "figure_to_json",
    "load_records",
    "records_to_csv",
    "records_to_json",
    "format_float",
    "format_table",
    "render_bar",
    "render_figure",
    "suite_bar",
    "unified_reference",
]
