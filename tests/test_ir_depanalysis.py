"""Tests for automatic memory dependence analysis."""

import pytest

from repro.ir import LoopBuilder
from repro.ir.ddg import build_ddg
from repro.ir.depanalysis import (
    analyze_memory_dependences,
    exact_distance,
    may_alias,
)
from repro.machine import unified
from repro.scheduler import BaselineScheduler


def _kernel(build):
    b = LoopBuilder("k")
    i = b.dim("i", 0, 32)
    build(b, i)
    return b.build()


class TestExactDistance:
    def test_same_reference_distance_zero(self):
        kernel = _kernel(
            lambda b, i: (
                b.store(b.array("A", (64,)), [b.aff(i=1)], b.live_in("c")),
            )
        )
        ref = kernel.loop.refs[0]
        assert exact_distance(ref, ref, kernel.loop) == 0

    def test_constant_offset_distance(self):
        def build(b, i):
            a = b.array("A", (64,))
            v = b.load(a, [b.aff(1, i=1)], name="ld")   # A[i+1]
            b.store(a, [b.aff(i=1)], v, name="st")      # A[i]
        kernel = _kernel(build)
        load_ref, store_ref = kernel.loop.refs
        # store(i+1) touches what load touched at ... load A[i+1] at i,
        # store A[j] at j: equal when j = i+1: distance +1.
        assert exact_distance(load_ref, store_ref, kernel.loop) == 1
        assert exact_distance(store_ref, load_ref, kernel.loop) == -1

    def test_non_unit_coefficient_divisibility(self):
        def build(b, i):
            a = b.array("A", (128,))
            v = b.load(a, [b.aff(1, i=2)], name="ld")   # A[2i+1]
            b.store(a, [b.aff(i=2)], v, name="st")      # A[2i]
        kernel = _kernel(build)
        load_ref, store_ref = kernel.loop.refs
        # 2j = 2i+1 has no integer solution.
        assert exact_distance(load_ref, store_ref, kernel.loop) is None

    def test_non_uniform_returns_none(self):
        def build(b, i):
            a = b.array("A", (128,))
            v = b.load(a, [b.aff(i=1)], name="ld")
            b.store(a, [b.aff(i=2)], v, name="st")
        kernel = _kernel(build)
        load_ref, store_ref = kernel.loop.refs
        assert exact_distance(load_ref, store_ref, kernel.loop) is None


class TestMayAlias:
    def test_disjoint_arrays_never_alias(self):
        def build(b, i):
            x = b.array("X", (32,))
            y = b.array("Y", (32,))
            v = b.load(x, [b.aff(i=1)], name="ld")
            b.store(y, [b.aff(i=1)], v, name="st")
        kernel = _kernel(build)
        a, c = kernel.loop.refs
        assert not may_alias(a, c, kernel.loop)

    def test_same_array_same_stream_aliases(self):
        def build(b, i):
            a = b.array("A", (64,))
            v = b.load(a, [b.aff(i=1)], name="ld")
            b.store(a, [b.aff(i=1)], v, name="st")
        kernel = _kernel(build)
        assert may_alias(kernel.loop.refs[0], kernel.loop.refs[1], kernel.loop)

    def test_odd_even_streams_disjoint(self):
        def build(b, i):
            a = b.array("A", (128,))
            v = b.load(a, [b.aff(i=2)], name="ld")       # even elements
            b.store(a, [b.aff(1, i=2)], v, name="st")    # odd elements
        kernel = _kernel(build)
        assert not may_alias(
            kernel.loop.refs[0], kernel.loop.refs[1], kernel.loop
        )

    def test_gcd_test_on_non_uniform_pair(self):
        def build(b, i):
            a = b.array("A", (256,))
            v = b.load(a, [b.aff(0, i=2)], name="ld")    # 2i
            b.store(a, [b.aff(1, i=4)], v, name="st")    # 4i+1
        kernel = _kernel(build)
        # gcd(2,4)=2 does not divide 1: independent.
        assert not may_alias(
            kernel.loop.refs[0], kernel.loop.refs[1], kernel.loop
        )


class TestAnalyzeMemoryDependences:
    def test_load_store_same_address_anti(self):
        def build(b, i):
            a = b.array("A", (64,))
            v = b.load(a, [b.aff(i=1)], name="ld")
            b.store(a, [b.aff(i=1)], v, name="st")
        kernel = _kernel(build)
        edges = analyze_memory_dependences(kernel.loop)
        kinds = {(e.src, e.dst, e.kind, e.distance) for e in edges}
        assert ("ld", "st", "anti", 0) in kinds

    def test_store_then_load_next_iteration(self):
        """Recurrence through memory: V[i] written, V[i-1] read."""
        def build(b, i):
            a = b.array("V", (64,))
            prev = b.load(a, [b.aff(-1, i=1)], name="ld_prev")
            v = b.fadd(prev, prev, name="add")
            b.store(a, [b.aff(i=1)], v, name="st")
        b = LoopBuilder("k")
        i = b.dim("i", 1, 32)
        build(b, i)
        kernel = b.build()
        edges = analyze_memory_dependences(kernel.loop)
        kinds = {(e.src, e.dst, e.kind, e.distance) for e in edges}
        # st at iteration i feeds ld_prev at i+1.
        assert ("st", "ld_prev", "mem", 1) in kinds

    def test_load_load_imposes_nothing(self):
        def build(b, i):
            a = b.array("A", (64,))
            x = b.load(a, [b.aff(i=1)], name="ld1")
            y = b.load(a, [b.aff(1, i=1)], name="ld2")
            b.store(b.array("OUT", (64,)), [b.aff(i=1)], b.fadd(x, y))
        kernel = _kernel(build)
        edges = analyze_memory_dependences(kernel.loop)
        assert not any(
            {e.src, e.dst} == {"ld1", "ld2"} for e in edges
        )

    def test_invariant_store_self_conflict(self):
        def build(b, i):
            a = b.array("A", (8,))
            b.store(a, [b.aff(3)], b.live_in("c"), name="st")
        kernel = _kernel(build)
        edges = analyze_memory_dependences(kernel.loop)
        assert any(
            e.src == "st" and e.dst == "st" and e.distance == 1
            for e in edges
        )

    def test_disjoint_streams_no_edges(self):
        def build(b, i):
            a = b.array("A", (128,))
            v = b.load(a, [b.aff(i=2)], name="ld")
            b.store(a, [b.aff(1, i=2)], v, name="st")
        kernel = _kernel(build)
        assert analyze_memory_dependences(kernel.loop) == []

    def test_distant_dependences_dropped(self):
        def build(b, i):
            a = b.array("A", (256,))
            v = b.load(a, [b.aff(-100, i=1)], name="ld")
            b.store(a, [b.aff(i=1)], v, name="st")
        b = LoopBuilder("k")
        i = b.dim("i", 100, 132)
        build(b, i)
        kernel = b.build()
        edges = analyze_memory_dependences(kernel.loop, max_distance=64)
        assert edges == []

    def test_edges_feed_scheduler(self):
        """The derived edges integrate with build_ddg and scheduling."""
        def build(b, i):
            a = b.array("V", (64,))
            prev = b.load(a, [b.aff(-1, i=1)], name="ld_prev")
            v = b.fmul(prev, prev, name="mul")
            b.store(a, [b.aff(i=1)], v, name="st")
        b = LoopBuilder("memrec")
        i = b.dim("i", 1, 32)
        build(b, i)
        kernel = b.build()
        edges = analyze_memory_dependences(kernel.loop)
        ddg = build_ddg(kernel.loop, edges)
        assert ddg.has_recurrences()
        from repro.ir.builder import Kernel

        enriched = Kernel(loop=kernel.loop, ddg=ddg)
        schedule = BaselineScheduler().schedule(enriched, unified())
        schedule.validate()
        # The memory recurrence (st -> ld_prev at distance 1) bounds II:
        # ld(2) + mul(2) + st->(mem edge 1) over distance 1 >= 5.
        assert schedule.ii >= 5
