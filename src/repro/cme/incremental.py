"""Incremental sampled CME: set-decomposed replay over shared traces.

This is the production engine behind :func:`repro.cme.default_analyzer`.
It computes *exactly* the same estimates as the from-scratch reference
(:class:`~repro.cme.sampling.SamplingCME` — the Vera et al. sampled
functional-cache sweep) but answers the scheduler's probe pattern
incrementally instead of re-simulating every reference set from scratch.

Three observations make that possible:

1. **Addresses are probe-invariant.**  The byte addresses an operation
   touches depend only on the loop content and the sampling window, so
   they are precomputed once per ``(loop fingerprint, window)`` in a
   content-addressed :class:`~repro.cme.trace.TraceStore` and shared
   across probes, analyzers, pickling and grid process fan-out.

2. **Cache sets are independent.**  In a set-associative LRU cache each
   set evolves only under the accesses that map to it.  A reference
   set's miss counts therefore decompose per set, and the estimate for
   ``resident + [op]`` differs from the resident's estimate *only* in
   the sets ``op`` touches.  The engine memoizes, per resident set, the
   per-set miss decomposition (a *snapshot*); a probe replays just the
   added operation's sets against the merged streams and patches the
   snapshot — the rest of the resident simulation is reused verbatim.

3. **The schedulers probe in batches.**  RMCA cluster ranking asks for
   every candidate cluster's ``resident + [op]`` probe at once, and the
   binding-prefetch latency test re-asks one of them.
   :meth:`IncrementalCME.probe_clusters` answers the whole sweep in one
   call; the per-probe snapshots it leaves behind turn the follow-up
   ``miss_ratio`` calls of ``_assumed_latency`` into memo hits.

Every memo key is derived from :func:`~repro.cme.trace.loop_fingerprint`
— never ``id(loop)`` — so entries can outlive the loop object, survive
pickling, and be shared across processes without aliasing hazards.

Exactness is enforced by ``tests/test_cme_incremental.py``, which checks
estimates against the from-scratch reference across generated kernels,
op subsets, geometries and probe orders; `tests/test_scheduler_equivalence.py`
checks that full schedules are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..ir.loop import Loop
from ..ir.operations import Operation
from ..machine.config import CacheConfig
from .sampling import MissEstimate
from .trace import GeometryTrace, TraceStore, loop_fingerprint

__all__ = ["IncrementalCME", "replay_set_events"]


def replay_set_events(
    events: Sequence[Tuple[int, int, int, str]], associativity: int
) -> Dict[str, int]:
    """LRU-replay one cache set's access stream; misses per operation.

    ``events`` are ``(point, position, line, op_name)`` tuples in global
    access order (``(point, position)``-ascending).  The replay is the
    per-set restriction of
    :class:`~repro.cme.sampling._FunctionalCache`: within one set,
    distinct lines are distinct tags, so LRU over lines is LRU over
    tags.
    """
    misses: Dict[str, int] = {}
    if associativity == 1:
        # Direct-mapped fast path (the paper's caches): one resident
        # line per set, so an access misses iff the line changed.
        resident = None
        for _point, _position, line, name in events:
            if line != resident:
                misses[name] = misses.get(name, 0) + 1
                resident = line
        return misses
    ways: List[int] = []  # resident lines, most recently used last
    for _point, _position, line, name in events:
        if line in ways:
            ways.remove(line)
            ways.append(line)
            continue
        misses[name] = misses.get(name, 0) + 1
        ways.append(line)
        if len(ways) > associativity:
            ways.pop(0)
    return misses


@dataclass
class _Snapshot:
    """Memoized estimate of one reference set plus its per-set split.

    ``misses_by_set`` maps each touched cache set to that set's per-op
    miss counts — the decomposition a later probe patches when one
    operation is added to the set.
    """

    estimate: MissEstimate
    misses_by_set: Dict[int, Dict[str, int]]


class IncrementalCME:
    """Incremental, batched locality analyzer (sampled CME semantics).

    Bit-identical to :class:`~repro.cme.sampling.SamplingCME` at equal
    ``max_points`` — deliberately so: it shares the ``"sampling"``
    fingerprint, because two analyzers with equal fingerprints must (and
    do) drive the schedulers to identical decisions, which keeps every
    existing grid cache entry and golden recording valid.

    Parameters
    ----------
    max_points:
        Maximum iteration points simulated per query (the sampling
        window of the reference estimator).
    traces:
        Optional shared :class:`~repro.cme.trace.TraceStore`; analyzers
        given the same store share address traces.
    """

    name = "sampling"

    def __init__(
        self, max_points: int = 2048, traces: Optional[TraceStore] = None
    ):
        if max_points < 1:
            raise ValueError("max_points must be positive")
        self.max_points = max_points
        self.traces = traces if traces is not None else TraceStore()
        self._snapshots: Dict[Tuple, _Snapshot] = {}
        self._set_memo: Dict[Tuple, Dict[str, int]] = {}
        # loop_fp -> program positions of its memory ops; the one piece
        # of trace state the memo-hit fast path needs.
        self._positions: Dict[str, Dict[str, int]] = {}
        self._counters: Dict[str, int] = {
            "probes": 0,
            "memo_hits": 0,
            "extensions": 0,
            "full_replays": 0,
            "batched_calls": 0,
            "sets_replayed": 0,
            "set_memo_hits": 0,
        }

    def __getstate__(self):
        # Ship the content-addressed traces (expensive to rebuild, safe
        # to share) but not the probe memos: they grow with every
        # reference set ever probed, and grid._compute re-pickles the
        # analyzer into every worker at each pool creation — workers
        # rebuild snapshots from the traces in microseconds.
        state = self.__dict__.copy()
        state["_snapshots"] = {}
        state["_set_memo"] = {}
        return state

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def telemetry(self) -> Dict[str, int]:
        """Counter snapshot (probe/memo/replay activity + store sizes)."""
        data = dict(self._counters)
        data["address_traces"] = len(self.traces)
        data["snapshots"] = len(self._snapshots)
        return data

    def prime(self, loop: Loop) -> None:
        """Pre-build the loop's address trace (cheap, idempotent).

        The grid calls this before process fan-out so pickled analyzers
        ship to every worker with warm traces.
        """
        self.traces.address_trace(loop, self.max_points)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        loop: Loop,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> MissEstimate:
        """Miss statistics for ``ops`` sharing one cache over ``loop``."""
        return self._probe(loop, ops, cache)

    def probe_clusters(
        self,
        loop: Loop,
        op: Operation,
        residents: Sequence[Sequence[Operation]],
        caches: Sequence[CacheConfig],
    ) -> List[MissEstimate]:
        """All clusters' ``resident + [op]`` probes, one batched sweep.

        Returns one estimate per ``(residents[k], caches[k])`` pair.
        The snapshots this leaves behind make the scheduler's follow-up
        ``miss_count``/``miss_ratio`` calls memo hits.
        """
        self._counters["batched_calls"] += 1
        return [
            self._probe(loop, (*resident, op), cluster_cache, hint=op.name)
            for resident, cluster_cache in zip(residents, caches)
        ]

    # ------------------------------------------------------------------
    # LocalityAnalyzer protocol
    # ------------------------------------------------------------------
    def miss_count(
        self,
        loop: Loop,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        """Estimated misses per simulated window for a reference set."""
        return float(self._probe(loop, ops, cache).total_misses)

    def miss_ratio(
        self,
        loop: Loop,
        op: Operation,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        """Miss ratio of ``op`` when co-located with ``ops`` in one cache."""
        return self._probe(loop, ops, cache, hint=op.name).miss_ratio(op.name)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _key(
        self, loop_fp: str, names: FrozenSet[str], cache: CacheConfig
    ) -> Tuple:
        return (
            loop_fp,
            names,
            cache.size,
            cache.line_size,
            cache.associativity,
        )

    def _probe(
        self,
        loop: Loop,
        ops: Sequence[Operation],
        cache: CacheConfig,
        hint: Optional[str] = None,
    ) -> MissEstimate:
        """Estimate for ``ops``; ``hint`` names the most recently added
        operation, tried first when searching for a resident snapshot to
        extend."""
        loop_fp = loop_fingerprint(loop)
        # The program positions alone resolve the memo key; traces are
        # only materialized on a miss (memo hits are the scheduler's
        # common case).
        positions = self._positions.get(loop_fp)
        if positions is None:
            positions = self.traces.address_trace(loop, self.max_points).positions
            self._positions[loop_fp] = positions
        # Mirror the reference: only memory ops present in this loop
        # participate.  ``positions`` holds exactly the loop's memory
        # ops (names are unique within a loop), so membership alone is
        # the filter.
        names = frozenset(
            name
            for name in (op.name for op in ops)
            if name in positions
        )
        key = self._key(loop_fp, names, cache)
        snapshot = self._snapshots.get(key)
        if snapshot is not None:
            self._counters["memo_hits"] += 1
            return snapshot.estimate
        self._counters["probes"] += 1
        geometry = self.traces.geometry_trace(loop, self.max_points, cache)
        ordered = sorted(names, key=positions.__getitem__)
        if not names:
            snapshot = _Snapshot(MissEstimate(), {})
        else:
            snapshot = self._extend_or_replay(
                loop_fp, geometry, cache, names, ordered, hint
            )
        self._snapshots[key] = snapshot
        return snapshot.estimate

    def _extend_or_replay(
        self,
        loop_fp: str,
        geometry: GeometryTrace,
        cache: CacheConfig,
        names: FrozenSet[str],
        ordered: List[str],
        hint: Optional[str],
    ) -> _Snapshot:
        """Extend a resident snapshot when one exists, else full replay."""
        candidates = [hint] if hint in names else []
        candidates.extend(name for name in ordered if name != hint)
        for added in candidates:
            rest = names - {added}
            if rest:
                base = self._snapshots.get(self._key(loop_fp, rest, cache))
                if base is None:
                    continue
            else:
                base = _Snapshot(MissEstimate(), {})
            self._counters["extensions"] += 1
            return self._extend(loop_fp, geometry, cache, ordered, base, added)
        self._counters["full_replays"] += 1
        return self._full_replay(loop_fp, geometry, cache, ordered)

    def _extend(
        self,
        loop_fp: str,
        geometry: GeometryTrace,
        cache: CacheConfig,
        ordered: List[str],
        base: _Snapshot,
        added: str,
    ) -> _Snapshot:
        """Patch ``base`` (the snapshot without ``added``) into the full
        estimate: only the sets ``added`` touches are replayed."""
        misses = {name: 0 for name in ordered}
        misses.update(base.estimate.misses)
        misses_by_set = dict(base.misses_by_set)
        for cache_set in geometry.sets_of(added):
            counts = self._replay_set(loop_fp, geometry, cache, cache_set, ordered)
            stale = misses_by_set.get(cache_set)
            if stale is not None:
                for name, count in stale.items():
                    misses[name] -= count
            for name, count in counts.items():
                misses[name] += count
            misses_by_set[cache_set] = counts
        return self._snapshot(geometry, ordered, misses, misses_by_set)

    def _full_replay(
        self,
        loop_fp: str,
        geometry: GeometryTrace,
        cache: CacheConfig,
        ordered: List[str],
    ) -> _Snapshot:
        """Per-set replay of the whole reference set (no usable base)."""
        touched: Dict[int, None] = {}
        for name in ordered:
            for cache_set in geometry.sets_of(name):
                touched.setdefault(cache_set, None)
        misses = {name: 0 for name in ordered}
        misses_by_set: Dict[int, Dict[str, int]] = {}
        for cache_set in touched:
            counts = self._replay_set(loop_fp, geometry, cache, cache_set, ordered)
            misses_by_set[cache_set] = counts
            for name, count in counts.items():
                misses[name] += count
        return self._snapshot(geometry, ordered, misses, misses_by_set)

    def _snapshot(
        self,
        geometry: GeometryTrace,
        ordered: List[str],
        misses: Dict[str, int],
        misses_by_set: Dict[int, Dict[str, int]],
    ) -> _Snapshot:
        n_points = geometry.trace.n_points
        estimate = MissEstimate(
            accesses={name: n_points for name in ordered},
            misses=misses,
        )
        return _Snapshot(estimate=estimate, misses_by_set=misses_by_set)

    def _replay_set(
        self,
        loop_fp: str,
        geometry: GeometryTrace,
        cache: CacheConfig,
        cache_set: int,
        ordered: List[str],
    ) -> Dict[str, int]:
        """Miss counts per op for one cache set under ``ordered``'s
        merged access stream (memoized on the participating subset)."""
        participants = [
            name for name in ordered if cache_set in geometry.sets_of(name)
        ]
        key = (
            loop_fp,
            geometry.line_size,
            geometry.n_sets,
            cache.associativity,
            cache_set,
            frozenset(participants),
        )
        counts = self._set_memo.get(key)
        if counts is not None:
            self._counters["set_memo_hits"] += 1
            return counts
        self._counters["sets_replayed"] += 1
        if len(participants) == 1:
            events = geometry.sets_of(participants[0])[cache_set]
        else:
            events = []
            for name in participants:
                events.extend(geometry.sets_of(name)[cache_set])
            events.sort()
        counts = replay_set_events(events, cache.associativity)
        self._set_memo[key] = counts
        return counts
