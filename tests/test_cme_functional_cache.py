"""Direct unit tests for the functional cache model and its per-set twin.

``_FunctionalCache`` is the reference cache the sampled CME sweeps; the
incremental engine replays the same policy one set at a time
(:func:`repro.cme.incremental.replay_set_events`).  This suite pins the
model down directly — tag/index extraction, LRU eviction order,
set-associative wraparound, cross-set independence — and holds the two
implementations together on random streams.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cme.incremental import replay_set_events
from repro.cme.sampling import _FunctionalCache
from repro.machine.config import CacheConfig


def _cache(size=1024, line=32, assoc=1):
    return _FunctionalCache(
        CacheConfig(size=size, line_size=line, associativity=assoc)
    )


# ---------------------------------------------------------------------------
# Tag / index extraction
# ---------------------------------------------------------------------------
class TestGeometryExtraction:
    @pytest.mark.parametrize(
        "size,line,assoc", [(1024, 32, 1), (2048, 64, 2), (512, 16, 4)]
    )
    def test_tag_and_index_reconstruct_the_line_address(
        self, size, line, assoc
    ):
        config = CacheConfig(size=size, line_size=line, associativity=assoc)
        for address in range(0, 8 * size, 24):
            set_index = config.set_index(address)
            tag = config.tag(address)
            assert 0 <= set_index < config.n_sets
            line_address = (tag * config.n_sets + set_index) * line
            assert line_address == config.line_address(address)

    def test_addresses_one_image_apart_share_the_set(self):
        config = CacheConfig(size=1024, line_size=32)
        image = config.n_sets * config.line_size
        for address in (0, 40, 1000):
            assert config.set_index(address) == config.set_index(
                address + image
            )
            assert config.tag(address) != config.tag(address + image)

    def test_associativity_shrinks_the_set_count(self):
        direct = CacheConfig(size=1024, line_size=32, associativity=1)
        two_way = CacheConfig(size=1024, line_size=32, associativity=2)
        assert two_way.n_sets == direct.n_sets // 2
        assert two_way.n_lines == direct.n_lines


# ---------------------------------------------------------------------------
# Replacement policy
# ---------------------------------------------------------------------------
class TestLRUPolicy:
    def test_eviction_follows_recency_not_insertion(self):
        cache = _cache(assoc=4)
        stride = 1024  # same set, distinct tags
        for way in range(4):
            assert not cache.access(way * stride)
        cache.access(0)  # refresh the oldest line
        assert not cache.access(4 * stride)  # evicts line 1 (now LRU)
        assert cache.access(0)
        assert not cache.access(1 * stride)

    def test_wraparound_at_exact_associativity(self):
        cache = _cache(assoc=2)
        cache.access(0)
        cache.access(1024)
        assert cache.access(0) and cache.access(1024)  # both resident
        cache.access(2048)  # third tag wraps the 2-way set
        assert not cache.access(0)  # 0 was LRU after the re-touches

    def test_hit_refreshes_recency(self):
        cache = _cache(assoc=2)
        cache.access(0)
        cache.access(1024)
        cache.access(0)      # 1024 becomes LRU
        cache.access(2048)   # evicts 1024
        assert cache.access(0)
        assert not cache.access(1024)

    def test_sets_are_independent(self):
        cache = _cache(size=256, line=32, assoc=1)
        # Thrash set 0 with conflicting lines; set 1 must keep its line.
        cache.access(32)  # set 1
        for tag in range(6):
            cache.access(tag * 256)
        assert cache.access(32)

    def test_within_line_offsets_hit(self):
        cache = _cache(line=32)
        assert not cache.access(64)
        for offset in range(32):
            assert cache.access(64 + offset)


# ---------------------------------------------------------------------------
# Equivalence with the incremental engine's per-set replay
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    assoc=st.sampled_from([1, 2, 4]),
    n_lines=st.integers(1, 12),
    n_ops=st.integers(1, 4),
)
def test_per_set_replay_matches_functional_cache(seed, assoc, n_lines, n_ops):
    """Random single-set access streams: `replay_set_events` counts
    exactly the misses `_FunctionalCache` observes."""
    rng = random.Random(seed)
    config = CacheConfig(size=32 * 8 * assoc, line_size=32, associativity=assoc)
    cache = _FunctionalCache(config)
    ops = [f"op{i}" for i in range(n_ops)]
    events = []
    expected = {}
    image = config.n_sets * config.line_size
    for step in range(40):
        line_choice = rng.randrange(n_lines)
        name = ops[rng.randrange(n_ops)]
        address = line_choice * image  # always set 0, tag = line_choice
        line = address // config.line_size
        events.append((step, 0, line, name))
        if not cache.access(address):
            expected[name] = expected.get(name, 0) + 1
    assert replay_set_events(events, assoc) == expected
