"""Unit tests for the SMS node ordering."""

import pytest

from repro.ir import LoopBuilder
from repro.machine import unified
from repro.scheduler.mii import compute_mii
from repro.scheduler.ordering import compute_times, sms_order


def _chain():
    b = LoopBuilder("chain")
    i = b.dim("i", 0, 16)
    a = b.array("A", (32,))
    v = b.load(a, [b.aff(i=1)], name="ld")
    t = b.fmul(v, v, name="mul")
    u = b.fadd(t, v, name="add")
    b.store(a, [b.aff(i=1)], u, name="st")
    return b.build()


def _diamond():
    b = LoopBuilder("diamond")
    i = b.dim("i", 0, 16)
    a = b.array("A", (64,))
    v = b.load(a, [b.aff(i=1)], name="ld")
    l = b.fmul(v, v, name="left")
    r = b.fadd(v, v, name="right")
    m = b.fsub(l, r, name="merge")
    b.store(a, [b.aff(i=1)], m, name="st")
    return b.build()


def _with_recurrence():
    b = LoopBuilder("rec")
    i = b.dim("i", 0, 16)
    a = b.array("A", (32,))
    v = b.load(a, [b.aff(i=1)], name="ld")
    acc = b.fadd(b.prev_value("acc", 1), v, dest="acc", name="accum")
    w = b.fmul(v, v, name="independent")
    b.store(a, [b.aff(i=1)], w, name="st")
    return b.build()


class TestComputeTimes:
    def test_asap_respects_latencies(self):
        kernel = _chain()
        machine = unified()
        times = compute_times(kernel.ddg, machine, ii=1)
        assert times.asap["ld"] == 0
        assert times.asap["mul"] == 2     # load latency
        assert times.asap["add"] == 4     # + fmul latency
        assert times.asap["st"] == 6

    def test_alap_leq_horizon(self):
        kernel = _diamond()
        times = compute_times(kernel.ddg, unified(), ii=1)
        horizon = times.critical_path_length()
        assert all(alap <= horizon for alap in times.alap.values())

    def test_mobility_zero_on_critical_path(self):
        kernel = _chain()
        times = compute_times(kernel.ddg, unified(), ii=1)
        assert all(times.mobility[n] == 0 for n in ("ld", "mul", "add", "st"))

    def test_mobility_positive_off_critical_path(self):
        kernel = _diamond()
        times = compute_times(kernel.ddg, unified(), ii=1)
        # FADD and FMUL share the same latency here, so introduce slack via
        # the merge's other input: right (fadd, latency 2) == left; use the
        # general invariant instead: mobility >= 0 and asap <= alap.
        for node in kernel.ddg.nodes():
            assert times.mobility[node] >= 0
            assert times.asap[node] <= times.alap[node]

    def test_loop_carried_edges_relaxed_by_ii(self):
        kernel = _with_recurrence()
        t_small = compute_times(kernel.ddg, unified(), ii=2)
        # At II = RecMII the self-edge contributes latency - ii = 0.
        assert t_small.asap["accum"] >= 0


class TestSmsOrder:
    @pytest.mark.parametrize("factory", [_chain, _diamond, _with_recurrence])
    def test_permutation(self, factory):
        kernel = factory()
        machine = unified()
        mii, _, _ = compute_mii(kernel.ddg, machine)
        order = sms_order(kernel.ddg, machine, mii)
        assert sorted(order) == sorted(kernel.ddg.nodes())

    @pytest.mark.parametrize("factory", [_chain, _diamond, _with_recurrence])
    def test_neighbourhood_property(self, factory):
        """Every node after the first has a placed neighbour when one exists
        — the property the paper's ordering is designed for (it avoids
        placing a node whose predecessors AND successors are both already
        ordered unless unavoidable)."""
        kernel = factory()
        machine = unified()
        mii, _, _ = compute_mii(kernel.ddg, machine)
        order = sms_order(kernel.ddg, machine, mii)
        placed = {order[0]}
        both_sided = 0
        for node in order[1:]:
            preds = kernel.ddg.predecessors(node) & placed
            succs = kernel.ddg.successors(node) & placed
            if preds and succs:
                both_sided += 1
            placed.add(node)
        # The chain/diamond graphs admit an ordering with at most one
        # both-sided node (the merge point).
        assert both_sided <= 1

    def test_recurrence_nodes_ordered_before_rest(self):
        kernel = _with_recurrence()
        machine = unified()
        mii, _, _ = compute_mii(kernel.ddg, machine)
        order = sms_order(kernel.ddg, machine, mii)
        # The accumulation recurrence (and its feeding path) precedes the
        # independent multiply chain.
        assert order.index("accum") < order.index("independent")

    def test_deterministic(self):
        kernel = _diamond()
        machine = unified()
        mii, _, _ = compute_mii(kernel.ddg, machine)
        assert sms_order(kernel.ddg, machine, mii) == sms_order(
            kernel.ddg, machine, mii
        )

    def test_single_node(self):
        b = LoopBuilder("one")
        i = b.dim("i", 0, 4)
        a = b.array("A", (8,))
        b.load(a, [b.aff(i=1)], name="only")
        kernel = b.build()
        assert sms_order(kernel.ddg, unified(), 1) == ["only"]
