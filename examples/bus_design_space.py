#!/usr/bin/env python
"""Bus design-space exploration (a miniature of Figures 5 and 6).

Sweeps the memory-bus count and latency on the 4-cluster machine for a
subset of the SPECfp95-style suite and prints the normalized cycles per
scheduler and threshold, mirroring the structure of the paper's Section 5
evaluation.  The full sweeps live in ``benchmarks/``; this example keeps
the run under a minute.

Usage::

    python examples/bus_design_space.py [--jobs N]

All cells run through one :class:`ExperimentGrid`, so the sweep can fan
out over worker processes and never recomputes a shared cell.
"""

import argparse

from repro import BusConfig, SamplingCME, four_cluster
from repro.harness import (
    ExperimentGrid,
    format_table,
    suite_bar,
    unified_reference,
)
from repro.workloads import spec_suite


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    kernels = spec_suite(["tomcatv", "hydro2d", "turb3d"])
    grid = ExperimentGrid(
        locality=SamplingCME(max_points=512), n_jobs=args.jobs
    )
    reference = unified_reference(kernels, grid=grid)

    print("kernels:", ", ".join(k.name for k in kernels))
    print("reference (unified @ threshold 1.00):", reference)
    print()

    rows = []
    register_bus = BusConfig(count=2, latency=1)
    for nmb in (1, 2):
        for lmb in (1, 4):
            machine = four_cluster(
                register_bus=register_bus,
                memory_bus=BusConfig(count=nmb, latency=lmb),
            )
            for scheduler in ("baseline", "rmca"):
                for threshold in (1.0, 0.0):
                    bar, _records = suite_bar(
                        f"NMB={nmb},LMB={lmb}",
                        kernels,
                        machine,
                        scheduler,
                        threshold,
                        None,
                        reference,
                        grid=grid,
                    )
                    rows.append(
                        (
                            bar.group,
                            scheduler,
                            threshold,
                            bar.norm_compute,
                            bar.norm_stall,
                            bar.norm_total,
                        )
                    )

    print(
        format_table(
            ["bus config", "scheduler", "threshold", "compute", "stall", "total"],
            rows,
        )
    )
    print()
    print(
        "RMCA needs fewer inter-cluster memory transfers, so its advantage"
        " grows as buses get scarcer or slower — the Figure 6 story."
    )
    stats = grid.stats
    print(
        f"grid: {stats.requested} cells requested, {stats.computed} "
        f"computed, {stats.memory_hits + stats.disk_hits} cached"
    )


if __name__ == "__main__":
    main()
