"""Section 5.1 workload statistics.

The paper restricts its measurements to innermost loops with more than
four iterations and reports that such loops cover ~90% of executed
instructions.  This benchmark prints the equivalent statistics for our
synthetic suite and asserts the selection criterion plus basic
representativeness properties.
"""

from repro.harness.report import format_table
from repro.workloads import spec_suite

from conftest import save_and_print


def _stats():
    rows = []
    for kernel in spec_suite():
        loop = kernel.loop
        stats = loop.stats()
        mem_fraction = stats["memory_operations"] / stats["operations"]
        rows.append(
            (
                kernel.name,
                stats["dims"],
                stats["operations"],
                stats["memory_operations"],
                f"{mem_fraction:.0%}",
                stats["niter"],
                stats["ntimes"],
                kernel.ddg.has_recurrences(),
            )
        )
    return rows


def test_workload_stats(benchmark, results_dir):
    rows = benchmark.pedantic(_stats, rounds=1, iterations=1)
    table = format_table(
        ["kernel", "dims", "ops", "mem ops", "mem fraction",
         "NITER", "NTIMES", "recurrence"],
        rows,
    )
    save_and_print(results_dir, "workload_stats", table)

    assert len(rows) == 8
    for row in rows:
        name, dims, ops, mem_ops, _frac, niter, ntimes, _rec = row
        # The paper's selection criterion: innermost loops with more than
        # four iterations.
        assert niter > 4, name
        # Every kernel mixes memory and arithmetic work.
        assert 0 < mem_ops < ops, name

    # The suite covers the structural variety the evaluation relies on.
    assert any(row[7] for row in rows), "no recurrence kernels"
    assert any(row[1] == 3 for row in rows), "no 3-D nest"
    assert any(row[1] == 1 for row in rows), "no 1-D loop"
