"""Modulo-scheduling core: MII, ordering, MRT, Baseline and RMCA."""

from .base import CommunicationAwareScheduler, SchedulerConfig
from .baseline import BaselineScheduler
from .expansion import ExpandedLoop, OpInstance, expand
from .lifetimes import cluster_pressures, max_live, pressure_ok
from .mii import compute_mii, rec_mii, res_mii
from .mrt import ModuloReservationTable, Transaction
from .mve import AllocationError, RegisterAssignment, allocate_registers
from .ordering import compute_times, sms_order
from .result import Communication, Placement, Schedule, SchedulingError
from .rmca import RMCAScheduler

__all__ = [
    "AllocationError",
    "BaselineScheduler",
    "Communication",
    "CommunicationAwareScheduler",
    "ExpandedLoop",
    "ModuloReservationTable",
    "OpInstance",
    "Placement",
    "RegisterAssignment",
    "RMCAScheduler",
    "Schedule",
    "SchedulerConfig",
    "SchedulingError",
    "Transaction",
    "allocate_registers",
    "cluster_pressures",
    "compute_mii",
    "compute_times",
    "expand",
    "max_live",
    "pressure_ok",
    "rec_mii",
    "res_mii",
    "sms_order",
]
