"""Per-cluster L1 data cache: MSI line states plus a non-blocking MSHR.

Each cluster owns one of these (Section 2.1): direct-mapped (the model
also supports set-associativity), non-blocking with a fixed number of
MSHR entries, kept coherent with the other clusters through the snoopy
MSI protocol implemented by :mod:`repro.memory.coherence`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..machine.config import CacheConfig

__all__ = ["LineState", "CacheLine", "MSHR", "ClusterCache"]


class LineState(enum.Enum):
    """MSI coherence states."""

    MODIFIED = "M"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CacheLine:
    """One resident cache line."""

    tag: int
    state: LineState


class MSHR:
    """Miss information/status holding registers (lockup-free cache [12]).

    Each outstanding miss holds one entry from allocation until the fill
    completes.  When all entries are busy a new miss must wait — the
    NC_WaitingEntry term of the paper's latency formula.
    """

    def __init__(self, n_entries: int):
        if n_entries < 1:
            raise ValueError("MSHR needs at least one entry")
        self.n_entries = n_entries
        self._release_times: List[int] = []
        self.total_wait_cycles = 0
        self.peak_occupancy = 0

    def occupancy(self, time: int) -> int:
        """Entries still held at ``time``."""
        self._release_times = [t for t in self._release_times if t > time]
        return len(self._release_times)

    def allocate(self, time: int) -> int:
        """Allocate an entry; returns the time the allocation succeeds."""
        in_use = sorted(t for t in self._release_times if t > time)
        # Entries released at or before ``time`` can never constrain this
        # or any later allocation (issue times are non-decreasing), so
        # drop them — the list stays at MSHR size instead of growing with
        # every miss of the run.
        self._release_times = in_use
        if len(in_use) < self.n_entries:
            grant = time
        else:
            # Wait for the earliest entry to free up (repeatedly, in case
            # several waiters pile up — conservatively take the k-th).
            grant = in_use[len(in_use) - self.n_entries]
        self.total_wait_cycles += grant - time
        return grant

    def hold(self, until: int) -> None:
        """Record that the just-allocated entry is held until ``until``."""
        self._release_times.append(until)
        self.peak_occupancy = max(self.peak_occupancy, len(self._release_times))

    def reset_stats(self) -> None:
        self.total_wait_cycles = 0
        self.peak_occupancy = 0

    def pending_signature(self, base: int) -> Tuple[int, ...]:
        """Entries still held after ``base``, as base-relative times.

        Releases at or before ``base`` can never delay an allocation
        issued at ``base`` or later, so they are behaviourally absent.
        """
        return tuple(sorted(t - base for t in self._release_times if t > base))

    def translate(self, time_delta: int) -> None:
        """Shift every pending release by ``time_delta`` cycles."""
        if time_delta:
            self._release_times = [t + time_delta for t in self._release_times]


def _set_fragment(
    ways: List[CacheLine], index: int, n_sets: int, line_size: int
) -> Optional[tuple]:
    """Shift-invariant signature fragment of one cache set.

    ``(anchor tag, relative ways, live anchor tag, relative live ways,
    absolute invalid-line addresses)`` — everything
    :meth:`ClusterCache.state_signature` needs to serve both the full
    and the ``invalid_out`` probe shapes without walking the lines
    again.  ``None`` stands for an empty set.
    """
    if not ways:
        return None
    anchor = ways[0].tag
    rel = tuple((line.tag - anchor, line.state.value) for line in ways)
    live_anchor = None
    live_rel: Tuple[Tuple[int, str], ...] = ()
    invalid_addrs = []
    live = []
    for line in ways:
        if line.state is LineState.INVALID:
            invalid_addrs.append((line.tag * n_sets + index) * line_size)
        else:
            live.append(line)
    if live:
        live_anchor = live[0].tag
        live_rel = tuple(
            (line.tag - live_anchor, line.state.value) for line in live
        )
    return (anchor, rel, live_anchor, live_rel, tuple(invalid_addrs))


class ClusterCache:
    """Functional cache state (tags + MSI) of one cluster.

    Timing is orchestrated by the hierarchy; this class answers state
    queries and applies state transitions.
    """

    def __init__(self, config: CacheConfig, cluster_id: int):
        self.config = config
        self.cluster_id = cluster_id
        # set index -> ways (most recently used last)
        self._sets: Dict[int, List[CacheLine]] = {}
        self.mshr = MSHR(config.mshr_entries)
        # line address -> fill completion time (for secondary-miss merging)
        self.in_flight: Dict[int, int] = {}
        # Incremental-signature support: per-set fragments of the last
        # signature in shift-invariant (anchor-relative) form, plus the
        # set indices mutated since they were built.  A probe recomputes
        # only the dirty fragments, so its cost is O(sets touched since
        # the previous probe) instead of O(resident lines).
        self._set_frags: Dict[int, Optional[tuple]] = {}
        self._dirty_sets: set = set()

    # ------------------------------------------------------------------
    def _lookup(self, address: int) -> Optional[CacheLine]:
        index = self.config.set_index(address)
        tag = self.config.tag(address)
        for line in self._sets.get(index, []):
            if line.tag == tag and line.state is not LineState.INVALID:
                return line
        return None

    def state_of(self, address: int) -> LineState:
        line = self._lookup(address)
        return line.state if line else LineState.INVALID

    def is_hit(self, address: int, is_store: bool) -> bool:
        """Can this access complete locally without a bus transaction?"""
        state = self.state_of(address)
        if is_store:
            return state is LineState.MODIFIED
        return state in (LineState.MODIFIED, LineState.SHARED)

    def touch(self, address: int) -> None:
        """Refresh LRU position of a resident line."""
        index = self.config.set_index(address)
        tag = self.config.tag(address)
        ways = self._sets.get(index, [])
        for pos, line in enumerate(ways):
            if line.tag == tag:
                if pos != len(ways) - 1:
                    ways.append(ways.pop(pos))
                    self._dirty_sets.add(index)
                return

    # ------------------------------------------------------------------
    def fill(
        self, address: int, state: LineState
    ) -> Optional[Tuple[int, LineState]]:
        """Install a line; returns ``(victim_line_address, victim_state)``
        when a valid line was evicted (dirty victims need a writeback)."""
        index = self.config.set_index(address)
        tag = self.config.tag(address)
        ways = self._sets.setdefault(index, [])
        self._dirty_sets.add(index)
        for line in ways:
            if line.tag == tag:
                line.state = state
                self.touch(address)
                return None
        victim: Optional[Tuple[int, LineState]] = None
        live = [l for l in ways if l.state is not LineState.INVALID]
        if len(live) >= self.config.associativity:
            evicted = live[0]
            ways.remove(evicted)
            victim_addr = self._line_address(index, evicted.tag)
            victim = (victim_addr, evicted.state)
        ways.append(CacheLine(tag=tag, state=state))
        return victim

    def set_state(self, address: int, state: LineState) -> None:
        """Coherence transition on a resident line (no-op when absent)."""
        line = self._lookup(address)
        if line is not None:
            line.state = state
            self._dirty_sets.add(self.config.set_index(address))

    def invalidate(self, address: int) -> bool:
        """Drop a line (snoop-invalidate); returns True when it was M."""
        line = self._lookup(address)
        if line is None:
            return False
        was_dirty = line.state is LineState.MODIFIED
        line.state = LineState.INVALID
        self._dirty_sets.add(self.config.set_index(address))
        return was_dirty

    def _line_address(self, set_index: int, tag: int) -> int:
        return (
            tag * self.config.n_sets + set_index
        ) * self.config.line_size

    # ------------------------------------------------------------------
    def state_signature(
        self,
        base: int,
        addr_shift: int = 0,
        invalid_out: Optional[List[int]] = None,
        live_prune: Optional[object] = None,
        live_out: Optional[List[Tuple[int, int, str]]] = None,
    ) -> Tuple[object, ...]:
        """Canonical description of everything that can affect a future
        access, normalized for time and address translation.

        Times are made relative to ``base`` (completions at or before it
        are dropped: the hierarchy ignores them).  Line addresses are
        shifted down by ``addr_shift`` and set indices rotated by the
        matching amount, so two states reached by executions whose whole
        address stream differs by ``addr_shift`` compare equal.  The
        caller must ensure ``addr_shift`` is a multiple of the line size
        (otherwise the shift does not commute with line/set mapping).

        INVALID lines are included by default: a matching tag in state I
        is revived by :meth:`fill` without an eviction, so presence of
        such lines is genuine state.  That is also their *only* effect —
        lookups skip them, eviction only considers live lines, and their
        list position is never read — so a caller that proves the future
        access stream never touches an invalid line's address may compare
        states without them: passing ``invalid_out`` strips invalid lines
        from the signature and appends their *absolute* (unshifted) line
        addresses to the list, leaving the proof obligation to the
        caller.

        Live (M/S) lines carry more behaviour than invalid ones — they
        can be hit, supply snoops, and participate in eviction choices
        within their set — so they may only be stripped under a stronger
        proof: ``live_prune(cluster_id, line_address)`` must return True
        only when the future access stream provably (a) never touches
        the line's address from *any* cluster and (b) never maps an
        access from *this* cluster into the line's set (so the line can
        never be hit, snooped, or weighed in an eviction).  Matching
        lines are stripped from the signature and appended to
        ``live_out`` as ``(cluster id, absolute line address, state)``;
        the proof obligation is entirely the caller's.

        Each set contributes one ``(rotated index, shifted anchor
        address, relative ways)`` triple, where the anchor is the first
        emitted line and the other ways are recorded as whole-image tag
        deltas against it.  Two states compare equal under this encoding
        exactly when they do under a per-line shifted-address walk (the
        anchor pins the set's absolute position modulo the shift; the
        deltas pin everything else), but the relative part is
        shift-invariant — which is what lets fragments be cached across
        probes with different ``addr_shift``.  The default path serves
        probes from cached per-set fragments, recomputing only sets
        mutated since the previous probe; ``live_prune`` callers take
        the full reference walk (:meth:`_signature_walk`), since the
        predicate's verdict can change between probes with no cache
        mutation at all.
        """
        if live_prune is not None:
            return self._signature_walk(
                base, addr_shift, invalid_out, live_prune, live_out
            )
        config = self.config
        n_sets = config.n_sets
        line_size = config.line_size
        rotation = (addr_shift // line_size) % n_sets
        frags = self._set_frags
        dirty = self._dirty_sets
        sets = []
        for index, ways in self._sets.items():
            if index in dirty or index not in frags:
                frags[index] = _set_fragment(ways, index, n_sets, line_size)
            frag = frags[index]
            if frag is None:
                continue
            anchor_tag, rel, live_anchor, live_rel, invalid_addrs = frag
            if invalid_out is not None:
                if invalid_addrs:
                    invalid_out.extend(invalid_addrs)
                if live_anchor is None:
                    continue
                anchor = (live_anchor * n_sets + index) * line_size
                sets.append(
                    ((index - rotation) % n_sets, anchor - addr_shift, live_rel)
                )
            else:
                anchor = (anchor_tag * n_sets + index) * line_size
                sets.append(
                    ((index - rotation) % n_sets, anchor - addr_shift, rel)
                )
        dirty.clear()
        sets.sort()
        in_flight = self.in_flight
        if in_flight:
            # Completions at or before ``base`` are behaviourally absent
            # (issue times are non-decreasing and the hierarchy treats a
            # stale completion as no completion), so drop them for good:
            # the dict would otherwise grow with every miss of the run.
            # Deleting in place keeps access_batch's table aliases valid.
            expired = [a for a, t in in_flight.items() if t <= base]
            for address in expired:
                del in_flight[address]
        fills = tuple(
            sorted(
                (address - addr_shift, t - base)
                for address, t in in_flight.items()
            )
        )
        return (tuple(sets), fills, self.mshr.pending_signature(base))

    def _signature_walk(
        self,
        base: int,
        addr_shift: int = 0,
        invalid_out: Optional[List[int]] = None,
        live_prune: Optional[object] = None,
        live_out: Optional[List[Tuple[int, int, str]]] = None,
    ) -> Tuple[object, ...]:
        """From-scratch reference walk behind :meth:`state_signature`.

        Produces bit-identical output to the fragment-served fast path
        (the incremental-signature property tests pin this), and
        additionally supports ``live_prune``.
        """
        config = self.config
        n_sets = config.n_sets
        image = n_sets * config.line_size
        rotation = (addr_shift // config.line_size) % n_sets
        sets = []
        for index, ways in self._sets.items():
            if not ways:
                continue
            kept = []
            for line in ways:
                address = self._line_address(index, line.tag)
                if invalid_out is not None and line.state is LineState.INVALID:
                    invalid_out.append(address)
                    continue
                if (
                    live_prune is not None
                    and line.state is not LineState.INVALID
                    and live_prune(self.cluster_id, address)
                ):
                    if live_out is not None:
                        live_out.append(
                            (self.cluster_id, address, line.state.value)
                        )
                    continue
                kept.append((address, line.state.value))
            if not kept:
                continue
            anchor = kept[0][0]
            rel = tuple(
                ((address - anchor) // image, state) for address, state in kept
            )
            sets.append(((index - rotation) % n_sets, anchor - addr_shift, rel))
        sets.sort()
        fills = tuple(
            sorted(
                (address - addr_shift, t - base)
                for address, t in self.in_flight.items()
                if t > base
            )
        )
        return (tuple(sets), fills, self.mshr.pending_signature(base))

    def invalidate_fragments(self) -> None:
        """Drop every cached signature fragment (full recompute next probe).

        The one hook for wholesale-rebinding mutations (``translate``,
        ``clear``, warm-state restore) and for tests that poke ``_sets``
        directly.
        """
        self._set_frags.clear()
        self._dirty_sets.clear()

    def translate(self, time_delta: int, addr_shift: int) -> None:
        """Shift the whole cache state by ``addr_shift`` bytes and
        ``time_delta`` cycles.

        The inverse-direction companion of :meth:`state_signature`'s
        normalization: after translation the cache behaves, for accesses
        issued ``time_delta`` later at addresses ``addr_shift`` higher,
        exactly as it would have before for the unshifted stream.
        ``addr_shift`` must be a multiple of the line size so the shift
        commutes with line/set mapping; LRU order and MSI states are
        preserved (lines of one set move to one set together, because
        their addresses differ by whole numbers of cache images).
        """
        if addr_shift:
            if addr_shift % self.config.line_size != 0:
                raise ValueError(
                    f"addr_shift {addr_shift} is not a multiple of the "
                    f"{self.config.line_size}-byte line size"
                )
            config = self.config
            new_sets: Dict[int, List[CacheLine]] = {}
            for index, ways in self._sets.items():
                if not ways:
                    continue
                shifted = [
                    self._line_address(index, line.tag) + addr_shift
                    for line in ways
                ]
                new_index = config.set_index(shifted[0])
                new_sets[new_index] = [
                    CacheLine(tag=config.tag(address), state=line.state)
                    for address, line in zip(shifted, ways)
                ]
            self._sets = new_sets
            self.invalidate_fragments()
        if addr_shift or time_delta:
            self.in_flight = {
                address + addr_shift: t + time_delta
                for address, t in self.in_flight.items()
            }
        self.mshr.translate(time_delta)

    def resident_lines(self) -> int:
        """Number of valid lines (test/debug helper)."""
        return sum(
            1
            for ways in self._sets.values()
            for line in ways
            if line.state is not LineState.INVALID
        )

    def clear(self) -> None:
        self._sets.clear()
        self.in_flight.clear()
        self.invalidate_fragments()
