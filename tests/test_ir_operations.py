"""Unit tests for repro.ir.operations."""

import pytest

from repro.ir.operations import FUType, OpClass, Operation


class TestOpClass:
    def test_every_class_maps_to_a_fu_type(self):
        for opclass in OpClass:
            assert isinstance(opclass.fu_type, FUType)

    def test_memory_classes(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.FADD.is_memory
        assert not OpClass.IADD.is_memory

    def test_memory_classes_use_memory_units(self):
        assert OpClass.LOAD.fu_type is FUType.MEMORY
        assert OpClass.STORE.fu_type is FUType.MEMORY

    def test_integer_classes_use_integer_units(self):
        for opclass in (OpClass.IADD, OpClass.ISUB, OpClass.IMUL,
                        OpClass.ICMP, OpClass.SHIFT):
            assert opclass.fu_type is FUType.INTEGER

    def test_fp_classes_use_fp_units(self):
        for opclass in (OpClass.FADD, OpClass.FSUB, OpClass.FMUL,
                        OpClass.FDIV, OpClass.FNEG):
            assert opclass.fu_type is FUType.FP

    def test_store_writes_no_register(self):
        assert not OpClass.STORE.writes_register

    def test_load_writes_register(self):
        assert OpClass.LOAD.writes_register
        assert OpClass.FADD.writes_register


class TestOperation:
    def test_load_requires_ref_index(self):
        with pytest.raises(ValueError, match="requires a ref_index"):
            Operation("ld", OpClass.LOAD, dest="v")

    def test_store_requires_ref_index(self):
        with pytest.raises(ValueError, match="requires a ref_index"):
            Operation("st", OpClass.STORE, srcs=("v",))

    def test_non_memory_rejects_ref_index(self):
        with pytest.raises(ValueError, match="cannot carry a ref_index"):
            Operation("add", OpClass.FADD, dest="v", ref_index=0)

    def test_store_cannot_write_register(self):
        with pytest.raises(ValueError, match="cannot write a register"):
            Operation("st", OpClass.STORE, dest="v", srcs=("x",), ref_index=0)

    def test_valid_load(self):
        op = Operation("ld", OpClass.LOAD, dest="v", ref_index=0)
        assert op.is_load
        assert op.is_memory
        assert not op.is_store
        assert op.fu_type is FUType.MEMORY

    def test_valid_store(self):
        op = Operation("st", OpClass.STORE, srcs=("v",), ref_index=1)
        assert op.is_store
        assert op.is_memory
        assert not op.is_load

    def test_arithmetic_defaults(self):
        op = Operation("add", OpClass.FADD, dest="v", srcs=("a", "b"))
        assert not op.is_memory
        assert op.srcs == ("a", "b")

    def test_operations_are_hashable_and_frozen(self):
        op = Operation("add", OpClass.FADD, dest="v")
        assert hash(op) == hash(Operation("add", OpClass.FADD, dest="v"))
        with pytest.raises(AttributeError):
            op.name = "other"

    def test_str_contains_name(self):
        op = Operation("mul7", OpClass.FMUL, dest="v", srcs=("a", "b"))
        assert "mul7" in str(op)
