"""Iteration-level steady-state detection: bit-identical equivalence
with exact simulation, detection/telemetry behaviour, and the memory
translation that keeps multi-entry runs exact.

Mirrors ``tests/test_simulator_steady_state.py`` one granularity down:
the load-bearing property is that ``steady="iteration"`` (and ``auto``,
which selects it for ``NTIMES=1`` loops) produces exactly the same
:meth:`SimulationResult.as_dict` and memory counters as ``exact=True``,
for every kernel, machine and iteration count.  Detection itself is
best-effort — kernels whose memory state genuinely never settles within
one entry simply run every iteration — but on the streaming kernels the
ROADMAP names, detection must actually fire.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import CellRequest, execute_cell
from repro.ir import LoopBuilder
from repro.machine import four_cluster, heterogeneous, two_cluster, unified
from repro.scheduler import BaselineScheduler
from repro.simulator import LockstepSimulator
from repro.steady import STEADY_MODES, IterationSteadyDetector
from repro.workloads import GeneratorConfig, kernel_by_name, random_kernel
from repro.workloads.suite import streaming_long_suite

STREAMING = ("su2cor", "applu", "turb3d")

_MACHINES = {
    "unified": unified,
    "2-cluster": two_cluster,
    "4-cluster": four_cluster,
    "heterogeneous": heterogeneous,
}


def _schedule(kernel, machine):
    return BaselineScheduler().schedule(kernel, machine)


def _assert_equivalent(schedule, steady, n_iterations=None, n_times=None):
    """``steady`` mode and exact replay must agree bit for bit; returns
    the steady-mode simulator for telemetry introspection."""
    exact_sim = LockstepSimulator(
        schedule, n_iterations=n_iterations, n_times=n_times, exact=True
    )
    exact = exact_sim.run()
    steady_sim = LockstepSimulator(
        schedule, n_iterations=n_iterations, n_times=n_times, steady=steady
    )
    result = steady_sim.run()
    assert result.as_dict() == exact.as_dict()
    # Aggregates outside SimulationResult are patched by replay too.
    assert steady_sim.memory.counters() == exact_sim.memory.counters()
    assert exact_sim.steady_report.mode == "off"
    assert not exact_sim.steady_report.detected
    return steady_sim


class TestStreamingKernelEquivalence:
    @pytest.mark.parametrize("kernel_name", STREAMING)
    @pytest.mark.parametrize("machine_name", sorted(_MACHINES))
    @pytest.mark.parametrize("steady", ["iteration", "auto"])
    def test_bit_identical(self, kernel_name, machine_name, steady):
        kernel = kernel_by_name(kernel_name)
        schedule = _schedule(kernel, _MACHINES[machine_name]())
        sim = _assert_equivalent(schedule, steady)
        # NTIMES=1: the entry memoizer can never fire.
        assert sim.steady_state is None
        assert sim.steady_report.entries_replayed == 0

    @pytest.mark.parametrize(
        "kernel_name,machine_name",
        [
            ("applu", "2-cluster"),
            ("applu", "4-cluster"),
            ("applu", "heterogeneous"),
            ("su2cor", "2-cluster"),
            ("su2cor", "4-cluster"),
            ("su2cor", "heterogeneous"),
            ("turb3d", "4-cluster"),
            ("turb3d", "heterogeneous"),
        ],
    )
    def test_detection_fires(self, kernel_name, machine_name):
        """On the split-cache presets the streaming kernels settle well
        inside one entry — the win the ROADMAP item promised must
        actually exist, not just be bit-identical."""
        kernel = kernel_by_name(kernel_name)
        schedule = _schedule(kernel, _MACHINES[machine_name]())
        sim = _assert_equivalent(schedule, "auto")
        report = sim.steady_report
        assert report.detected
        assert report.iterations_replayed > 0
        assert report.iteration_period is not None
        assert report.iteration_period >= 1
        for record in report.iterations:
            assert record.entry == 0
            assert record.replayed_iterations > 0
            assert (
                record.simulated_iterations + record.replayed_iterations
                <= kernel.loop.n_iterations
            )

    def test_off_mode_never_detects(self):
        kernel = kernel_by_name("applu")
        schedule = _schedule(kernel, four_cluster())
        sim = LockstepSimulator(schedule, steady="off")
        sim.run()
        assert sim.steady_report.mode == "off"
        assert not sim.steady_report.detected

    @pytest.mark.parametrize(
        "kernel_name,machine_name",
        [("turb3d", "2-cluster"), ("turb3d", "unified"),
         ("su2cor", "unified"), ("applu", "unified")],
    )
    def test_live_scar_pruning_unlocks_detection(
        self, kernel_name, machine_name
    ):
        """Kernels whose warm-up leaves frozen *live* (M/S) lines used
        to stand down (ROADMAP item: turb3d on 2-cluster); the set-band
        reachability proof strips those scars and detection fires —
        still bit-identical."""
        kernel = kernel_by_name(kernel_name)
        schedule = _schedule(kernel, _MACHINES[machine_name]())
        sim = _assert_equivalent(schedule, "iteration")
        report = sim.steady_report
        assert report.detected
        assert any(
            record.pruned_live_lines > 0 for record in report.iterations
        )

    @pytest.mark.parametrize(
        "kernel_name,machine_name",
        [
            ("su2cor-long", "2-cluster"),
            ("applu-long", "2-cluster"),
            ("su2cor-long", "4-cluster"),
            ("applu-long", "4-cluster"),
            # turb3d-long on 2-cluster is deliberately absent: doubling
            # the vectors moves its second stream a full cache image
            # away, so every set stays genuinely reachable (nothing is
            # prunable) until the sweep wraps — its warm-up scales with
            # the stream and the replayed *fraction* drops.  Detection
            # still fires and stays bit-identical (covered above).
            ("turb3d-long", "4-cluster"),
        ],
    )
    def test_streaming_long_asymptotic_win(self, kernel_name, machine_name):
        """The 4x-NITER long-stream variants: bit-identical, detection
        fires, and the *fraction* of iterations replayed beats the
        short original — the warm-up cost amortizes, which is the whole
        point of the streaming-long scenario."""
        long_kernel = next(
            k for k in streaming_long_suite([kernel_name])
        )
        schedule = _schedule(long_kernel, _MACHINES[machine_name]())
        sim = _assert_equivalent(schedule, "auto")
        report = sim.steady_report
        assert report.detected
        long_fraction = (
            report.iterations_replayed / long_kernel.loop.n_iterations
        )
        short_kernel = kernel_by_name(kernel_name.removesuffix("-long"))
        short_schedule = _schedule(short_kernel, _MACHINES[machine_name]())
        short_sim = LockstepSimulator(short_schedule, steady="auto")
        short_sim.run()
        short_fraction = (
            short_sim.steady_report.iterations_replayed
            / short_kernel.loop.n_iterations
        )
        assert long_fraction > short_fraction


class TestMultiEntryTranslation:
    """After an in-entry fast-forward the memory system is physically
    translated back into the frame full simulation would have produced;
    later entries (which re-sweep the same addresses) must stay exact."""

    @pytest.mark.parametrize("kernel_name", STREAMING)
    @pytest.mark.parametrize("n_times", [2, 3])
    def test_iteration_mode_across_entries(self, kernel_name, n_times):
        kernel = kernel_by_name(kernel_name)
        schedule = _schedule(kernel, four_cluster())
        sim = _assert_equivalent(schedule, "iteration", n_times=n_times)
        # Detection fires inside at least the first entry on this preset.
        assert sim.steady_report.iterations_replayed > 0

    def test_auto_prefers_entry_memoizer_for_multi_entry_loops(self):
        kernel = kernel_by_name("tomcatv")
        schedule = _schedule(kernel, four_cluster())
        sim = _assert_equivalent(schedule, "auto")
        assert sim.steady_state is not None  # entry-level fired
        assert sim.steady_report.iterations == ()  # iteration level idle

    def test_iteration_overrides(self):
        kernel = kernel_by_name("applu")
        schedule = _schedule(kernel, two_cluster())
        for n_iterations in (1, 8, 700):
            _assert_equivalent(
                schedule, "iteration", n_iterations=n_iterations
            )


class TestRandomKernels:
    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_hypothesis_kernel_equivalence(self, seed):
        kernel = random_kernel(seed)
        schedule = _schedule(kernel, two_cluster())
        _assert_equivalent(schedule, "iteration")

    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_conflict_heavy_kernel_equivalence(self, seed):
        config = GeneratorConfig(
            conflict_probability=0.9, max_dims=1, min_extent=32
        )
        kernel = random_kernel(seed, config)
        schedule = _schedule(kernel, four_cluster())
        _assert_equivalent(schedule, "auto")


def _mixed_stride_kernel():
    """A[i] and B[2i] advance by different per-iteration strides, so no
    uniform address shift aligns two pipeline boundaries and the
    iteration detector must disable itself."""
    b = LoopBuilder("mixed_iter_stride")
    b.dim("i", 0, 256)
    a = b.array("A", (256,))
    bb = b.array("B", (512,))
    va = b.load(a, [b.aff(i=1)], name="ld_a")
    vb = b.load(bb, [b.aff(i=2)], name="ld_b")
    t = b.fmul(va, vb, name="mul")
    b.store(a, [b.aff(i=1)], t, name="st")
    return b.build()


class TestProofObligations:
    def test_non_uniform_strides_disable_detection(self):
        kernel = _mixed_stride_kernel()
        schedule = _schedule(kernel, two_cluster())
        sim = LockstepSimulator(schedule, steady="iteration")
        detector = IterationSteadyDetector(sim)
        assert not detector.enabled
        _assert_equivalent(schedule, "iteration")

    def test_uniform_strides_enable_detection(self):
        kernel = kernel_by_name("applu")
        schedule = _schedule(kernel, two_cluster())
        sim = LockstepSimulator(schedule, steady="iteration")
        detector = IterationSteadyDetector(sim)
        assert detector.enabled
        assert detector.stride == 8
        assert detector.q >= 1

    def test_unknown_mode_rejected(self):
        kernel = kernel_by_name("applu")
        schedule = _schedule(kernel, unified())
        with pytest.raises(KeyError, match="unknown steady mode"):
            LockstepSimulator(schedule, steady="sometimes")

    def test_exact_flag_wins_over_mode(self):
        kernel = kernel_by_name("applu")
        schedule = _schedule(kernel, unified())
        sim = LockstepSimulator(schedule, exact=True, steady="iteration")
        assert sim.steady_mode == "off"

    def test_all_modes_resolve(self):
        kernel = kernel_by_name("su2cor")
        schedule = _schedule(kernel, unified())
        for mode in STEADY_MODES:
            sim = LockstepSimulator(schedule, steady=mode)
            assert sim.steady_mode == mode


class TestPipelineTelemetry:
    def test_simulate_stage_reports_iteration_replay(self, sampling_cme):
        outcome = execute_cell(
            CellRequest(
                kernel=kernel_by_name("applu"),
                machine=four_cluster(),
                scheduler="baseline",
                locality=sampling_cme,
                steady="iteration",
            )
        )
        stats = outcome.report.stage("simulate").stats
        assert stats["steady_mode"] == "iteration"
        assert stats["iterations_replayed"] > 0
        assert stats["iteration_detections"] >= 1
        assert stats["iteration_period"] >= 1

    def test_simulate_stage_off_mode(self, sampling_cme):
        outcome = execute_cell(
            CellRequest(
                kernel=kernel_by_name("applu"),
                machine=four_cluster(),
                scheduler="baseline",
                locality=sampling_cme,
                exact=True,
            )
        )
        stats = outcome.report.stage("simulate").stats
        assert stats["steady_mode"] == "off"
        assert stats["iterations_replayed"] == 0
        assert stats["iteration_period"] is None
