"""Prolog / kernel / epilog expansion of a modulo schedule.

A modulo-scheduled loop with stage count SC executes SC-1 ramp-up stages
(the *prolog*), then the steady-state *kernel* for NITER-SC+1 initiations,
then SC-1 drain stages (the *epilog*).  This module flattens a
:class:`~repro.scheduler.result.Schedule` into that shape — the form a
code generator would emit — and provides the code-size accounting the
paper alludes to ("the SC ... determines the length of the prolog and
epilog").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .result import Schedule

__all__ = ["OpInstance", "ExpandedLoop", "expand"]


@dataclass(frozen=True)
class OpInstance:
    """One dynamic instance of an operation: iteration ``i`` of ``op``."""

    op: str
    iteration: int
    time: int  # absolute cycle in the flattened code


@dataclass
class ExpandedLoop:
    """A modulo schedule flattened for a specific iteration count."""

    schedule: Schedule
    n_iterations: int
    instances: List[OpInstance] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Schedule length = (NITER + SC - 1) * II (stall-free)."""
        if not self.instances:
            return 0
        return max(i.time for i in self.instances) + 1

    # ------------------------------------------------------------------
    def _phase_bounds(self) -> Tuple[int, int]:
        """[prolog_end, epilog_start) cycle bounds of the kernel phase."""
        ii = self.schedule.ii
        sc = self.schedule.stage_count
        prolog_end = (sc - 1) * ii
        epilog_start = self.n_iterations * ii
        return prolog_end, epilog_start

    @property
    def prolog(self) -> List[OpInstance]:
        """Ramp-up instances (before all stages are active)."""
        prolog_end, _ = self._phase_bounds()
        return [i for i in self.instances if i.time < prolog_end]

    @property
    def kernel(self) -> List[OpInstance]:
        """Steady-state instances."""
        prolog_end, epilog_start = self._phase_bounds()
        return [
            i for i in self.instances
            if prolog_end <= i.time < epilog_start
        ]

    @property
    def epilog(self) -> List[OpInstance]:
        """Drain instances (after the last initiation)."""
        _, epilog_start = self._phase_bounds()
        return [i for i in self.instances if i.time >= epilog_start]

    def instances_at(self, time: int) -> List[OpInstance]:
        return [i for i in self.instances if i.time == time]

    # ------------------------------------------------------------------
    def code_size_instructions(self) -> Dict[str, int]:
        """Static code size: distinct VLIW instruction slots per phase.

        The kernel contributes II instructions (it loops); prolog and
        epilog are emitted straight-line, (SC-1)*II each.
        """
        ii = self.schedule.ii
        sc = self.schedule.stage_count
        return {
            "prolog": (sc - 1) * ii,
            "kernel": ii,
            "epilog": (sc - 1) * ii,
        }

    def validate(self) -> None:
        """Every iteration executes every operation exactly once, in
        dependence order consistent with the modulo schedule."""
        expected = set(self.schedule.placements)
        seen: Dict[Tuple[str, int], int] = {}
        for instance in self.instances:
            key = (instance.op, instance.iteration)
            if key in seen:
                raise AssertionError(f"duplicate instance {key}")
            seen[key] = instance.time
        for iteration in range(self.n_iterations):
            missing = expected - {
                op for (op, it) in seen if it == iteration
            }
            if missing:
                raise AssertionError(
                    f"iteration {iteration} missing {sorted(missing)}"
                )
        # Instance times follow the modulo formula.
        for (op, iteration), time in seen.items():
            placement = self.schedule.placements[op]
            if time != iteration * self.schedule.ii + placement.time:
                raise AssertionError(f"bad time for {op} iter {iteration}")


def expand(schedule: Schedule, n_iterations: int) -> ExpandedLoop:
    """Flatten ``schedule`` for ``n_iterations`` initiations."""
    if n_iterations < 1:
        raise ValueError("need at least one iteration")
    if n_iterations < schedule.stage_count:
        raise ValueError(
            f"{n_iterations} iterations cannot fill {schedule.stage_count} "
            f"stages; the loop would never reach steady state"
        )
    instances = [
        OpInstance(
            op=name,
            iteration=iteration,
            time=iteration * schedule.ii + placement.time,
        )
        for iteration in range(n_iterations)
        for name, placement in schedule.placements.items()
    ]
    instances.sort(key=lambda i: (i.time, i.iteration, i.op))
    expanded = ExpandedLoop(
        schedule=schedule, n_iterations=n_iterations, instances=instances
    )
    expanded.validate()
    return expanded
