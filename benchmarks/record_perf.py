"""Record the PR 3 steady-state subsystem win: fig6 + streaming-suite
single-job wall-clock across detector modes.

Runs each scenario once per steady-state detector mode on a cold,
cache-disabled grid, asserts the results are identical across modes
(bars for figure scenarios, per-cell cycle/stall/memory digests for grid
scenarios), and writes timings plus per-stage seconds to
``benchmarks/BENCH_pr3.json``.

Two comparisons matter:

* **streaming** (the ``NTIMES=1`` kernels): ``entry`` reproduces what
  PR 2 could do — entry-level memoization never fires on single-entry
  loops — so ``entry`` vs ``auto``/``iteration`` is the new
  iteration-level detector's win.
* **fig6-2cluster**: ``off`` vs ``auto`` is the combined steady-state
  win, and the recorded ``schedule`` stage seconds expose the MRT
  bitset / lifetime-hoist satellite against the PR 2 recording.

Usage::

    PYTHONPATH=src python benchmarks/record_perf.py [--out PATH]
        [--skip-fig6] [--repeats N]

Single-job on purpose: the point is the per-cell speedup, not process
fan-out (which composes with it).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.cme import SamplingCME
from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import run_scenario

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_pr3.json"

#: PR 2 recordings (benchmarks/BENCH_pr2.json, same container/protocol):
#: fig6-2cluster memoized wall-clock and its schedule-stage seconds.
PR2_FIG6_SECONDS = 11.607
PR2_FIG6_SCHEDULE_SECONDS = 1.213


def _digest(outcome):
    """Mode-independent fingerprint of a scenario's results."""
    if outcome.figure is not None:
        return [
            (bar.group, bar.scheduler, bar.threshold,
             bar.norm_compute, bar.norm_stall)
            for bar in outcome.figure.bars
        ]
    return [
        (result.kernel, result.machine, result.scheduler, result.threshold,
         result.total_cycles, result.stall_cycles,
         result.simulation.memory.as_dict())
        for result in outcome.results
    ]


def _measure(scenario_name: str, steady: str, repeats: int) -> dict:
    best = None
    for _ in range(repeats):
        grid = ExperimentGrid(
            locality=SamplingCME(max_points=512), cache=False
        )
        start = time.perf_counter()
        outcome = run_scenario(scenario_name, grid=grid, steady=steady)
        seconds = time.perf_counter() - start
        sample = {
            "seconds": round(seconds, 3),
            "cells_requested": grid.stats.requested,
            "cells_computed": grid.stats.computed,
            "stage_seconds": {
                stage: round(value, 3)
                for stage, value in grid.stats.stage_seconds.items()
            },
            "digest": _digest(outcome),
        }
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    return best


def record(scenarios, out: pathlib.Path, repeats: int) -> dict:
    modes = ("off", "entry", "iteration", "auto")
    results = {}
    for name in scenarios:
        runs = {}
        for steady in modes:
            print(f"[{name}] steady={steady} ...", flush=True)
            runs[steady] = _measure(name, steady, repeats)
            print(
                f"[{name}]   {runs[steady]['seconds']}s, "
                f"{runs[steady]['cells_computed']} cells computed",
                flush=True,
            )
        reference = runs["off"]["digest"]
        for steady, run in runs.items():
            if run["digest"] != reference:
                raise AssertionError(
                    f"{name}: steady={steady} results diverge from exact"
                )
            del run["digest"]
        results[name] = {
            "modes": runs,
            "speedup_auto_vs_off": round(
                runs["off"]["seconds"] / runs["auto"]["seconds"], 2
            ),
        }
    payload = {
        "pr": 3,
        "protocol": (
            "single-job ExperimentGrid, cell cache disabled, best of "
            f"{repeats} runs per mode, identical results asserted across "
            "steady modes; 'entry' on the streaming scenario reproduces "
            "the PR 2 capability (entry memoization cannot fire on "
            "NTIMES=1 loops)"
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "pr2_baseline": {
            "fig6-2cluster_memoized_seconds": PR2_FIG6_SECONDS,
            "fig6-2cluster_schedule_stage_seconds": PR2_FIG6_SCHEDULE_SECONDS,
            "note": (
                "benchmarks/BENCH_pr2.json, same protocol; this PR must "
                "beat the streaming suite via the iteration-level "
                "detector and the schedule stage via the MRT/lifetime "
                "satellite"
            ),
        },
        "scenarios": results,
    }
    if "streaming" in results:
        runs = results["streaming"]["modes"]
        payload["streaming_speedup_vs_pr2"] = round(
            runs["entry"]["seconds"] / runs["auto"]["seconds"], 2
        )
    if "fig6-2cluster" in results:
        runs = results["fig6-2cluster"]["modes"]
        payload["fig6_speedup_vs_pr2"] = round(
            PR2_FIG6_SECONDS / runs["auto"]["seconds"], 2
        )
        payload["fig6_schedule_stage_vs_pr2"] = {
            "pr2_seconds": PR2_FIG6_SCHEDULE_SECONDS,
            "pr3_seconds": runs["auto"]["stage_seconds"].get("schedule"),
        }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--skip-fig6", action="store_true",
        help="record only the streaming suite (fig6 is the larger grid)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold runs per mode; the fastest is recorded (default: 3)",
    )
    args = parser.parse_args(argv)
    scenarios = ["streaming"]
    if not args.skip_fig6:
        scenarios.append("fig6-2cluster")
    payload = record(scenarios, args.out, args.repeats)
    speedup = payload.get("streaming_speedup_vs_pr2")
    if speedup is not None and speedup < 1.05:
        print(
            f"WARNING: streaming speedup vs PR 2 is {speedup}x (< 1.05x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
