"""The unified assign-and-schedule modulo-scheduling engine.

Both schedulers of the paper share this engine (Section 4):

1. Order the nodes (SMS ordering, :mod:`repro.scheduler.ordering`).
2. For each node, in order, score every cluster (subclass hook), then try
   clusters from best to worst; the first cluster with a feasible slot —
   functional unit free, and every cross-cluster flow edge to an
   already-scheduled neighbour servable by a register-bus transfer —
   receives the operation.
3. If any node cannot be placed, or the finished schedule overflows a
   register file, the II is increased and the whole pass restarts (the
   node ordering is *not* recomputed, per the paper).

The engine also implements the *binding prefetching* step of Section 4.3:
once a load's cluster is chosen, it is scheduled with the miss latency when
its estimated miss ratio in that cluster exceeds the threshold, unless the
larger latency would raise the II through a recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.builder import Kernel
from ..ir.operations import OpClass, Operation
from ..machine.config import MachineConfig
from .lifetimes import LifetimeModel
from .mii import compute_mii, edge_latency, rec_mii
from .mrt import ModuloReservationTable, Transaction
from .ordering import NodeTimes, compute_times, sms_order
from .result import Communication, Placement, Schedule, SchedulingError

__all__ = ["SchedulerConfig", "CommunicationAwareScheduler"]


@dataclass
class SchedulerConfig:
    """Engine knobs shared by Baseline and RMCA."""

    #: Miss-ratio threshold above which a load is binding-prefetched.
    #: 1.0 reproduces the traditional always-hit-latency scheme; 0.0 is
    #: the most aggressive setting of the paper's figures.
    threshold: float = 1.0
    #: Hard cap on the II search to guarantee termination.
    max_ii: int = 512
    #: Enforce per-cluster MaxLive <= register-file size.
    check_register_pressure: bool = True
    #: Use the SMS node ordering (Section 4.3).  False falls back to
    #: program order — the ordering ablation of the benchmark suite.
    use_sms_ordering: bool = True


class _State:
    """Mutable state of one scheduling attempt at a fixed II."""

    def __init__(
        self,
        kernel: Kernel,
        machine: MachineConfig,
        ii: int,
        times: NodeTimes,
    ):
        self.kernel = kernel
        self.machine = machine
        self.ii = ii
        self.times = times
        self.mrt = ModuloReservationTable(machine, ii)
        self.placements: Dict[str, Placement] = {}
        self.comms: List[Communication] = []
        self.comm_index: Dict[Tuple[str, int], List[Communication]] = {}
        self.ops_per_cluster: List[int] = [0] * machine.n_clusters
        # Per-cluster memory operations, maintained incrementally on
        # commit: the CME probes of cluster ranking and binding
        # prefetching read this on every placement.
        self._mem_ops: List[List[Operation]] = [
            [] for _ in range(machine.n_clusters)
        ]

    def lat(self, op_name: str) -> int:
        """Assumed latency of a *scheduled* operation."""
        return self.placements[op_name].assumed_latency

    def commit(
        self,
        op: Operation,
        cluster: int,
        time: int,
        assumed_latency: int,
        new_comms: List[Communication],
    ) -> None:
        self.placements[op.name] = Placement(
            op=op.name,
            cluster=cluster,
            time=time,
            assumed_latency=assumed_latency,
        )
        self.ops_per_cluster[cluster] += 1
        if op.is_memory:
            self._mem_ops[cluster].append(op)
        for comm in new_comms:
            self.comms.append(comm)
            self.comm_index.setdefault(
                (comm.producer, comm.dst_cluster), []
            ).append(comm)

    def memory_ops_in(self, cluster: int) -> List[Operation]:
        """Memory operations committed to ``cluster``, in commit order.

        Returns the live list — callers read or copy (``resident +
        [op]``), never mutate.
        """
        return self._mem_ops[cluster]


class CommunicationAwareScheduler:
    """Base scheduler: register-communication-aware cluster selection.

    This is the Baseline of Section 4.1 when instantiated directly; the
    RMCA scheduler subclasses it and overrides memory-operation scoring.
    """

    name = "baseline"

    def __init__(
        self,
        config: Optional[SchedulerConfig] = None,
        locality=None,
    ):
        self.config = SchedulerConfig() if config is None else config
        self.locality = locality

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule(self, kernel: Kernel, machine: MachineConfig) -> Schedule:
        """Modulo-schedule ``kernel`` onto ``machine``.

        Raises :class:`SchedulingError` when no feasible II is found below
        the configured cap.
        """
        mii, res, rec = compute_mii(kernel.ddg, machine)
        if self.config.use_sms_ordering:
            order = sms_order(kernel.ddg, machine, mii)
        else:
            order = [op.name for op in kernel.loop.operations]
        self._recurrence_nodes = kernel.ddg.nodes_on_recurrences()
        # The dependence structure behind the pressure check is a kernel
        # property: build it once, outside the II retry loop.
        lifetime_model = (
            LifetimeModel(kernel)
            if self.config.check_register_pressure
            else None
        )
        schedule = self._search_ii(
            kernel, machine, order, mii, res, rec, lifetime_model
        )
        if schedule is None and self.config.use_sms_ordering:
            # The SMS ordering can (rarely) emit a node after both a
            # predecessor and a successor; if the greedy pass then wedges
            # it into an empty same-iteration window, no II helps —
            # distance-0 bounds do not relax with II.  Program order
            # cannot sandwich a node between scheduled neighbours on
            # distance-0 flow edges, so retry with it before giving up.
            # (Only reachable where scheduling previously failed
            # outright, so no existing schedule can change.)
            order = [op.name for op in kernel.loop.operations]
            schedule = self._search_ii(
                kernel, machine, order, mii, res, rec, lifetime_model
            )
        if schedule is None:
            raise SchedulingError(
                f"no schedule for {kernel.name!r} on {machine.name!r} "
                f"with II <= {self.config.max_ii}"
            )
        return schedule

    def _search_ii(
        self,
        kernel: Kernel,
        machine: MachineConfig,
        order: Sequence[str],
        mii: int,
        res: int,
        rec: int,
        lifetime_model: Optional[LifetimeModel],
    ) -> Optional[Schedule]:
        """The II search loop at one fixed node order."""
        for ii in range(mii, self.config.max_ii + 1):
            state = self._attempt(kernel, machine, order, ii)
            if state is None:
                continue
            schedule = self._finalize(state, mii, res, rec)
            if (
                lifetime_model is not None
                and not lifetime_model.pressure_ok(schedule)
            ):
                continue
            return schedule
        return None

    # ------------------------------------------------------------------
    # Cluster scoring hooks
    # ------------------------------------------------------------------
    def rank_clusters(
        self, state: _State, op: Operation
    ) -> List[int]:
        """Clusters in decreasing preference for placing ``op``."""
        machine = state.machine
        if machine.n_clusters == 1:
            return [0]
        scored = [
            (self.cluster_score(state, op, k), k)
            for k in range(machine.n_clusters)
        ]
        scored.sort(key=lambda item: (tuple(-x for x in item[0]), item[1]))
        return [k for _, k in scored]

    def cluster_score(
        self, state: _State, op: Operation, cluster: int
    ) -> Tuple[float, ...]:
        """Higher-is-better score tuple; default is the register heuristic."""
        return (
            self.register_affinity(state, op, cluster),
            -state.ops_per_cluster[cluster],
        )

    def register_affinity(
        self, state: _State, op: Operation, cluster: int
    ) -> float:
        """Profit from output edges of placing ``op`` in ``cluster``.

        Counts the flow edges internalized (neighbour already scheduled in
        the same cluster) minus those that become real inter-cluster
        communications (neighbour scheduled elsewhere) — equivalent, for
        ranking purposes, to the paper's before/after exit-edge difference.
        """
        ddg = state.kernel.ddg
        profit = 0
        for edge in ddg.in_edges(op.name):
            if edge.kind != "flow":
                continue
            placement = state.placements.get(edge.src)
            if placement is None:
                continue
            profit += 1 if placement.cluster == cluster else -1
        for edge in ddg.out_edges(op.name):
            if edge.kind != "flow":
                continue
            placement = state.placements.get(edge.dst)
            if placement is None:
                continue
            profit += 1 if placement.cluster == cluster else -1
        return float(profit)

    # ------------------------------------------------------------------
    # One scheduling attempt at a fixed II
    # ------------------------------------------------------------------
    def _attempt(
        self,
        kernel: Kernel,
        machine: MachineConfig,
        order: Sequence[str],
        ii: int,
    ) -> Optional[_State]:
        times = compute_times(kernel.ddg, machine, ii)
        state = _State(kernel, machine, ii, times)
        for name in order:
            op = kernel.loop.operation(name)
            if not self._place(state, op):
                return None
        return state

    def _place(self, state: _State, op: Operation) -> bool:
        for cluster in self.rank_clusters(state, op):
            assumed = self._assumed_latency(state, op, cluster)
            outcome = self._try_place(state, op, cluster, assumed)
            if outcome is not None:
                time, new_comms = outcome
                state.commit(op, cluster, time, assumed, new_comms)
                return True
        return False

    def _assumed_latency(
        self, state: _State, op: Operation, cluster: int
    ) -> int:
        """Hit latency, or the miss latency for binding-prefetched loads.

        With a batched analyzer the miss-ratio query is served from the
        probe snapshots RMCA's cluster sweep left behind (one memoized
        lookup), instead of re-simulating the cluster's reference set.
        """
        machine = state.machine
        base = machine.latency(op.opclass)
        if not op.is_load or self.locality is None:
            return base
        if self.config.threshold >= 1.0:
            return base
        cache = machine.cluster(cluster).cache
        ops = state.memory_ops_in(cluster) + [op]
        ratio = self.locality.miss_ratio(state.kernel.loop, op, ops, cache)
        if ratio <= self.config.threshold:
            return base
        miss_latency = machine.miss_latency
        if op.name in self._recurrence_nodes:
            def latency_of(candidate: Operation) -> int:
                if candidate.name == op.name:
                    return miss_latency
                placed = state.placements.get(candidate.name)
                if placed is not None:
                    return placed.assumed_latency
                return machine.latency(candidate.opclass)

            if rec_mii(state.kernel.ddg, machine, latency_of) > state.ii:
                return base
        return miss_latency

    # ------------------------------------------------------------------
    # Slot search with communication allocation
    # ------------------------------------------------------------------
    def _try_place(
        self,
        state: _State,
        op: Operation,
        cluster: int,
        assumed_latency: int,
    ) -> Optional[Tuple[int, List[Communication]]]:
        """Find a feasible issue time for ``op`` in ``cluster``.

        Returns ``(time, new_communications)`` with all MRT reservations
        committed, or ``None`` (no reservations held) when infeasible.
        """
        window = self._window(state, op, cluster, assumed_latency)
        if window is None:
            return None
        candidates, descending = window
        for time in candidates:
            txn = Transaction()
            if not state.mrt.reserve_fu(time, cluster, op.fu_type, txn):
                state.mrt.rollback(txn)
                continue
            comms = self._allocate_comms(
                state, op, cluster, time, assumed_latency, txn
            )
            if comms is None:
                state.mrt.rollback(txn)
                continue
            return time, comms
        return None

    def _window(
        self,
        state: _State,
        op: Operation,
        cluster: int,
        assumed_latency: int,
    ) -> Optional[Tuple[List[int], bool]]:
        """Candidate issue times, respecting scheduled neighbours."""
        ddg = state.kernel.ddg
        machine = state.machine
        ii = state.ii
        lrb = machine.register_bus.latency
        early: Optional[int] = None
        late: Optional[int] = None

        for edge in ddg.in_edges(op.name):
            src = state.placements.get(edge.src)
            if src is None:
                continue
            producer = state.kernel.loop.operation(edge.src)
            lat = edge_latency(
                producer, edge.kind, machine, latency_of=lambda _o: src.assumed_latency
            )
            bound = src.time + lat - ii * edge.distance
            if edge.kind == "flow" and src.cluster != cluster:
                bound += lrb
            early = bound if early is None else max(early, bound)

        for edge in ddg.out_edges(op.name):
            dst = state.placements.get(edge.dst)
            if dst is None:
                continue
            lat = edge_latency(
                op, edge.kind, machine, latency_of=lambda _o: assumed_latency
            )
            bound = dst.time - lat + ii * edge.distance
            if edge.kind == "flow" and dst.cluster != cluster:
                bound -= lrb
            late = bound if late is None else min(late, bound)

        if early is not None and late is not None:
            if early > late:
                return None
            upper = min(late, early + ii - 1)
            return list(range(early, upper + 1)), False
        if early is not None:
            return list(range(early, early + ii)), False
        if late is not None:
            return list(range(late, late - ii, -1)), True
        base = state.times.asap.get(op.name, 0)
        return list(range(base, base + ii)), False

    def _allocate_comms(
        self,
        state: _State,
        op: Operation,
        cluster: int,
        time: int,
        assumed_latency: int,
        txn: Transaction,
    ) -> Optional[List[Communication]]:
        """Reserve register-bus transfers for all cross-cluster flow edges
        between ``op`` (tentatively at ``time``/``cluster``) and its
        already-scheduled neighbours.  Returns the new communications, or
        ``None`` on failure (caller rolls the transaction back)."""
        ddg = state.kernel.ddg
        ii = state.ii
        lrb = state.machine.register_bus.latency
        new_comms: List[Communication] = []

        # Incoming values produced in other clusters.
        needed_in: Dict[str, int] = {}
        for edge in ddg.in_edges(op.name):
            if edge.kind != "flow":
                continue
            src = state.placements.get(edge.src)
            if src is None or src.cluster == cluster:
                continue
            deadline = time + ii * edge.distance
            prior = needed_in.get(edge.src)
            needed_in[edge.src] = deadline if prior is None else min(prior, deadline)
        for producer_name, deadline in needed_in.items():
            src = state.placements[producer_name]
            existing = state.comm_index.get((producer_name, cluster), [])
            fresh = [c for c in new_comms if c.producer == producer_name and c.dst_cluster == cluster]
            if any(c.arrival <= deadline for c in existing + fresh):
                continue
            comm = self._new_comm(
                state,
                producer_name,
                src.cluster,
                cluster,
                lo=src.time + src.assumed_latency,
                hi=deadline - lrb,
                txn=txn,
            )
            if comm is None:
                return None
            new_comms.append(comm)

        # Outgoing value consumed by scheduled ops in other clusters.
        if op.dest is not None:
            needed_out: Dict[int, int] = {}
            for edge in ddg.out_edges(op.name):
                if edge.kind != "flow":
                    continue
                dst = state.placements.get(edge.dst)
                if dst is None or dst.cluster == cluster:
                    continue
                deadline = dst.time + ii * edge.distance
                prior = needed_out.get(dst.cluster)
                needed_out[dst.cluster] = (
                    deadline if prior is None else min(prior, deadline)
                )
            for dst_cluster, deadline in needed_out.items():
                comm = self._new_comm(
                    state,
                    op.name,
                    cluster,
                    dst_cluster,
                    lo=time + assumed_latency,
                    hi=deadline - lrb,
                    txn=txn,
                )
                if comm is None:
                    return None
                new_comms.append(comm)
        return new_comms

    def _new_comm(
        self,
        state: _State,
        producer: str,
        src_cluster: int,
        dst_cluster: int,
        lo: int,
        hi: int,
        txn: Transaction,
    ) -> Optional[Communication]:
        """Reserve a bus transfer starting in ``[lo, hi]``."""
        if hi < lo:
            return None
        ii = state.ii
        for start in range(lo, min(hi, lo + ii - 1) + 1):
            reservation = state.mrt.reserve_bus(start, txn)
            if reservation is not None:
                return Communication(
                    producer=producer,
                    src_cluster=src_cluster,
                    dst_cluster=dst_cluster,
                    bus=reservation.bus,
                    start=start,
                    latency=reservation.latency,
                )
        return None

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _finalize(
        self, state: _State, mii: int, res: int, rec: int
    ) -> Schedule:
        """Shift times so the earliest op issues at 0 and build the result."""
        shift = -min(p.time for p in state.placements.values())
        placements = {
            name: Placement(
                op=p.op,
                cluster=p.cluster,
                time=p.time + shift,
                assumed_latency=p.assumed_latency,
            )
            for name, p in state.placements.items()
        }
        comms = [
            Communication(
                producer=c.producer,
                src_cluster=c.src_cluster,
                dst_cluster=c.dst_cluster,
                bus=c.bus,
                start=c.start + shift,
                latency=c.latency,
            )
            for c in state.comms
        ]
        return Schedule(
            kernel=state.kernel,
            machine=state.machine,
            ii=state.ii,
            placements=placements,
            communications=comms,
            mii=mii,
            res_mii=res,
            rec_mii=rec,
            scheduler_name=self.name,
            threshold=self.config.threshold,
        )
