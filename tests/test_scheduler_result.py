"""Tests for Schedule result objects and validation."""

import pytest

from repro.scheduler import BaselineScheduler
from repro.scheduler.result import Communication, Placement, Schedule


class TestScheduleProperties:
    def test_stage_count(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        last = max(p.time for p in schedule.placements.values())
        assert schedule.stage_count == last // schedule.ii + 1

    def test_stage_and_slot(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        for name, placement in schedule.placements.items():
            assert schedule.stage_of(name) == placement.time // schedule.ii
            assert schedule.slot_of(name) == placement.time % schedule.ii

    def test_cluster_assignment_roundtrip(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        assignment = schedule.cluster_assignment()
        for name in assignment:
            assert assignment[name] == schedule.cluster_of(name)

    def test_ops_in_cluster_partition(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        total = sum(
            len(schedule.ops_in_cluster(c))
            for c in range(two_cluster_machine.n_clusters)
        )
        assert total == len(stencil.loop.operations)

    def test_memory_ops_in_cluster(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        for c in range(2):
            for op in schedule.memory_ops_in_cluster(c):
                assert op.is_memory

    def test_compute_cycles_formula(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        n = 100
        expected = (n + schedule.stage_count - 1) * schedule.ii
        assert schedule.compute_cycles(n) == expected
        assert schedule.compute_cycles(n, n_times=3) == 3 * expected

    def test_communication_arrival(self):
        comm = Communication(
            producer="p", src_cluster=0, dst_cluster=1, bus=0, start=5, latency=2
        )
        assert comm.arrival == 7

    def test_summary_keys(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        summary = schedule.summary()
        for key in ("kernel", "machine", "scheduler", "ii", "mii", "sc", "comms"):
            assert key in summary


class TestValidation:
    def _schedule(self, kernel, machine):
        return BaselineScheduler().schedule(kernel, machine)

    def test_detects_missing_operation(self, saxpy, unified_machine):
        schedule = self._schedule(saxpy, unified_machine)
        del schedule.placements["mul"]
        with pytest.raises(AssertionError, match="unscheduled"):
            schedule.validate()

    def test_detects_dependence_violation(self, saxpy, unified_machine):
        schedule = self._schedule(saxpy, unified_machine)
        placement = schedule.placements["add"]
        schedule.placements["add"] = Placement(
            op="add",
            cluster=placement.cluster,
            time=0,  # before its producers finish
            assumed_latency=placement.assumed_latency,
        )
        with pytest.raises(AssertionError):
            schedule.validate()

    def test_detects_fu_overuse(self, saxpy, unified_machine):
        schedule = self._schedule(saxpy, unified_machine)
        # Clone every load into the same slot until capacity (4) exceeds.
        base = schedule.placements["ld_x"]
        for name in ("ld_y", "st_y"):
            original = schedule.placements[name]
            schedule.placements[name] = Placement(
                op=name,
                cluster=base.cluster,
                time=base.time,
                assumed_latency=original.assumed_latency,
            )
        # 3 memory ops in one slot is fine on unified (4 units) but the
        # dependence check fires first for st_y; craft a pure FU overuse
        # instead on a 2-cluster machine.
        # (This test asserts that *some* violation is detected.)
        with pytest.raises(AssertionError):
            schedule.validate()

    def test_detects_missing_communication(self, stencil, two_cluster_machine):
        schedule = self._schedule(stencil, two_cluster_machine)
        if not schedule.communications:
            pytest.skip("scheduler found a communication-free partition")
        schedule.communications.clear()
        with pytest.raises(AssertionError, match="without a timely"):
            schedule.validate()

    def test_detects_bus_conflict(self, stencil, two_cluster_machine):
        schedule = self._schedule(stencil, two_cluster_machine)
        if not schedule.communications:
            pytest.skip("scheduler found a communication-free partition")
        comm = schedule.communications[0]
        schedule.communications.append(
            Communication(
                producer=comm.producer,
                src_cluster=comm.src_cluster,
                dst_cluster=comm.dst_cluster,
                bus=comm.bus,
                start=comm.start,
                latency=comm.latency,
            )
        )
        with pytest.raises(AssertionError, match="bus conflicts"):
            schedule.validate()


class TestFormatting:
    def test_reservation_table_mentions_all_ops(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        text = schedule.format_reservation_table()
        for op in saxpy.loop.operations:
            assert op.name in text

    def test_reservation_table_has_ii_rows(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        text = schedule.format_reservation_table()
        # header + rule + one line per modulo slot
        assert len(text.splitlines()) == 2 + schedule.ii

    def test_prefetched_loads_empty_by_default(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        assert schedule.prefetched_loads() == []
