"""Tests for the Section 3 motivating example (kernel, machine, Figure 3)."""

import pytest

from repro.ir.operations import OpClass
from repro.machine.config import BusConfig
from repro.simulator import simulate
from repro.workloads import (
    MOTIVATING_CACHE_BYTES,
    figure3a_schedule,
    figure3b_schedule,
    motivating_kernel,
    motivating_machine,
    paper_total_cycles_a,
    paper_total_cycles_b,
)


class TestKernel:
    def test_structure(self):
        kernel = motivating_kernel()
        names = [op.name for op in kernel.loop.operations]
        assert names == ["ld1", "ld2", "ld3", "ld4", "mul1", "mul2", "add", "st"]

    def test_step_two(self):
        kernel = motivating_kernel(n=128)
        assert kernel.loop.inner.step == 2
        assert kernel.loop.n_iterations == 64

    def test_bc_one_cache_image_apart(self):
        kernel = motivating_kernel()
        arrays = {ref.array.name: ref.array for ref in kernel.loop.refs}
        assert arrays["C"].base - arrays["B"].base == MOTIVATING_CACHE_BYTES

    def test_a_avoids_bc_sets(self):
        kernel = motivating_kernel()
        machine = motivating_machine()
        cache = machine.cluster(0).cache
        arrays = {ref.array.name: ref.array for ref in kernel.loop.refs}
        b_sets = {
            cache.set_index(arrays["B"].address((k,)))
            for k in range(arrays["B"].shape[0])
        }
        a_sets = {
            cache.set_index(arrays["A"].address((k,)))
            for k in range(arrays["A"].shape[0])
        }
        assert not (a_sets & b_sets)

    def test_odd_n_rejected(self):
        with pytest.raises(ValueError, match="even"):
            motivating_kernel(n=127)

    def test_oversized_n_rejected(self):
        with pytest.raises(ValueError, match="half"):
            motivating_kernel(n=2048)


class TestMachine:
    def test_section3_parameters(self):
        machine = motivating_machine()
        assert machine.n_clusters == 2
        cluster = machine.cluster(0)
        assert cluster.n_fp == 1
        assert cluster.n_memory == 1
        assert cluster.n_integer == 0
        assert machine.register_bus == BusConfig(count=1, latency=2)
        assert machine.latency(OpClass.FMUL) == 2
        assert machine.latency(OpClass.LOAD) == 2
        assert machine.main_memory_latency == 10

    def test_eight_elements_per_block(self):
        machine = motivating_machine()
        cache = machine.cluster(0).cache
        assert cache.line_size // 8 == 8  # the paper's assumption


class TestFigure3Schedules:
    def test_3a_shape(self):
        kernel = motivating_kernel()
        schedule = figure3a_schedule(kernel, motivating_machine())
        assert schedule.ii == 3
        assert schedule.stage_count == 4
        assert schedule.n_communications == 1

    def test_3b_shape(self):
        kernel = motivating_kernel()
        schedule = figure3b_schedule(kernel, motivating_machine())
        assert schedule.ii == 4
        assert schedule.stage_count == 3
        assert schedule.n_communications == 2

    def test_3b_groups_streams_by_array(self):
        kernel = motivating_kernel()
        schedule = figure3b_schedule(kernel, motivating_machine())
        assert schedule.cluster_of("ld1") == schedule.cluster_of("ld3")
        assert schedule.cluster_of("ld2") == schedule.cluster_of("ld4")
        assert schedule.cluster_of("ld1") != schedule.cluster_of("ld2")

    def test_3a_total_matches_paper_closed_form(self):
        kernel = motivating_kernel()
        schedule = figure3a_schedule(kernel, motivating_machine())
        result = simulate(schedule)
        niter = kernel.loop.n_iterations
        assert result.total_cycles == paper_total_cycles_a(niter)

    def test_3a_every_load_misses(self):
        kernel = motivating_kernel()
        result = simulate(figure3a_schedule(kernel, motivating_machine()))
        # The 4 ping-ponging loads miss their local cache every iteration.
        # (Unlike the paper's closed-form accounting, the distributed
        # machine can satisfy some of them from the *other* cluster's
        # cache, so the misses split between remote hits and main memory.)
        misses = result.memory.main_memory + result.memory.remote_hits
        assert misses >= 4 * kernel.loop.n_iterations

    def test_3b_quarter_miss_ratio(self):
        kernel = motivating_kernel()
        result = simulate(figure3b_schedule(kernel, motivating_machine()))
        loads = 4 * kernel.loop.n_iterations
        load_share = result.memory.main_memory / loads
        # One line fill per 4 iterations per array stream (plus the store
        # stream and cold effects): well below the all-miss regime.
        assert load_share < 0.5

    def test_3b_no_worse_than_paper_estimate(self):
        """The paper's closed form ignores comm slack, so the simulated
        (b) schedule is at least as good as the estimate."""
        kernel = motivating_kernel()
        result = simulate(figure3b_schedule(kernel, motivating_machine()))
        niter = kernel.loop.n_iterations
        assert result.total_cycles <= paper_total_cycles_b(niter)

    def test_b_beats_a_by_at_least_paper_factor(self):
        kernel = motivating_kernel()
        machine = motivating_machine()
        total_a = simulate(figure3a_schedule(kernel, machine)).total_cycles
        total_b = simulate(figure3b_schedule(kernel, machine)).total_cycles
        assert total_a / total_b >= 1.5

    def test_closed_forms(self):
        assert paper_total_cycles_a(100) == 1509
        assert paper_total_cycles_b(100) == 1008
        assert paper_total_cycles_a(10, ntimes=2) == 2 * 159
