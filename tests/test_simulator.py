"""Tests for the lockstep execution simulator."""

import pytest

from repro.cme import SamplingCME
from repro.ir import LoopBuilder
from repro.machine import BusConfig, two_cluster, unified
from repro.scheduler import BaselineScheduler, SchedulerConfig
from repro.simulator import LockstepSimulator, simulate


def _tiny_hit_kernel():
    """All accesses hit after the first line fill (tiny footprint)."""
    b = LoopBuilder("hits")
    i = b.dim("i", 0, 64)
    a = b.array("A", (4,))
    v = b.load(a, [b.aff(0)], name="ld")
    t = b.fmul(v, v, name="mul")
    b.store(a, [b.aff(1)], t, name="st")
    return b.build()


def _missing_kernel():
    """Stride-8 stream: every load misses."""
    b = LoopBuilder("misses")
    i = b.dim("i", 0, 64)
    a = b.array("A", (512,))
    v = b.load(a, [b.aff(i=8)], name="ld")
    t = b.fmul(v, v, name="mul")
    b.store(a, [b.aff(i=8)], t, name="st")
    return b.build()


class TestComputeAccounting:
    def test_compute_matches_formula(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        result = simulate(schedule)
        niter = saxpy.loop.n_iterations
        assert result.compute_cycles == (
            (niter + schedule.stage_count - 1) * schedule.ii
        )

    def test_iteration_overrides(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        result = simulate(schedule, n_iterations=10, n_times=3)
        assert result.n_iterations == 10
        assert result.n_times == 3
        assert result.compute_cycles == 3 * (10 + schedule.stage_count - 1) * schedule.ii

    def test_total_is_compute_plus_stall(self, saxpy, two_cluster_machine):
        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        result = simulate(schedule)
        assert result.total_cycles == result.compute_cycles + result.stall_cycles


class TestStallBehaviour:
    def test_hitting_kernel_has_minimal_stall(self):
        kernel = _tiny_hit_kernel()
        schedule = BaselineScheduler().schedule(kernel, unified())
        result = simulate(schedule)
        # Only the cold miss on the first iteration can stall.
        assert result.stall_cycles <= 15
        assert result.memory.local_hits >= 60

    def test_missing_kernel_stalls(self):
        kernel = _missing_kernel()
        schedule = BaselineScheduler().schedule(kernel, unified())
        result = simulate(schedule)
        assert result.stall_cycles > 10 * 64 * 0.5  # most misses stall
        assert result.memory.main_memory >= 60

    def test_prefetching_removes_stall(self, sampling_cme):
        kernel = _missing_kernel()
        machine = unified(memory_bus=BusConfig(count=None, latency=1))
        plain = BaselineScheduler(
            SchedulerConfig(threshold=1.0), locality=sampling_cme
        ).schedule(kernel, machine)
        prefetched = BaselineScheduler(
            SchedulerConfig(threshold=0.0), locality=sampling_cme
        ).schedule(kernel, machine)
        assert simulate(prefetched).stall_cycles < simulate(plain).stall_cycles

    def test_stall_nonnegative(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        assert simulate(schedule).stall_cycles >= 0


class TestMemoryIntegration:
    def test_accesses_counted(self):
        kernel = _missing_kernel()
        schedule = BaselineScheduler().schedule(kernel, unified())
        result = simulate(schedule)
        # one load + one store per iteration
        assert result.memory.accesses == 2 * 64

    def test_cache_state_persists_across_entries(self):
        """NTIMES > 1: later entries reuse lines from earlier ones."""
        b = LoopBuilder("outer")
        j = b.dim("j", 0, 4)
        i = b.dim("i", 0, 16)
        a = b.array("A", (16,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        t = b.fmul(v, v, name="mul")
        b.store(a, [b.aff(i=1)], t, name="st")
        kernel = b.build()
        schedule = BaselineScheduler().schedule(kernel, unified())
        result = simulate(schedule)
        # 16 doubles = 4 lines: only the first entry can miss on loads.
        assert result.memory.main_memory <= 8

    def test_remote_hits_on_clustered_machine(self):
        """A value stored by one cluster and loaded by the other moves
        through the remote cache, not main memory."""
        b = LoopBuilder("sharing")
        i = b.dim("i", 0, 32)
        a = b.array("A", (64,))
        bb = b.array("B", (64,))
        v1 = b.load(a, [b.aff(i=1)], name="ld_a")
        v2 = b.load(bb, [b.aff(i=1)], name="ld_b")
        t = b.fmul(v1, v2, name="mul")
        b.store(a, [b.aff(i=1)], t, name="st")
        kernel = b.build()
        schedule = BaselineScheduler().schedule(kernel, two_cluster())
        result = simulate(schedule)
        same_cluster = schedule.cluster_of("ld_a") == schedule.cluster_of("st")
        if not same_cluster:
            assert result.memory.remote_hits > 0


class TestCrossClusterOperands:
    def test_register_comm_latency_applied(self):
        """Cross-cluster consumers see producer ready + bus latency."""
        b = LoopBuilder("cross")
        i = b.dim("i", 0, 16)
        a = b.array("A", (1024,))
        out = b.array("OUT", (1024,))
        values = [b.load(a, [b.aff(k, i=1)], name=f"ld{k}") for k in range(5)]
        total = values[0]
        for v in values[1:]:
            total = b.fadd(total, v)
        b.store(out, [b.aff(i=1)], total, name="st")
        kernel = b.build()
        machine = two_cluster(register_bus=BusConfig(count=2, latency=4))
        schedule = BaselineScheduler().schedule(kernel, machine)
        result = simulate(schedule)
        assert result.register_comms == len(schedule.communications) * 16


class TestSimulatorConstruction:
    def test_defaults_from_loop(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        sim = LockstepSimulator(schedule)
        assert sim.n_iterations == saxpy.loop.n_iterations
        assert sim.n_times == saxpy.loop.n_times

    def test_result_as_dict(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        record = simulate(schedule).as_dict()
        for key in ("kernel", "machine", "scheduler", "ii", "total_cycles",
                    "mem_accesses"):
            assert key in record

    def test_cycles_per_iteration(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        result = simulate(schedule)
        expected = result.total_cycles / saxpy.loop.n_iterations
        assert result.cycles_per_iteration == pytest.approx(expected)

    def test_stall_fraction(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        result = simulate(schedule)
        assert 0.0 <= result.stall_fraction < 1.0
