"""Lockstep execution of a modulo-scheduled loop.

All clusters run in lockstep: any stall in one cluster stalls every
cluster (Section 2.1), so the simulator keeps a single global *stall
offset*.  Operation instances are replayed in nominal schedule order
(iteration ``i`` of operation ``v`` nominally issues at ``i*II + t_v``);
when an instance's operand is not ready at its (offset-adjusted) issue
time the offset grows by the difference — that is exactly the paper's
NCYCLE_stall.

Memory instances run through the full distributed-memory timing model
(:class:`~repro.memory.hierarchy.DistributedMemorySystem`): local MSI
lookup, MSHR allocation, memory-bus arbitration, remote-cache or
main-memory fill, in-flight merging.  The scheduler's *assumed* latency
only influenced where consumers were placed; actual readiness comes from
the memory system, which is how optimistic hit-latency scheduling turns
into stalls when a load misses.

Steady-state detection
----------------------
Simulation is highly repetitive at two granularities, and the
:mod:`repro.steady` subsystem exploits both without changing a single
bit of the results — the simulator only *drives* the detectors, the
detection logic itself lives there:

* :class:`~repro.steady.entry.EntrySteadyDetector` memoizes whole loop
  entries: repeated normalized memory-state signatures prove the
  remaining ``NTIMES`` entries replay a recorded cycle;
* :class:`~repro.steady.iteration.IterationSteadyDetector` detects
  periodic behaviour *within* one entry at modulo-pipeline group
  boundaries and fast-forwards whole periods — this is what covers the
  ``NTIMES=1`` streaming kernels the entry memoizer cannot.

``steady`` selects the detectors (``off``/``entry``/``iteration``/
``auto``); ``exact=True`` forces ``off``.  Results are guaranteed — and
tested — to be bit-identical across every mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..ir.loop import Loop
from ..machine.config import MachineConfig
from ..memory.hierarchy import DistributedMemorySystem
from ..scheduler.result import Schedule
from ..steady import (
    EntrySteadyDetector,
    IterationSteadyDetector,
    SteadyState,
    SteadyStateReport,
    resolve_steady_mode,
)
from .stats import SimulationResult

__all__ = ["LockstepSimulator", "ReadyWindow", "SteadyState", "simulate"]


@dataclass(frozen=True)
class _FlowInput:
    producer: str
    distance: int
    cross_cluster: bool


class ReadyWindow:
    """Ring buffer over the most recent iterations' per-op ready times.

    The lockstep walk only ever looks *back* a bounded number of
    iterations: flow operands reach at most ``max(flow distance +
    consumer stage)`` iterations behind the newest written one, and the
    iteration-level steady detector's ready-window snapshot reaches
    ``window + stage count`` groups back.  Allocating a fresh
    ``NITER × n_ops`` list per loop entry is therefore pure churn — this
    ring keeps exactly the reachable span and is reused across entries.

    A slot is valid only when its tag equals the iteration that wrote
    it, which reproduces the full list's ``None`` (not-yet-executed /
    out-of-window) semantics bit for bit; :meth:`get` is the read path
    detectors use, the executor's hot loop inlines the same indexing.
    """

    __slots__ = ("n_ops", "span", "values", "tags")

    def __init__(self, n_ops: int, span: int):
        self.n_ops = n_ops
        self.span = max(1, span)
        self.values: List[int] = [0] * (self.span * n_ops)
        self.tags: List[int] = [-1] * (self.span * n_ops)

    def reset(self) -> None:
        """Invalidate every slot (fresh loop entry)."""
        self.tags = [-1] * (self.span * self.n_ops)

    def get(self, iteration: int, op_index: int) -> Optional[int]:
        """Ready time of instance ``(iteration, op)``; ``None`` when the
        instance has not executed (or fell out of the ring's span, which
        the span sizing proves no caller can observe)."""
        slot = (iteration % self.span) * self.n_ops + op_index
        if self.tags[slot] != iteration:
            return None
        return self.values[slot]


def _validate_count(name: str, value: Optional[int], default: int) -> int:
    """Resolve an iteration-count override, rejecting non-positive values.

    ``value or default`` would silently swallow an explicit ``0``; the
    override is applied iff it ``is not None``, and whichever count wins
    must be at least 1 — a loop that is never entered has no schedule to
    execute.
    """
    resolved = default if value is None else value
    if not isinstance(resolved, int) or isinstance(resolved, bool):
        raise ValueError(f"{name} must be an int, got {resolved!r}")
    if resolved < 1:
        raise ValueError(f"{name} must be >= 1, got {resolved}")
    return resolved


class LockstepSimulator:
    """Executes one schedule on one machine instance.

    Parameters
    ----------
    schedule:
        The modulo schedule to execute.
    n_iterations:
        Override NITER (defaults to the loop's own trip count).
    n_times:
        Override NTIMES (defaults to the loop's outer trip-count product).
        Cache state persists across executions, as on real hardware.
    exact:
        ``True`` forces every entry to be simulated instance by instance,
        disabling steady-state detection entirely (same as
        ``steady="off"``).  Results are bit-identical either way; the
        flag exists as an escape hatch and for the equivalence tests
        that prove it.
    steady:
        Detector selection, one of
        :data:`~repro.steady.STEADY_MODES`.  ``auto`` (the default)
        memoizes entries for multi-entry loops and runs the
        iteration-level detector for single-entry streaming loops.
    """

    def __init__(
        self,
        schedule: Schedule,
        n_iterations: Optional[int] = None,
        n_times: Optional[int] = None,
        exact: bool = False,
        steady: Optional[str] = None,
        warm_store=None,
    ):
        self.schedule = schedule
        self.loop: Loop = schedule.kernel.loop
        self.machine: MachineConfig = schedule.machine
        self.n_iterations = _validate_count(
            "n_iterations", n_iterations, self.loop.n_iterations
        )
        self.n_times = _validate_count(
            "n_times", n_times, self.loop.n_times
        )
        self.exact = exact
        self.steady_mode = resolve_steady_mode(steady, exact)
        #: Optional :class:`~repro.simulator.warmstate.WarmStateStore`.
        #: Consulted/fed by :meth:`run`; ignored when the resolved
        #: steady mode is ``off`` (exact runs never reuse state).
        self.warm_store = warm_store
        #: Warm-state telemetry of the last :meth:`run` (both engines).
        self.warm_stats = {"hits": 0, "stores": 0}
        #: Entry-level detection record (back-compat; also in the report).
        self.steady_state: Optional[SteadyState] = None
        #: Combined steady-state telemetry, populated by :meth:`run`.
        self.steady_report: Optional[SteadyStateReport] = None
        self.memory = DistributedMemorySystem(self.machine)
        self._flow_inputs = self._collect_flow_inputs()
        self._build_fast_tables()
        self._build_instances()

    # ------------------------------------------------------------------
    def _collect_flow_inputs(self) -> Dict[str, List[_FlowInput]]:
        """Flow operands of every operation, with cross-cluster flags."""
        ddg = self.schedule.kernel.ddg
        placements = self.schedule.placements
        inputs: Dict[str, List[_FlowInput]] = {}
        for edge in ddg.edges():
            if edge.kind != "flow":
                continue
            src = placements[edge.src]
            dst = placements[edge.dst]
            inputs.setdefault(edge.dst, []).append(
                _FlowInput(
                    producer=edge.src,
                    distance=edge.distance,
                    cross_cluster=src.cluster != dst.cluster,
                )
            )
        return inputs

    def _build_instances(self) -> None:
        """All ``(nominal time, iteration, op index)`` instances of one
        execution, sorted by nominal time with ties broken exactly like
        the historical ``(nominal, iteration, name)`` tuple sort.

        Built array-at-a-time: the per-instance Python tuple/sort churn
        used to show up in profiles once every other per-cell cost fell.
        The sorted numpy columns stay around for the vectorized engine
        and for :meth:`instance_group_bounds`.
        """
        ii = self.schedule.ii
        n_ops = self._n_ops
        n_iterations = self.n_iterations
        times = np.fromiter(self._op_time, dtype=np.int64, count=n_ops)
        # Name rank reproduces the tuple sort's string comparison.
        rank = np.empty(n_ops, dtype=np.int64)
        for position, name in enumerate(sorted(self._op_names)):
            rank[self._op_names.index(name)] = position
        iterations = np.repeat(
            np.arange(n_iterations, dtype=np.int64), n_ops
        )
        ops = np.tile(np.arange(n_ops, dtype=np.int64), n_iterations)
        nominal = iterations * ii + times[ops]
        order = np.lexsort((rank[ops], iterations, nominal))
        self._inst_nominal = nominal[order]
        self._inst_iter = iterations[order]
        self._inst_op = ops[order]
        self._instances_cache: Optional[List[Tuple[int, int, int]]] = None

    @property
    def _instances(self) -> List[Tuple[int, int, int]]:
        """The sorted instance list as Python tuples, materialized on
        first use (the vectorized engine reads only the numpy columns,
        so it never pays for this)."""
        cached = self._instances_cache
        if cached is None:
            cached = self._instances_cache = list(
                zip(
                    self._inst_nominal.tolist(),
                    self._inst_iter.tolist(),
                    self._inst_op.tolist(),
                )
            )
        return cached

    def instance_group_bounds(self) -> Tuple[List[int], int]:
        """Start index of each modulo-pipeline group in the sorted
        instance list; ``bounds[k]..bounds[k+1]`` is group ``k`` (the
        instances with nominal issue times in ``[k*II, (k+1)*II)``)."""
        nominal = self._inst_nominal
        ii = self.schedule.ii
        if nominal.size == 0:
            return [0], 0
        n_groups = int(nominal[-1]) // ii + 1
        bounds = np.searchsorted(
            nominal, np.arange(n_groups + 1, dtype=np.int64) * ii, side="left"
        )
        return bounds.tolist(), n_groups

    def _build_fast_tables(self) -> None:
        """Index-based mirrors of the per-instance lookups.

        The entry hot loop runs ``NITER × ops`` times per entry; resolving
        operations by name and rebuilding iteration-point dictionaries
        there is pure overhead, so everything that is constant across
        instances is precomputed once: operation indices, clusters,
        functional-unit latencies, flow-operand index lists (with the
        register-bus penalty folded in) and, for memory operations, the
        per-iteration address stride of the affine reference.
        """
        loop = self.loop
        placements = self.schedule.placements
        ii = self.schedule.ii
        lrb = self.machine.register_bus.latency
        names = list(placements)
        index_of = {name: i for i, name in enumerate(names)}
        self._op_names = names
        self._n_ops = len(names)
        self._cluster = [placements[n].cluster for n in names]
        self._op_time = [placements[n].time for n in names]
        self._op_stage = [time // ii for time in self._op_time]
        self._is_memory = []
        self._is_store = []
        self._fu_latency = []
        self._mem_ref = []
        for name in names:
            op = loop.operation(name)
            self._is_memory.append(op.is_memory)
            self._is_store.append(op.is_store)
            self._fu_latency.append(
                0 if op.is_memory else self.machine.latency(op.opclass)
            )
            self._mem_ref.append(loop.ref_of(op) if op.is_memory else None)
        self._flows: List[Tuple[Tuple[int, int, int], ...]] = [
            tuple(
                (
                    index_of[flow.producer],
                    flow.distance,
                    lrb if flow.cross_cluster else 0,
                )
                for flow in self._flow_inputs.get(name, ())
            )
            for name in names
        ]
        # Affine address decomposition per memory op: address(point) =
        # constant + sum(coef[var] * point[var]), extracted once from
        # the row-major linearization so _entry_tables evaluates a small
        # dot product per entry instead of re-walking the subscripts.
        inner = loop.inner
        known_vars = {inner.var} | {dim.var for dim in loop.outer_dims}
        self._mem_affine: List[Optional[Tuple[int, int, Tuple[Tuple[str, int], ...]]]] = []
        for ref in self._mem_ref:
            if ref is None:
                self._mem_affine.append(None)
                continue
            element_size = ref.array.element_size
            weight = element_size
            weights = []
            for extent in reversed(ref.array.shape):
                weights.append(weight)
                weight *= extent
            weights.reverse()
            constant = ref.array.base
            coeffs: Dict[str, int] = {}
            for expr, dim_weight in zip(ref.subscripts, weights):
                constant += expr.constant * dim_weight
                for var, coef in expr.coeffs:
                    coeffs[var] = coeffs.get(var, 0) + coef * dim_weight
            if not set(coeffs) <= known_vars:
                self._mem_affine.append(None)  # defensive: unknown var
                continue
            inner_coef = coeffs.pop(inner.var, 0)
            self._mem_affine.append(
                (
                    constant + inner_coef * inner.lower,
                    inner_coef * inner.step,
                    tuple(sorted(coeffs.items())),
                )
            )
        # Ready-ring span: the furthest any reader reaches back, in
        # iterations.  Flow operands reach ``consumer stage + distance``
        # behind the newest written iteration; the iteration detector's
        # ready-window snapshot reaches ``window + max stage - 1`` (the
        # window itself is the max flow ``distance + stage gap``).
        stage = self._op_stage
        max_stage = max(stage, default=0)
        flow_lookback = 0
        window = 0
        for dst in range(self._n_ops):
            for src, distance, _extra in self._flows[dst]:
                flow_lookback = max(flow_lookback, stage[dst] + distance)
                window = max(window, distance + stage[dst] - stage[src])
        self._ready_window = window
        span = max(flow_lookback, window + max_stage) + 1
        self._ready = ReadyWindow(self._n_ops, span)

    # ------------------------------------------------------------------
    def _make_detectors(self, outer_points):
        """Instantiate the detectors the resolved mode selects."""
        entry_detector = None
        iteration_detector = None
        mode = self.steady_mode
        if mode in ("entry", "auto") and self.n_times > 1:
            entry_detector = EntrySteadyDetector(self, outer_points)
        if mode == "iteration" or (mode == "auto" and self.n_times == 1):
            candidate = IterationSteadyDetector(self)
            if candidate.enabled:
                iteration_detector = candidate
        return entry_detector, iteration_detector

    def run(self) -> SimulationResult:
        """Execute NTIMES entries of the loop and aggregate the cycles."""
        schedule = self.schedule
        lrb = self.machine.register_bus.latency
        total_stall = 0

        outer_points = list(self._outer_points())
        n_points = len(outer_points)
        entry_compute = (self.n_iterations + schedule.stage_count - 1) * schedule.ii
        entry_detector, iteration_detector = self._make_detectors(outer_points)

        warm = self.warm_store if self.steady_mode != "off" else None
        warm_key = None
        warm_iterations: Optional[tuple] = None
        warm_done = False
        captured: dict = {}
        if warm is not None:
            warm_key = warm.key(
                schedule.fingerprint(),
                self.steady_mode,
                self.n_iterations,
                self.n_times,
            )
            record = warm.lookup(warm_key)
            if record is not None:
                adopted = self._adopt_warm(
                    record, entry_detector, iteration_detector
                )
                if adopted is not None:
                    total_stall, warm_iterations = adopted
                    self.warm_stats["hits"] += 1
                    warm_done = True
            if not warm_done and entry_detector is not None:
                # Capture the boundary state the moment a detection
                # confirms — before its replay deltas are applied.
                def _capture(match_start: int, at_entry: int) -> None:
                    captured["match_start"] = match_start
                    captured["entry"] = at_entry
                    captured["snapshot"] = self.memory.snapshot()

                entry_detector.warm_sink = _capture

        clock = 0  # global time: memory-system state spans loop entries
        entry = 0
        while not warm_done and entry < self.n_times:
            if entry_detector is not None:
                replay = entry_detector.boundary(entry, clock)
                if replay is not None:
                    total_stall += replay.stall_cycles
                    self.steady_state = replay.record
                    break
            outer = outer_points[entry % n_points]
            stall = self._run_once(outer, lrb, clock, entry, iteration_detector)
            total_stall += stall
            clock += entry_compute + stall
            if entry_detector is not None:
                entry_detector.commit(entry, stall)
            entry += 1

        if warm is not None and not warm_done:
            self._store_warm(
                warm, warm_key, entry_detector, iteration_detector,
                captured, total_stall,
            )

        self.steady_report = SteadyStateReport(
            mode=self.steady_mode,
            entry=self.steady_state,
            iterations=(
                warm_iterations
                if warm_iterations is not None
                else tuple(iteration_detector.detections)
                if iteration_detector is not None
                else ()
            ),
        )
        compute = schedule.compute_cycles(self.n_iterations, self.n_times)
        comms = schedule.n_communications * self.n_iterations * self.n_times
        return SimulationResult(
            kernel=schedule.kernel.name,
            machine=self.machine.name,
            scheduler=schedule.scheduler_name,
            threshold=schedule.threshold,
            ii=schedule.ii,
            stage_count=schedule.stage_count,
            n_times=self.n_times,
            n_iterations=self.n_iterations,
            compute_cycles=compute,
            stall_cycles=total_stall,
            memory=self.memory.stats,
            register_comms=comms,
        )

    # ------------------------------------------------------------------
    # Warm-state store integration (see repro.simulator.warmstate)
    # ------------------------------------------------------------------
    def _adopt_warm(
        self, record, entry_detector, iteration_detector
    ) -> Optional[Tuple[int, Optional[tuple]]]:
        """Try to resume from a warm record; ``None`` falls back to cold.

        Returns ``(total stall, iteration records or None)`` on success,
        with the memory system holding the state full simulation would
        have produced and ``self.steady_state`` populated for the entry
        shape.  Adoption never assumes the record fits: the entry shape
        re-proves replay soundness against this run's own address
        tables, and a record that fails any check leaves the system
        reset for an ordinary cold run.
        """
        from .warmstate import WARM_STATE_VERSION, WarmRecord

        if not isinstance(record, WarmRecord):
            return None
        if record.version != WARM_STATE_VERSION:
            return None
        if record.match_start is None:
            # Iteration shape: the snapshot is the *final* state of a
            # single-entry run whose iteration detector fired.
            if self.n_times != 1 or iteration_detector is None:
                return None
            if not record.iterations:
                return None
            self.memory.restore(record.snapshot)
            return record.entry_stall, tuple(record.iterations)
        # Entry shape: restore the detection-boundary state, then let
        # the detector re-prove and replay exactly as on a cold hit.
        if entry_detector is None:
            return None
        self.memory.restore(record.snapshot)
        replay = entry_detector.adopt(
            list(record.records), record.match_start, record.entries_simulated
        )
        if replay is None:
            self.memory.reset()  # pristine cold-start state
            return None
        self.steady_state = replay.record
        stall = sum(
            stall for stall, _ in record.records[: record.entries_simulated]
        )
        return stall + replay.stall_cycles, None

    def _store_warm(
        self, warm, warm_key, entry_detector, iteration_detector,
        captured: dict, total_stall: int,
    ) -> None:
        """Record this run's warm-up prefix, if a detector confirmed one.

        Only detector-confirmed state is stored — "warm" is defined by
        the detectors, so kernels that never converge are never cached
        (their state would be an arbitrary mid-run snapshot with no
        evidence attached).
        """
        from .warmstate import WARM_STATE_VERSION, WarmRecord

        if captured:
            at_entry = captured["entry"]
            warm.store(
                warm_key,
                WarmRecord(
                    version=WARM_STATE_VERSION,
                    entries_simulated=at_entry,
                    records=tuple(entry_detector.records[:at_entry]),
                    match_start=captured["match_start"],
                    snapshot=captured["snapshot"],
                ),
            )
            self.warm_stats["stores"] += 1
        elif (
            self.n_times == 1
            and iteration_detector is not None
            and iteration_detector.detections
        ):
            warm.store(
                warm_key,
                WarmRecord(
                    version=WARM_STATE_VERSION,
                    entries_simulated=1,
                    records=(),
                    match_start=None,
                    snapshot=self.memory.snapshot(),
                    entry_stall=total_stall,
                    iterations=tuple(iteration_detector.detections),
                ),
            )
            self.warm_stats["stores"] += 1

    # ------------------------------------------------------------------
    def _outer_points(self) -> Iterator[Dict[str, int]]:
        """Iteration points of the outer dims (one per loop entry)."""
        outer = self.loop.outer_dims
        if not outer:
            yield {}
            return

        def walk(depth: int, partial: Dict[str, int]) -> Iterator[Dict[str, int]]:
            if depth == len(outer):
                yield dict(partial)
                return
            for value in outer[depth].values():
                partial[outer[depth].var] = value
                yield from walk(depth + 1, partial)
            partial.pop(outer[depth].var, None)

        yield from walk(0, {})

    def _entry_tables(
        self, outer: Dict[str, int]
    ) -> Tuple[List[int], List[int]]:
        """Per-entry address bases: address(iteration) = base + stride*i."""
        loop = self.loop
        inner = loop.inner
        n_ops = self._n_ops
        mem_base: List[int] = [0] * n_ops
        mem_stride: List[int] = [0] * n_ops
        for op_index in range(n_ops):
            affine = self._mem_affine[op_index]
            if affine is not None:
                constant, stride, coeffs = affine
                for var, coef in coeffs:
                    constant += coef * outer[var]
                mem_base[op_index] = constant
                mem_stride[op_index] = stride
                continue
            ref = self._mem_ref[op_index]
            if ref is None:
                continue
            point = dict(outer)
            point[inner.var] = inner.lower
            first = ref.address(point)
            point[inner.var] = inner.lower + inner.step
            mem_base[op_index] = first
            mem_stride[op_index] = ref.address(point) - first
        return mem_base, mem_stride

    def _run_once(
        self,
        outer: Dict[str, int],
        lrb: int,
        base: int,
        entry: int = 0,
        detector: Optional[IterationSteadyDetector] = None,
    ) -> int:
        """One entry of the innermost loop starting at global time ``base``;
        returns its stall cycles."""
        ready = self._ready
        ready.reset()
        mem_base, mem_stride = self._entry_tables(outer)

        run = (
            detector.begin_entry(
                entry, base, ready, mem_base, mem_stride,
                final_entry=(entry == self.n_times - 1),
            )
            if detector is not None
            else None
        )
        if run is None:
            return self._walk_instances(
                0, len(self._instances), base, 0,
                ready, mem_base, mem_stride, self.n_iterations,
            )

        # The same instance walk, partitioned at modulo-pipeline group
        # boundaries so the iteration-level detector can observe them.
        # A fast-forward shrinks the remaining iteration count: skipped
        # iterations were proven to repeat the detected cycle, and the
        # tail simulates identically in the fast-forwarded frame (the
        # run's finish() re-anchors the memory state afterwards).
        bounds = detector.group_bounds
        max_stage = detector.max_stage
        effective_niter = self.n_iterations
        offset = 0
        extra_stall = 0
        for k in range(detector.n_groups):
            if run.active:
                replay = run.boundary(k, offset)
                if replay is not None:
                    effective_niter -= replay.skipped
                    extra_stall += replay.stall_cycles
            offset = self._walk_instances(
                bounds[k], bounds[k + 1], base, offset,
                ready, mem_base, mem_stride, effective_niter,
            )
            if k + 1 >= effective_niter + max_stage:
                break  # every remaining instance is a skipped iteration's
        run.finish()
        return offset + extra_stall

    def _walk_instances(
        self,
        start: int,
        end: int,
        base: int,
        offset: int,
        ready: ReadyWindow,
        mem_base: List[int],
        mem_stride: List[int],
        n_iterations: int,
    ) -> int:
        """Execute instances ``start..end`` of the sorted instance list
        (skipping iterations at or past ``n_iterations``, which a
        steady-state fast-forward has replayed); returns the updated
        stall offset.  This is THE lockstep hot loop — the reference the
        vectorized engine is proven bit-identical against, and the walk
        both the plain path and the detector-partitioned path run, so
        steady modes can never drift from exact simulation."""
        n_ops = self._n_ops
        instances = self._instances
        clusters = self._cluster
        is_memory = self._is_memory
        is_store = self._is_store
        fu_latency = self._fu_latency
        flows = self._flows
        access = self.memory.access
        span = ready.span
        tags = ready.tags
        values = ready.values

        for position in range(start, end):
            nominal, iteration, op_index = instances[position]
            if iteration >= n_iterations:
                continue
            issue = base + nominal + offset

            # Lockstep operand wait.
            for src_index, distance, extra in flows[op_index]:
                src_iter = iteration - distance
                if src_iter < 0:
                    continue  # live-in from before this loop entry
                slot = (src_iter % span) * n_ops + src_index
                if tags[slot] != src_iter:
                    continue
                operand_ready = values[slot] + extra
                if operand_ready > issue:
                    offset += operand_ready - issue
                    issue = operand_ready

            if is_memory[op_index]:
                result = access(
                    clusters[op_index],
                    mem_base[op_index] + mem_stride[op_index] * iteration,
                    is_store[op_index],
                    issue,
                )
                slot = (iteration % span) * n_ops + op_index
                tags[slot] = iteration
                values[slot] = result.ready_time
            else:
                slot = (iteration % span) * n_ops + op_index
                tags[slot] = iteration
                values[slot] = issue + fu_latency[op_index]
        return offset


def simulate(
    schedule: Schedule,
    n_iterations: Optional[int] = None,
    n_times: Optional[int] = None,
    exact: bool = False,
    steady: Optional[str] = None,
    sim: Optional[str] = None,
    warm_store=None,
) -> SimulationResult:
    """Convenience one-shot simulation.

    ``sim`` selects the engine (:data:`repro.simulator.SIM_ENGINES`;
    default: the vectorized engine).  Results are bit-identical across
    engines.  ``warm_store`` optionally shares post-warm-up memory
    state between content-equal runs (bit-identical either way).
    """
    from . import DEFAULT_SIM_ENGINE, SIM_ENGINES, validate_sim_engine

    requested = DEFAULT_SIM_ENGINE if sim is None else sim
    engine = SIM_ENGINES[validate_sim_engine(requested)]
    return engine(
        schedule,
        n_iterations=n_iterations,
        n_times=n_times,
        exact=exact,
        steady=steady,
        warm_store=warm_store,
    ).run()
