"""Command-line interface.

Exposes the main experiments without writing Python::

    python -m repro.cli table1
    python -m repro.cli suite
    python -m repro.cli schedule tomcatv --machine 2-cluster --scheduler rmca
    python -m repro.cli simulate swim --machine 4-cluster --threshold 0.25
    python -m repro.cli fig5 --clusters 2 --latencies 1 4 --jobs 4 --out fig5.json
    python -m repro.cli fig6 --clusters 4 --csv fig6.csv
    python -m repro.cli scenarios
    python -m repro.cli run fig6-smoke --jobs 2
    python -m repro.cli serve --port 8642 --cache-dir /tmp/grid-cache
    python -m repro.cli submit fig6-smoke --url http://127.0.0.1:8642
    python -m repro.cli export fig6-smoke --format npz

Every command prints its table/chart to stdout; the figure commands can
additionally persist the raw records (``--csv`` / ``--out`` JSON).
``figure5``/``figure6`` (aliases ``fig5``/``fig6``) and ``run`` execute
their cells through the experiment grid: ``--jobs N`` fans them out over
N worker processes, repeated invocations reuse the on-disk cell cache
under ``--cache-dir`` (or ``$REPRO_GRID_CACHE``), and per-cell progress
is reported on stderr (suppress with ``--no-progress``).  ``scenarios``
lists the registry (``--json`` for the machine-readable listing the
service also serves); ``run <scenario>`` executes one entry end-to-end
(``--exact`` disables the simulator's steady-state memoization, ``--spec``
prints the JSON spec instead of running).

The service trio: ``serve`` runs the long-lived experiment service (one
warm process owning the grid and its stores across jobs), ``submit``
sends a scenario to a running service and streams its progress, and
``export`` runs a scenario locally and writes its records as an npz/csv
artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .cme import SAMPLED_ENGINES
from .engine import CellPipeline, CellRequest, make_scheduler
from .harness.charts import render_figure
from .harness.grid import CellSpec, ExperimentGrid, ProgressCallback
from .harness.io import figure_to_csv, figure_to_json
from .harness.report import format_table
from .harness.scenarios import (
    all_scenarios,
    get_scenario,
    run_scenario,
    scenario_listing,
)
from .harness.sweep import figure5, figure6
from .machine import ALL_PRESETS, preset
from .service import (
    BACKEND_KINDS,
    EXPORT_FORMATS,
    JobManager,
    ServiceClient,
    ServiceError,
    export_outcome,
    make_backend,
    run_server,
)
from .simulator import DEFAULT_SIM_ENGINE, SIM_ENGINES
from .steady import STEADY_MODES
from .workloads import SPEC_KERNELS, kernel_by_name, suite_stats

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_cme_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--max-points", type=int, default=512)
    cmd.add_argument(
        "--cme", choices=sorted(SAMPLED_ENGINES), default="incremental",
        help="sampled-CME engine (results are bit-identical; "
             "'sampling' is the from-scratch reference)",
    )


def _build_locality(args: argparse.Namespace):
    return SAMPLED_ENGINES[args.cme](args.max_points)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Modulo Scheduling for a Fully-Distributed "
            "Clustered VLIW Architecture' (MICRO-33, 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 machine configurations")
    sub.add_parser("suite", help="print the workload suite statistics")

    for name, help_text in (
        ("schedule", "modulo-schedule a kernel and print the kernel table"),
        ("simulate", "schedule and simulate a kernel"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("kernel", choices=sorted(SPEC_KERNELS))
        cmd.add_argument(
            "--machine", default="2-cluster", choices=sorted(ALL_PRESETS)
        )
        cmd.add_argument(
            "--scheduler", default="rmca", choices=("baseline", "rmca")
        )
        cmd.add_argument("--threshold", type=float, default=1.0)
        _add_cme_options(cmd)

    for name, alias in (("figure5", "fig5"), ("figure6", "fig6")):
        cmd = sub.add_parser(
            name, aliases=[alias], help=f"regenerate {name} of the paper"
        )
        cmd.add_argument("--clusters", type=int, default=2, choices=(2, 4))
        cmd.add_argument(
            "--thresholds", type=float, nargs="+",
            default=[1.0, 0.75, 0.25, 0.0],
        )
        cmd.add_argument("--kernels", nargs="+", choices=sorted(SPEC_KERNELS))
        _add_cme_options(cmd)
        cmd.add_argument("--csv", help="write per-kernel records as CSV")
        cmd.add_argument("--out", help="write the figure as JSON")
        cmd.add_argument(
            "--jobs", type=_positive_int, default=1, metavar="N",
            help="worker processes for the experiment grid (default: 1)",
        )
        cmd.add_argument(
            "--no-cache", action="store_true",
            help="recompute every cell (disable memory and disk caching; "
                 "warm-state reuse keeps working in memory)",
        )
        cmd.add_argument(
            "--no-warm-store", action="store_true",
            help="disable content-addressed warm-state reuse between "
                 "cells (results are bit-identical either way)",
        )
        cmd.add_argument(
            "--no-stage-store", action="store_true",
            help="disable the per-stage content-addressed result store "
                 "(analyze/schedule/simulate dedup; results are "
                 "bit-identical either way)",
        )
        cmd.add_argument(
            "--no-plan", action="store_true",
            help="execute cells one by one instead of through the "
                 "up-front stage-task plan (the bit-identical reference "
                 "path)",
        )
        cmd.add_argument(
            "--cache-dir", metavar="DIR",
            help="on-disk cell cache directory (default: $REPRO_GRID_CACHE)",
        )
        cmd.add_argument(
            "--no-progress", action="store_true",
            help="suppress per-cell progress reporting on stderr",
        )
        cmd.add_argument(
            "--steady", choices=STEADY_MODES, default="auto",
            help="steady-state detector selection (results are "
                 "bit-identical across modes; default: auto)",
        )
        cmd.add_argument(
            "--sim", choices=sorted(SIM_ENGINES), default=DEFAULT_SIM_ENGINE,
            help="simulate engine (results are bit-identical; 'scalar' "
                 "is the per-instance reference walk)",
        )
        if name == "figure5":
            cmd.add_argument(
                "--latencies", type=int, nargs="+", default=[1, 2, 4]
            )
        else:
            cmd.add_argument(
                "--bus-counts", type=int, nargs="+", default=[1, 2]
            )
            cmd.add_argument(
                "--bus-latencies", type=int, nargs="+", default=[1, 4]
            )

    scen_cmd = sub.add_parser("scenarios", help="list the scenario registry")
    scen_cmd.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable listing (the same serialization "
             "the experiment service's GET /scenarios endpoint returns)",
    )

    run_cmd = sub.add_parser(
        "run", help="execute a registered scenario on the experiment grid"
    )
    run_cmd.add_argument("scenario", help="scenario name (see `scenarios`)")
    run_cmd.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the experiment grid (default: 1)",
    )
    run_cmd.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell (disable memory and disk caching; "
             "warm-state reuse keeps working in memory)",
    )
    run_cmd.add_argument(
        "--no-warm-store", action="store_true",
        help="disable content-addressed warm-state reuse between cells "
             "(results are bit-identical either way)",
    )
    run_cmd.add_argument(
        "--no-stage-store", action="store_true",
        help="disable the per-stage content-addressed result store "
             "(analyze/schedule/simulate dedup; results are "
             "bit-identical either way)",
    )
    run_cmd.add_argument(
        "--no-plan", action="store_true",
        help="execute cells one by one instead of through the up-front "
             "stage-task plan (the bit-identical reference path)",
    )
    run_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="on-disk cell cache directory (default: $REPRO_GRID_CACHE)",
    )
    run_cmd.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-cell progress reporting on stderr",
    )
    run_cmd.add_argument(
        "--exact", action="store_true",
        help="disable the simulator's steady-state detection "
             "(results are bit-identical either way)",
    )
    run_cmd.add_argument(
        "--steady", choices=STEADY_MODES,
        help="override the scenario's steady-state detector selection "
             "(off/entry/iteration/auto; results are bit-identical)",
    )
    run_cmd.add_argument(
        "--sim", choices=sorted(SIM_ENGINES),
        help="override the scenario's simulate engine (results are "
             "bit-identical; 'scalar' is the reference walk)",
    )
    run_cmd.add_argument(
        "--spec", action="store_true",
        help="print the scenario's JSON spec instead of running it",
    )
    run_cmd.add_argument("--csv", help="figure scenarios: records as CSV")
    run_cmd.add_argument("--out", help="figure scenarios: figure as JSON")

    serve_cmd = sub.add_parser(
        "serve",
        help="run the long-lived experiment service (one warm process "
             "owning the grid and its stores across jobs)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8642)
    serve_cmd.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes per job's experiment grid (default: 1)",
    )
    serve_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="directory for the stores' disk layers (traces, warm state, "
             "per-stage results); default: $REPRO_GRID_CACHE",
    )
    serve_cmd.add_argument(
        "--backend", choices=BACKEND_KINDS, default="memory",
        help="job-record persistence (default: memory; disk keeps records "
             "across restarts, see --backend-dir)",
    )
    serve_cmd.add_argument(
        "--backend-dir", metavar="DIR",
        help="job-record directory (required with --backend disk)",
    )
    serve_cmd.add_argument(
        "--exact", action="store_true",
        help="run every cell with steady-state detection disabled "
             "(results are bit-identical either way)",
    )
    serve_cmd.add_argument(
        "--no-plan", action="store_true",
        help="execute every job's cells one by one instead of through "
             "the up-front stage-task plan",
    )

    submit_cmd = sub.add_parser(
        "submit",
        help="submit a scenario to a running service and stream progress",
    )
    submit_cmd.add_argument(
        "scenario", help="scenario name (resolved by the server's registry)"
    )
    submit_cmd.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="service base URL (default: http://127.0.0.1:8642)",
    )
    submit_cmd.add_argument(
        "--steady", choices=STEADY_MODES,
        help="override the scenario's steady-state detector selection",
    )
    submit_cmd.add_argument(
        "--sim", choices=sorted(SIM_ENGINES),
        help="override the scenario's simulate engine",
    )
    submit_cmd.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="per-request timeout (the event stream waits this long "
             "between events; default: 600)",
    )
    submit_cmd.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-cell progress reporting on stderr",
    )

    export_cmd = sub.add_parser(
        "export",
        help="run a scenario locally and export its records as npz/csv",
    )
    export_cmd.add_argument("scenario", help="scenario name (see `scenarios`)")
    export_cmd.add_argument(
        "--format", choices=EXPORT_FORMATS, default="npz",
        help="artifact format (default: npz)",
    )
    export_cmd.add_argument(
        "--out", metavar="PATH",
        help="output path (default: <scenario>.<format>)",
    )
    export_cmd.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the experiment grid (default: 1)",
    )
    export_cmd.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell (disable memory and disk caching)",
    )
    export_cmd.add_argument(
        "--no-warm-store", action="store_true",
        help="disable content-addressed warm-state reuse between cells",
    )
    export_cmd.add_argument(
        "--no-stage-store", action="store_true",
        help="disable the per-stage content-addressed result store",
    )
    export_cmd.add_argument(
        "--no-plan", action="store_true",
        help="execute cells one by one instead of through the up-front "
             "stage-task plan (the bit-identical reference path)",
    )
    export_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="on-disk cell cache directory (default: $REPRO_GRID_CACHE)",
    )
    export_cmd.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-cell progress reporting on stderr",
    )
    export_cmd.add_argument(
        "--steady", choices=STEADY_MODES,
        help="override the scenario's steady-state detector selection",
    )
    export_cmd.add_argument(
        "--sim", choices=sorted(SIM_ENGINES),
        help="override the scenario's simulate engine",
    )
    return parser


def _cmd_table1() -> int:
    rows = []
    for name in ("unified", "2-cluster", "4-cluster", "heterogeneous"):
        machine = preset(name)
        desc = machine.describe()
        rows.append(
            (
                name,
                desc["clusters"],
                desc["issue_width"],
                desc["total_registers"],
                desc["total_cache"],
            )
        )
    print(
        format_table(
            ["config", "clusters", "issue width", "registers", "L1 bytes"],
            rows,
        )
    )
    return 0


def _cmd_suite() -> int:
    rows = [
        (name, s["dims"], s["operations"], s["memory_operations"],
         s["niter"], s["ntimes"])
        for name, s in suite_stats().items()
    ]
    print(
        format_table(
            ["kernel", "dims", "ops", "mem ops", "NITER", "NTIMES"], rows
        )
    )
    return 0


def _cmd_schedule(args: argparse.Namespace, run_simulation: bool) -> int:
    kernel = kernel_by_name(args.kernel)
    machine = preset(args.machine)
    locality = _build_locality(args)
    outcome = None
    if run_simulation:
        # Full pipeline: build -> analyze -> schedule -> simulate -> measure,
        # with per-stage wall-clock reported.
        outcome = CellPipeline().run(
            CellRequest(
                kernel=kernel,
                machine=machine,
                scheduler=args.scheduler,
                threshold=args.threshold,
                locality=locality,
            )
        )
        schedule = outcome.result.schedule
    else:
        engine = make_scheduler(args.scheduler, args.threshold, locality)
        schedule = engine.schedule(kernel, machine)
    schedule.validate()
    print(schedule.format_reservation_table())
    print(
        f"II={schedule.ii} (MII={schedule.mii})  SC={schedule.stage_count}  "
        f"comms/iter={schedule.n_communications}  "
        f"prefetched={schedule.prefetched_loads() or '-'}"
    )
    if outcome is not None:
        result = outcome.result.simulation
        print(
            f"cycles: total={result.total_cycles} "
            f"(compute={result.compute_cycles}, stall={result.stall_cycles})"
        )
        print(f"memory: {result.memory.as_dict()}")
        stages = "  ".join(
            f"{record.stage}={record.seconds * 1000:.1f}ms"
            for record in outcome.report.records
        )
        print(f"pipeline: {stages}")
    return 0


def _progress_printer(stream) -> "ProgressCallback":
    """Per-cell progress line, overwritten in place on a terminal."""
    def report(done: int, total: int, spec: CellSpec, source: str) -> None:
        end = "\r" if stream.isatty() and done < total else "\n"
        print(
            f"[{done}/{total}] {spec} ({source})",
            end=end, file=stream, flush=True,
        )
    return report


def _build_grid(args: argparse.Namespace, locality) -> ExperimentGrid:
    """The grid shared by the figure and scenario commands: one place
    maps the common --jobs/--no-cache/--cache-dir/--no-progress (and,
    where offered, --exact) flags onto the engine."""
    return ExperimentGrid(
        locality=locality,
        n_jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=None if args.no_progress else _progress_printer(sys.stderr),
        exact=getattr(args, "exact", False),
        warm=not args.no_warm_store,
        stage_store=not args.no_stage_store,
        plan=not getattr(args, "no_plan", False),
    )


def _emit_figure(figure, args: argparse.Namespace) -> None:
    """Render a figure to stdout plus the optional --csv/--out files."""
    print(render_figure(figure))
    if args.csv:
        print(f"records written to {figure_to_csv(figure, args.csv)}")
    if args.out:
        print(f"figure written to {figure_to_json(figure, args.out)}")


def _cmd_figure(args: argparse.Namespace, which: str) -> int:
    # Explicit is-None test: argparse leaves the attribute None when the
    # flag is absent, and a falsy-but-present value must not be treated
    # as "use the default suite".
    kernels = (
        None
        if args.kernels is None
        else [kernel_by_name(name) for name in args.kernels]
    )
    grid = _build_grid(args, _build_locality(args))
    if which == "figure5":
        figure = figure5(
            n_clusters=args.clusters,
            latencies=tuple(args.latencies),
            thresholds=tuple(args.thresholds),
            kernels=kernels,
            grid=grid,
            steady=args.steady,
            sim=args.sim,
        )
    else:
        figure = figure6(
            n_clusters=args.clusters,
            bus_counts=tuple(args.bus_counts),
            bus_latencies=tuple(args.bus_latencies),
            thresholds=tuple(args.thresholds),
            kernels=kernels,
            grid=grid,
            steady=args.steady,
            sim=args.sim,
        )
    if not args.no_progress:
        _grid_stats_line(grid, sys.stderr)
    _emit_figure(figure, args)
    return 0


def _grid_stats_line(grid: ExperimentGrid, stream) -> None:
    stats = grid.stats
    stages = "  ".join(
        f"{stage}={seconds:.2f}s"
        for stage, seconds in stats.stage_seconds.items()
    )
    warm = ""
    if grid.warm_store is not None:
        store = grid.warm_store
        warm = (
            f"\nwarm state: {store.hits} hits, {store.misses} misses, "
            f"{store.stores} stored"
        )
    stage = ""
    if grid.stage_store is not None:
        parts = []
        for name, counts in grid.stage_store.telemetry().items():
            probes = counts["hits"] + counts["misses"]
            parts.append(f"{name} {counts['hits']}/{probes} reused")
        stage = (
            f"\nstage store: " + ", ".join(parts)
            + f", {sum(c['stores'] for c in grid.stage_store.telemetry().values())} stored"
        )
    plan = ""
    if stats.plan.get("runs"):
        p = stats.plan
        plan = (
            f"\nplan: {p.get('cells', 0)} cells -> "
            f"{p.get('analyze_tasks', 0)} analyze + "
            f"{p.get('schedule_tasks', 0)}/{p.get('schedule_unique', 0)} "
            f"schedule + "
            f"{p.get('simulate_tasks', 0)}/{p.get('simulate_unique', 0)} "
            f"simulate tasks, {p.get('batches', 0)} batches "
            f"(max width {p.get('batch_width_max', 0)})"
        )
    print(
        f"cells: {stats.requested} requested, {stats.computed} computed, "
        f"{stats.memory_hits + stats.disk_hits} cached, "
        f"{stats.deduplicated} deduplicated"
        + (f"\nstage seconds: {stages}" if stages else "")
        + warm
        + stage
        + plan,
        file=stream,
    )


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.json:
        print(json.dumps(scenario_listing(), indent=1, sort_keys=True))
        return 0
    rows = []
    for scenario in all_scenarios():
        cells = scenario.n_cells()
        rows.append(
            (
                scenario.name,
                "figure" if scenario.is_figure else "grid",
                "-" if cells is None else cells,
                scenario.description,
            )
        )
    print(format_table(["scenario", "kind", "cells", "description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    if args.spec:
        print(scenario.to_json())
        return 0
    grid = _build_grid(args, scenario.locality.build())
    outcome = run_scenario(
        scenario, grid=grid, steady=args.steady, sim=args.sim
    )
    if not args.no_progress:
        _grid_stats_line(grid, sys.stderr)
    if outcome.figure is not None:
        _emit_figure(outcome.figure, args)
        return 0
    rows = [
        (
            group,
            kernel,
            result.scheduler,
            f"{threshold:.2f}",
            result.schedule.ii,
            result.total_cycles,
            result.compute_cycles,
            result.stall_cycles,
        )
        for group, threshold, kernel, result in outcome.iter_rows()
    ]
    print(
        format_table(
            ["group", "kernel", "scheduler", "thr", "II",
             "total", "compute", "stall"],
            rows,
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.backend == "disk" and args.backend_dir is None:
        print("--backend disk requires --backend-dir", file=sys.stderr)
        return 2
    manager = JobManager(
        cache_dir=args.cache_dir,
        backend=make_backend(args.backend, args.backend_dir),
        n_jobs=args.jobs,
        exact=args.exact,
        plan=not args.no_plan,
    )
    run_server(host=args.host, port=args.port, manager=manager)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        job = client.submit(
            scenario=args.scenario, steady=args.steady, sim=args.sim
        )
        job_id = job["id"]
        print(f"job {job_id} submitted to {client.url}", file=sys.stderr)
        for event in client.events(job_id):
            if args.no_progress:
                continue
            if event["type"] == "cell":
                print(
                    f"[{event['done']}/{event['total']}] {event['kernel']}"
                    f"@{event['machine']} {event['scheduler']} "
                    f"thr={event['threshold']:.2f} ({event['source']})",
                    file=sys.stderr,
                )
            elif event["type"] == "state":
                print(f"job {job_id}: {event['state']}", file=sys.stderr)
        outcome = client.result(job_id)
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    if outcome["state"] != "done":
        print(f"job failed: {outcome['error']}", file=sys.stderr)
        return 1
    telemetry = outcome["telemetry"]
    result = outcome["result"]
    count = (
        len(result["figure"]["records"])
        if result["kind"] == "figure"
        else len(result["rows"])
    )
    print(
        f"job {job_id} done: {count} records, "
        f"{telemetry['store_hits']} stage-store hits, "
        f"{telemetry['sim_warm_hits']} warm-state hits"
    )
    print(json.dumps(result, indent=1, sort_keys=True))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    grid = _build_grid(args, scenario.locality.build())
    outcome = run_scenario(
        scenario, grid=grid, steady=args.steady, sim=args.sim
    )
    if not args.no_progress:
        _grid_stats_line(grid, sys.stderr)
    out = args.out if args.out else f"{scenario.name}.{args.format}"
    written = export_outcome(outcome, out, args.format)
    print(f"records written to {written}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "suite":
        return _cmd_suite()
    if args.command == "schedule":
        return _cmd_schedule(args, run_simulation=False)
    if args.command == "simulate":
        return _cmd_schedule(args, run_simulation=True)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "export":
        return _cmd_export(args)
    aliases = {"fig5": "figure5", "fig6": "figure6"}
    command = aliases.get(args.command, args.command)
    if command in ("figure5", "figure6"):
        return _cmd_figure(args, command)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
