"""Lockstep multiVLIWprocessor execution simulator.

Two engines execute the same lockstep model:

* :class:`LockstepSimulator` — the scalar reference: one interpreted
  loop body per operation instance;
* :class:`VectorizedSimulator` — the array-at-a-time engine (PR 5):
  batched memory accesses, hazard-check replay, non-memory instances
  never visited.  Bit-identical to the reference and the default
  everywhere (``SIM_ENGINES``/``DEFAULT_SIM_ENGINE``).
"""

from .executor import LockstepSimulator, ReadyWindow, SteadyState, simulate
from .stats import SimulationResult
from .trace import Trace, TraceEvent, trace_schedule
from .vectorized import VectorizedSimulator
from .warmstate import WARM_STATE_VERSION, WarmRecord, WarmStateStore

__all__ = [
    "DEFAULT_SIM_ENGINE",
    "LockstepSimulator",
    "ReadyWindow",
    "SIM_ENGINES",
    "SimulationResult",
    "SteadyState",
    "Trace",
    "TraceEvent",
    "VectorizedSimulator",
    "WARM_STATE_VERSION",
    "WarmRecord",
    "WarmStateStore",
    "simulate",
    "trace_schedule",
    "validate_sim_engine",
]

#: Simulate-engine registry: every entry is proven bit-identical to the
#: scalar reference by tests/test_simulator_vectorized.py.
SIM_ENGINES = {
    "scalar": LockstepSimulator,
    "vectorized": VectorizedSimulator,
}

DEFAULT_SIM_ENGINE = "vectorized"


def validate_sim_engine(sim: str) -> str:
    """Return ``sim`` or raise on an unknown engine selection."""
    if sim not in SIM_ENGINES:
        raise KeyError(
            f"unknown simulate engine {sim!r}; "
            f"choose from {sorted(SIM_ENGINES)}"
        )
    return sim
