"""Cell result containers shared by every layer above the simulator.

:class:`RunResult` is the unit of currency of the whole experiment
stack: the pipeline produces it, the grid caches it, the sweeps
normalize it.  It lives in the engine package (rather than
``repro.analysis``) so the pipeline does not depend on the analysis
layer; :mod:`repro.analysis.compare` re-exports it for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..scheduler.result import Schedule
from ..simulator.stats import SimulationResult

__all__ = ["RunResult", "ExecutionCounter", "CELL_EXECUTIONS"]


class ExecutionCounter:
    """Process-local count of cell-pipeline executions.

    The sweep grid's cache tests assert that warm runs perform *zero*
    schedule/simulate computations; this counter is what they observe.
    """

    def __init__(self) -> None:
        self.count = 0

    def increment(self) -> None:
        self.count += 1

    def reset(self) -> None:
        self.count = 0


#: Incremented on every pipeline execution in this process.
CELL_EXECUTIONS = ExecutionCounter()


@dataclass(frozen=True)
class RunResult:
    """One (kernel, machine, scheduler, threshold) experiment cell."""

    kernel: str
    machine: str
    scheduler: str
    threshold: float
    schedule: Schedule
    simulation: SimulationResult

    @property
    def total_cycles(self) -> int:
        return self.simulation.total_cycles

    @property
    def compute_cycles(self) -> int:
        return self.simulation.compute_cycles

    @property
    def stall_cycles(self) -> int:
        return self.simulation.stall_cycles

    def canonical(self) -> Dict[str, object]:
        """Plain-data projection of everything the cell observed.

        Two results are equivalent iff their canonical forms are equal;
        unlike ``==`` this also holds across pickling boundaries (the
        dependence graph inside ``schedule.kernel`` compares by identity),
        so the parallel-equivalence tests compare these.
        """
        return {
            "kernel": self.kernel,
            "machine": self.machine,
            "scheduler": self.scheduler,
            "threshold": self.threshold,
            "ii": self.schedule.ii,
            "mii": self.schedule.mii,
            "placements": sorted(
                (p.op, p.cluster, p.time, p.assumed_latency)
                for p in self.schedule.placements.values()
            ),
            "communications": sorted(
                (c.producer, c.src_cluster, c.dst_cluster, c.bus,
                 c.start, c.latency)
                for c in self.schedule.communications
            ),
            "simulation": self.simulation.as_dict(),
        }
