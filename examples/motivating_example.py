#!/usr/bin/env python
"""The paper's Section 3 motivating example, end to end.

The loop ``DO I = 1,N,2: A(I) = B(I)*C(I) + B(I+1)*C(I+1)`` runs on the
2-cluster machine of Section 3 with B and C placed one cache-image apart
so they ping-pong in a direct-mapped cache.  Two things are reproduced:

1. the paper's *hand-crafted* Figure 3 schedules — the register-optimal
   partition (a) at II=3 where every load misses, and the locality-aware
   partition (b) at II=4 where the ping-pong disappears — simulated and
   compared against the paper's closed forms
   ``total(a) = NTIMES*(15N+9)`` and ``total(b) = NTIMES*(10N+8)``;
2. what the actual schedulers do on the same kernel: RMCA discovers the
   per-array grouping of (b) on its own.

Usage::

    python examples/motivating_example.py
"""

from repro import SamplingCME, make_scheduler, simulate
from repro.workloads import (
    figure3a_schedule,
    figure3b_schedule,
    motivating_kernel,
    motivating_machine,
    paper_total_cycles_a,
    paper_total_cycles_b,
)


def show(schedule, label):
    result = simulate(schedule)
    print(f"--- {label} ---")
    print(schedule.format_reservation_table())
    print(
        f"II={schedule.ii}  SC={schedule.stage_count}  "
        f"comms/iter={schedule.n_communications}"
    )
    print(
        f"cycles: total={result.total_cycles} "
        f"(compute={result.compute_cycles}, stall={result.stall_cycles})"
    )
    print()
    return result.total_cycles


def main():
    kernel = motivating_kernel()
    machine = motivating_machine()
    niter = kernel.loop.n_iterations
    print(f"kernel: {kernel.loop} (NITER={niter})")
    print(f"machine: {machine.name}")
    print()

    total_a = show(figure3a_schedule(kernel, machine), "Figure 3(a): register-optimal")
    total_b = show(figure3b_schedule(kernel, machine), "Figure 3(b): locality-aware")

    print(f"paper closed form (a): {paper_total_cycles_a(niter)}   measured: {total_a}")
    print(f"paper closed form (b): {paper_total_cycles_b(niter)}   measured: {total_b}")
    print(
        f"measured speedup b-over-a: {total_a / total_b:.2f}x "
        f"(paper's estimate: {paper_total_cycles_a(niter) / paper_total_cycles_b(niter):.2f}x)"
    )
    print()

    # What the real schedulers produce on the same input.
    locality = SamplingCME(max_points=1024)
    for name in ("baseline", "rmca"):
        scheduler = make_scheduler(name, threshold=1.0, locality=locality)
        schedule = scheduler.schedule(kernel, machine)
        schedule.validate()
        clusters = {
            op: schedule.cluster_of(op) for op in ("ld1", "ld2", "ld3", "ld4")
        }
        total = simulate(schedule).total_cycles
        print(f"{name:8s}: II={schedule.ii} total={total} load clusters {clusters}")
    print()
    print(
        "RMCA groups the B loads (ld1, ld3) and the C loads (ld2, ld4) per"
        " cluster, removing the ping-pong, exactly as Figure 3(b) argues."
    )


if __name__ == "__main__":
    main()
