"""Scheduler-facing locality-analysis protocol.

The schedulers only need two statistics (Section 4.2 of the paper):

* the number of misses incurred by a *set* of memory references sharing
  one cache configuration, and
* the miss ratio of one particular memory instruction within that set.

Any object implementing :class:`LocalityAnalyzer` can drive the RMCA
scheduler; the package ships the sampled solver (primary, the paper's
practical choice) and a closed-form analytic model (ablation).
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from ..ir.loop import Loop
from ..ir.operations import Operation
from ..machine.config import CacheConfig
from .analytic import AnalyticCME
from .sampling import SamplingCME

__all__ = ["LocalityAnalyzer", "default_analyzer", "locality_fingerprint"]


@runtime_checkable
class LocalityAnalyzer(Protocol):
    """Protocol both CME backends implement."""

    name: str

    def miss_count(
        self, loop: Loop, ops: Sequence[Operation], cache: CacheConfig
    ) -> float:
        """Misses incurred by ``ops`` sharing one cache over ``loop``."""
        ...

    def miss_ratio(
        self,
        loop: Loop,
        op: Operation,
        ops: Sequence[Operation],
        cache: CacheConfig,
    ) -> float:
        """Miss ratio of ``op`` when co-located with ``ops``."""
        ...


def default_analyzer(max_points: int = 2048) -> SamplingCME:
    """The analyzer used throughout the paper's experiments."""
    return SamplingCME(max_points=max_points)


def locality_fingerprint(analyzer: LocalityAnalyzer) -> str:
    """Stable description of a locality analyzer's configuration.

    Part of every grid cache key: two analyzers with equal fingerprints
    must drive the schedulers to identical decisions.
    """
    name = getattr(analyzer, "name", type(analyzer).__name__)
    max_points = getattr(analyzer, "max_points", None)
    if max_points is not None:
        return f"{name}:{max_points}"
    return str(name)
