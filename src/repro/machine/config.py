"""Machine configuration for the multiVLIWprocessor.

The configuration mirrors Section 2.1 and Table 1 of the paper:

* N homogeneous clusters, each with integer / FP / memory functional
  units, a local register file, and a local L1 data cache,
* a set of *register buses* shared by all clusters (compiler-managed,
  reservation-table resources),
* a set of *memory buses* connecting the local caches and main memory
  (hardware-arbitrated, timing-simulator resources),
* per-operation-class latencies.

``count=None`` on a :class:`BusConfig` means *unbounded* (the Section 5.2
study); the scheduler then never fails bus allocation and the timing
simulator never queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Dict, Mapping, Optional, Tuple

from ..ir.operations import FUType, OpClass

__all__ = [
    "CacheConfig",
    "BusConfig",
    "ClusterConfig",
    "MachineConfig",
    "DEFAULT_LATENCIES",
]


#: Operation latencies used throughout the evaluation.  The motivating
#: example (Section 3) uses 2-cycle arithmetic and 2-cycle local-cache
#: hits; main memory is 10 cycles (Section 5.1).
DEFAULT_LATENCIES: Mapping[OpClass, int] = {
    OpClass.IADD: 1,
    OpClass.ISUB: 1,
    OpClass.IMUL: 2,
    OpClass.ICMP: 1,
    OpClass.SHIFT: 1,
    OpClass.FADD: 2,
    OpClass.FSUB: 2,
    OpClass.FMUL: 2,
    OpClass.FDIV: 8,
    OpClass.FNEG: 1,
    OpClass.LOAD: 2,  # local-cache hit latency (optimistic assumption)
    OpClass.STORE: 1,
}


@dataclass(frozen=True)
class CacheConfig:
    """One cluster's local L1 data cache.

    The paper's caches are direct-mapped, non-blocking, with a 10-entry
    MSHR; total capacity 8KB split evenly among clusters.
    """

    size: int
    line_size: int = 32
    associativity: int = 1
    mshr_entries: int = 10
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size <= 0 or self.line_size <= 0:
            raise ValueError("cache size and line size must be positive")
        if self.size % self.line_size != 0:
            raise ValueError("cache size must be a multiple of line size")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        n_lines = self.size // self.line_size
        if n_lines % self.associativity != 0:
            raise ValueError("line count must be divisible by associativity")
        if self.mshr_entries < 1:
            raise ValueError("MSHR needs at least one entry")

    # cached_property (not property): set_index/tag/line_address sit on
    # the simulators' per-access path, and the divisions add up over
    # hundreds of thousands of calls.  Works on a frozen dataclass
    # because the cache writes straight into __dict__.
    @cached_property
    def n_lines(self) -> int:
        return self.size // self.line_size

    @cached_property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity

    def set_index(self, address: int) -> int:
        """Cache set an address maps to."""
        return (address // self.line_size) % self.n_sets

    def tag(self, address: int) -> int:
        return address // self.line_size // self.n_sets

    def line_address(self, address: int) -> int:
        """Address of the first byte of the enclosing cache line."""
        return address - (address % self.line_size)


@dataclass(frozen=True)
class BusConfig:
    """A pool of identical shared buses.

    ``count=None`` models the unbounded-bus study of Section 5.2.
    """

    count: Optional[int]
    latency: int

    def __post_init__(self) -> None:
        if self.count is not None and self.count < 1:
            raise ValueError("bus count must be >= 1 (or None for unbounded)")
        if self.latency < 1:
            raise ValueError("bus latency must be >= 1")

    @property
    def unbounded(self) -> bool:
        return self.count is None


@dataclass(frozen=True)
class ClusterConfig:
    """Per-cluster resources: FUs, register file, local cache."""

    n_integer: int
    n_fp: int
    n_memory: int
    n_registers: int
    cache: CacheConfig

    def __post_init__(self) -> None:
        for label, n in (
            ("integer", self.n_integer),
            ("fp", self.n_fp),
            ("memory", self.n_memory),
        ):
            if n < 0:
                raise ValueError(f"negative {label} FU count")
        if self.n_integer + self.n_fp + self.n_memory == 0:
            raise ValueError("cluster needs at least one functional unit")
        if self.n_registers < 1:
            raise ValueError("cluster needs at least one register")

    def n_units(self, fu: FUType) -> int:
        """Number of functional units of a given kind."""
        return {
            FUType.INTEGER: self.n_integer,
            FUType.FP: self.n_fp,
            FUType.MEMORY: self.n_memory,
        }[fu]

    @property
    def issue_width(self) -> int:
        return self.n_integer + self.n_fp + self.n_memory


@dataclass(frozen=True)
class MachineConfig:
    """Full multiVLIWprocessor description."""

    name: str
    clusters: Tuple[ClusterConfig, ...]
    register_bus: BusConfig
    memory_bus: BusConfig
    main_memory_latency: int = 10
    latencies: Mapping[OpClass, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCIES)
    )

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("machine needs at least one cluster")
        if self.main_memory_latency < 1:
            raise ValueError("main-memory latency must be >= 1")
        missing = [oc for oc in OpClass if oc not in self.latencies]
        if missing:
            raise ValueError(f"latencies missing for {missing}")

    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def is_unified(self) -> bool:
        """True for the single-cluster baseline configuration."""
        return self.n_clusters == 1

    @property
    def issue_width(self) -> int:
        """Total operations issued per cycle across all clusters."""
        return sum(c.issue_width for c in self.clusters)

    @property
    def total_registers(self) -> int:
        return sum(c.n_registers for c in self.clusters)

    @property
    def total_cache_size(self) -> int:
        return sum(c.cache.size for c in self.clusters)

    def cluster(self, index: int) -> ClusterConfig:
        return self.clusters[index]

    def latency(self, opclass: OpClass) -> int:
        """Static (scheduler-assumed) latency of an operation class."""
        return self.latencies[opclass]

    @property
    def miss_latency(self) -> int:
        """Latency assumed when binding-prefetching a likely-missing load.

        Per Section 4.3 this is ``LAT_cache + LAT_memory_bus +
        LAT_main_memory`` (bus contention is not known statically).
        """
        return (
            self.latencies[OpClass.LOAD]
            + self.memory_bus.latency
            + self.main_memory_latency
        )

    def with_buses(
        self,
        register_bus: Optional[BusConfig] = None,
        memory_bus: Optional[BusConfig] = None,
    ) -> "MachineConfig":
        """Copy with different bus parameters (for sweep harnesses).

        Explicit is-None tests: ``None`` means "keep mine", and a passed
        bus must be used as given — never coerced through truthiness.
        """
        return replace(
            self,
            register_bus=(
                self.register_bus if register_bus is None else register_bus
            ),
            memory_bus=(
                self.memory_bus if memory_bus is None else memory_bus
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        """Lossless, JSON-able description (see :meth:`from_dict`).

        The sweep grid uses this as the machine part of its cache key, so
        the encoding must be canonical: latencies are emitted sorted by
        operation-class name.
        """
        return {
            "name": self.name,
            "clusters": [
                {
                    "n_integer": c.n_integer,
                    "n_fp": c.n_fp,
                    "n_memory": c.n_memory,
                    "n_registers": c.n_registers,
                    "cache": {
                        "size": c.cache.size,
                        "line_size": c.cache.line_size,
                        "associativity": c.cache.associativity,
                        "mshr_entries": c.cache.mshr_entries,
                        "hit_latency": c.cache.hit_latency,
                    },
                }
                for c in self.clusters
            ],
            "register_bus": {
                "count": self.register_bus.count,
                "latency": self.register_bus.latency,
            },
            "memory_bus": {
                "count": self.memory_bus.count,
                "latency": self.memory_bus.latency,
            },
            "main_memory_latency": self.main_memory_latency,
            "latencies": {
                oc.value: self.latencies[oc]
                for oc in sorted(self.latencies, key=lambda o: o.value)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MachineConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        clusters = tuple(
            ClusterConfig(
                n_integer=c["n_integer"],
                n_fp=c["n_fp"],
                n_memory=c["n_memory"],
                n_registers=c["n_registers"],
                cache=CacheConfig(**c["cache"]),
            )
            for c in data["clusters"]
        )
        return cls(
            name=data["name"],
            clusters=clusters,
            register_bus=BusConfig(**data["register_bus"]),
            memory_bus=BusConfig(**data["memory_bus"]),
            main_memory_latency=data["main_memory_latency"],
            latencies={
                OpClass(name): lat
                for name, lat in data["latencies"].items()
            },
        )

    def describe(self) -> Dict[str, object]:
        """Summary dictionary used by Table 1 rendering."""
        first = self.clusters[0]
        return {
            "name": self.name,
            "clusters": self.n_clusters,
            "int_units_per_cluster": first.n_integer,
            "fp_units_per_cluster": first.n_fp,
            "mem_units_per_cluster": first.n_memory,
            "registers_per_cluster": first.n_registers,
            "cache_per_cluster": first.cache.size,
            "issue_width": self.issue_width,
            "total_registers": self.total_registers,
            "total_cache": self.total_cache_size,
        }
