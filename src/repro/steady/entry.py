"""Entry-level steady-state memoization.

``NTIMES`` entries of the innermost loop mostly repeat each other: after
a warm-up transient the memory system settles into a per-entry pattern
and re-walking all ``NITER × ops`` instances is redundant.  The detector
exploits this without changing a single bit of the results:

* before each entry it takes a *normalized signature* of the memory
  system (:meth:`DistributedMemorySystem.state_signature`) — relative in
  time to the entry's start and shifted in address space by the
  cumulative per-entry address delta, so a stencil sweeping rows hashes
  equal once its relative cache contents stop changing;
* entry execution is a pure function of that signature plus the entry's
  address stream, so when a signature repeats (same outer-point phase,
  same normalized state) the detector proves the remaining entries
  replay the recorded cycle — it verifies the future address deltas
  match the shift under which the states compared equal — and replays
  their (stall, statistics-delta) records instead of re-simulating;
* entries whose address stream is not a uniform, line-aligned shift of
  the previous one act as barriers: detection restarts after them, and
  kernels that never converge (cache thrashing, irregular outer strides)
  simply run every entry exactly as before.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .base import Replay, SteadyState, SteadyStateDetector

__all__ = ["EntrySteadyDetector"]


class EntrySteadyDetector(SteadyStateDetector):
    """Signature-keyed memoizer over whole loop entries.

    A friend of :class:`~repro.simulator.executor.LockstepSimulator`: it
    reads the simulator's precomputed instance tables and memory system
    but never mutates anything besides applying replayed counter deltas.
    """

    mode = "entry"
    granularity = "entry"

    def __init__(self, simulator, outer_points: List[Dict[str, int]]):
        self.sim = simulator
        self.outer_points = outer_points
        self.addresses = self._entry_base_addresses(outer_points)
        self.shift_table = self._entry_shift_table()
        self.shift_unit = simulator.memory.signature_shift_unit()
        # keyed signature -> (entry index, cumulative shift at that entry)
        self.history: Dict[Tuple[object, ...], Tuple[int, int]] = {}
        self.records: List[Tuple[int, Dict[str, int]]] = []
        self.cumulative_shift = 0
        self._counters_before: Optional[Dict[str, int]] = None
        # Optional warm-state capture hook: called as (match_start,
        # entry) right before a confirmed detection replays its deltas,
        # i.e. while the memory system still holds the pristine
        # boundary state worth snapshotting.
        self.warm_sink = None

    # ------------------------------------------------------------------
    # Signature capture + period detection (protocol steps 1 and 2)
    # ------------------------------------------------------------------
    def boundary(self, index: int, time: int) -> Optional[Replay]:
        memory = self.sim.memory
        if index > 0:
            delta = self.shift_table[(index - 1) % len(self.outer_points)]
            if delta is None:
                # Non-uniform address step: states on either side are
                # incomparable, restart detection here.
                self.history.clear()
                self.cumulative_shift = 0
            else:
                self.cumulative_shift += delta
        # Signatures normalize only by line-aligned shifts; the sub-line
        # remainder is keyed alongside, so two entries compare iff their
        # cumulative shifts differ by a whole number of shift units
        # (e.g. a 328-byte row stride on 32-byte lines matches every 4th
        # entry: 4*328 % 32 == 0).
        remainder = self.cumulative_shift % self.shift_unit
        key = (
            remainder,
            memory.state_signature(time, self.cumulative_shift - remainder),
        )
        match = self.history.get(key)
        if match is not None and self._replay_is_sound(
            match, index, self.cumulative_shift - match[1]
        ):
            if self.warm_sink is not None:
                self.warm_sink(match[0], index)
            return self._replay(match[0], index)
        self.history[key] = (index, self.cumulative_shift)
        self._counters_before = memory.counters()
        return None

    def commit(self, index: int, stall: int) -> None:
        after = self.sim.memory.counters()
        before = self._counters_before
        self.records.append(
            (stall, {key: after[key] - before[key] for key in after})
        )

    # ------------------------------------------------------------------
    # Warm-state adoption: seed this detector from a recorded prefix
    # ------------------------------------------------------------------
    def adopt(
        self,
        records: List[Tuple[int, Dict[str, int]]],
        match_start: int,
        entry: int,
    ) -> Optional[Replay]:
        """Resume from a warm-state record instead of simulating.

        The record claims: entries ``0..entry-1`` were simulated with
        the given ``(stall, counters-delta)`` records, and the state
        before ``entry`` matched the state before ``match_start``.  The
        claim is *re-proven here against this run's own address
        tables* — the shift chain must be barrier-free over the match
        window and the remaining streams must be exact translations
        (:meth:`_replay_is_sound`), exactly as on a cold detection.
        Returns the :class:`Replay` on success; ``None`` means the
        record does not prove out for this run and the caller must
        simulate from scratch (the store key makes that unreachable in
        practice, but adoption *verifies* rather than assumes it).

        The caller must have restored the memory system to the record's
        boundary snapshot first: :meth:`_replay` applies the replayed
        counter deltas to it.
        """
        if entry >= self.sim.n_times or len(records) < entry:
            return None
        if not 0 <= match_start < entry:
            return None
        n_points = len(self.outer_points)
        cumulative = 0
        shift_at_match: Optional[int] = 0 if match_start == 0 else None
        for index in range(1, entry + 1):
            delta = self.shift_table[(index - 1) % n_points]
            if delta is None:
                # A barrier inside the match window would have cleared
                # the history before the recorded match could form.
                if index > match_start:
                    return None
                cumulative = 0
            else:
                cumulative += delta
            if index == match_start:
                shift_at_match = cumulative
        if shift_at_match is None:
            return None
        shift = cumulative - shift_at_match
        if shift % self.shift_unit != 0:
            # The recorded signatures can only have compared equal
            # under a whole-shift-unit translation.
            return None
        if not self._replay_is_sound((match_start, shift_at_match), entry, shift):
            return None
        self.records = list(records[:entry])
        self.cumulative_shift = cumulative
        return self._replay(match_start, entry)

    # ------------------------------------------------------------------
    # Exactness proof (protocol step 3)
    # ------------------------------------------------------------------
    def _entry_shift_table(self) -> List[Optional[int]]:
        """Per outer-point phase ``i``: the uniform byte shift every
        memory reference undergoes from the entry at point ``i`` to the
        entry at point ``(i+1) % P`` — or ``None`` when the references
        move by *different* amounts, in which case no shift of the
        memory state can align the two entries and detection must
        restart.  A uniform but non-line-aligned shift is returned as
        is: :meth:`boundary` normalizes signatures by the line-aligned
        part only and keys the sub-line remainder alongside, so such
        entries still match once their cumulative shifts differ by whole
        lines."""
        addresses = self.addresses
        n_points = len(self.outer_points)
        table: List[Optional[int]] = []
        for i in range(n_points):
            here = addresses[i]
            there = addresses[(i + 1) % n_points]
            if not here:  # no memory operations: entries trivially align
                table.append(0)
                continue
            deltas = {b - a for a, b in zip(here, there)}
            table.append(deltas.pop() if len(deltas) == 1 else None)
        return table

    def _entry_base_addresses(
        self, outer_points: List[Dict[str, int]]
    ) -> List[List[int]]:
        """First-iteration address of each memory op at each outer point.

        Affine references move by a constant per inner iteration, so the
        whole address stream of an entry is determined by these bases
        plus the (outer-independent) inner strides."""
        sim = self.sim
        inner = sim.loop.inner
        refs = [
            sim._mem_ref[i] for i in range(sim._n_ops) if sim._is_memory[i]
        ]
        result = []
        for outer in outer_points:
            point = dict(outer)
            point[inner.var] = inner.lower
            result.append([ref.address(point) for ref in refs])
        return result

    def _replay_is_sound(
        self, match: Tuple[int, int], entry: int, shift: int
    ) -> bool:
        """Prove that entries ``entry..n_times-1`` replay the recorded
        cycle ``match[0]..entry-1``.

        The signature match establishes that the memory state before
        ``entry`` equals the state before ``match[0]`` translated by
        ``shift`` bytes.  Entry execution is a deterministic function of
        (state, address stream), so the replay is exact iff every future
        entry's address stream is the corresponding cycle entry's stream
        translated by that same ``shift`` — checked here against the
        affine reference bases (streams repeat with the outer-point
        period, so only ``min(remaining, P)`` offsets are distinct)."""
        start = match[0]
        addresses = self.addresses
        n_points = len(self.outer_points)
        remaining = self.sim.n_times - entry
        for offset in range(min(remaining, n_points)):
            old = addresses[(start + offset) % n_points]
            new = addresses[(entry + offset) % n_points]
            if any(b - a != shift for a, b in zip(old, new)):
                return False
        return True

    # ------------------------------------------------------------------
    # Counters-delta replay (protocol step 4)
    # ------------------------------------------------------------------
    def _replay(self, start: int, entry: int) -> Replay:
        """Replay entries ``entry..n_times-1`` from the recorded cycle
        ``records[start:entry]``: applies their statistics deltas to the
        memory system and hands the stall cycles back to the driver."""
        period = entry - start
        cycle = self.records[start:entry]
        remaining = self.sim.n_times - entry
        full, partial = divmod(remaining, period)
        memory = self.sim.memory
        stall = 0
        if full:
            stall += full * sum(record[0] for record in cycle)
            for _, delta in cycle:
                memory.add_counters(delta, full)
        for record_stall, delta in cycle[:partial]:
            stall += record_stall
            memory.add_counters(delta, 1)
        record = SteadyState(
            detected_at=entry,
            period=period,
            simulated_entries=entry,
            replayed_entries=remaining,
        )
        return Replay(skipped=remaining, stall_cycles=stall, record=record)
