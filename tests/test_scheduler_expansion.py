"""Tests for prolog/kernel/epilog expansion."""

import pytest

from repro.scheduler import BaselineScheduler, expand


class TestExpansion:
    def test_total_cycles_formula(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        expanded = expand(schedule, n_iterations=20)
        assert expanded.total_cycles == (
            (20 + schedule.stage_count - 1) * schedule.ii
        )

    def test_instance_count(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        expanded = expand(schedule, n_iterations=10)
        assert len(expanded.instances) == 10 * len(schedule.placements)

    def test_phases_partition_instances(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        expanded = expand(schedule, n_iterations=16)
        total = (
            len(expanded.prolog) + len(expanded.kernel) + len(expanded.epilog)
        )
        assert total == len(expanded.instances)

    def test_prolog_ramp(self, saxpy, unified_machine):
        """The first iteration's first op is in the prolog; steady-state
        instances are in the kernel."""
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        if schedule.stage_count < 2:
            pytest.skip("single-stage schedule has no prolog")
        expanded = expand(schedule, n_iterations=20)
        assert expanded.prolog
        assert expanded.kernel
        assert expanded.epilog
        prolog_iters = {i.iteration for i in expanded.prolog}
        assert 0 in prolog_iters

    def test_epilog_contains_last_iterations(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        if schedule.stage_count < 2:
            pytest.skip("single-stage schedule has no epilog")
        expanded = expand(schedule, n_iterations=20)
        epilog_iters = {i.iteration for i in expanded.epilog}
        assert 19 in epilog_iters

    def test_kernel_phase_has_all_stages_active(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        n = schedule.stage_count + 4
        expanded = expand(schedule, n_iterations=n)
        prolog_end, epilog_start = expanded._phase_bounds()
        if prolog_end < epilog_start:
            # Any kernel-phase cycle issues ops from stage_count distinct
            # iterations across its II window.
            window = range(prolog_end, prolog_end + schedule.ii)
            iters = {
                inst.iteration
                for t in window
                for inst in expanded.instances_at(t)
            }
            assert len(iters) >= schedule.stage_count - 1

    def test_code_size(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        expanded = expand(schedule, n_iterations=20)
        size = expanded.code_size_instructions()
        sc, ii = schedule.stage_count, schedule.ii
        assert size == {
            "prolog": (sc - 1) * ii,
            "kernel": ii,
            "epilog": (sc - 1) * ii,
        }

    def test_instance_times_follow_modulo_formula(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        expanded = expand(schedule, n_iterations=8)
        for instance in expanded.instances:
            placement = schedule.placements[instance.op]
            assert instance.time == (
                instance.iteration * schedule.ii + placement.time
            )

    def test_too_few_iterations_rejected(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        with pytest.raises(ValueError, match="stages"):
            expand(schedule, n_iterations=max(1, schedule.stage_count - 1))

    def test_zero_iterations_rejected(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        with pytest.raises(ValueError, match="at least one"):
            expand(schedule, n_iterations=0)
