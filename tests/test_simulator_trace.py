"""Tests for the execution tracer."""

import pytest

from repro.cme import SamplingCME
from repro.ir import LoopBuilder
from repro.machine import BusConfig, two_cluster, unified
from repro.scheduler import BaselineScheduler, SchedulerConfig
from repro.simulator import simulate
from repro.simulator.trace import trace_schedule


def _missing_kernel():
    b = LoopBuilder("misses")
    i = b.dim("i", 0, 64)
    a = b.array("A", (512,))
    v = b.load(a, [b.aff(i=8)], name="ld")
    t = b.fmul(v, v, name="mul")
    b.store(a, [b.aff(i=8)], t, name="st")
    return b.build()


class TestTraceSemantics:
    def test_total_stall_matches_simulator(self, saxpy, two_cluster_machine):
        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        trace = trace_schedule(schedule)
        plain = simulate(schedule)
        assert trace.total_stall == plain.stall_cycles

    def test_total_stall_matches_on_missing_kernel(self):
        schedule = BaselineScheduler().schedule(_missing_kernel(), unified())
        trace = trace_schedule(schedule)
        plain = simulate(schedule)
        assert trace.total_stall == plain.stall_cycles

    def test_one_event_per_instance(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        trace = trace_schedule(schedule, n_iterations=10)
        assert len(trace.events) == 10 * len(schedule.placements)

    def test_issue_times_monotonic_per_entry(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        trace = trace_schedule(schedule, n_iterations=10)
        issues = [e.issue for e in trace.events]
        assert issues == sorted(issues)


class TestAttribution:
    def test_stall_attributed_to_missing_load(self):
        schedule = BaselineScheduler().schedule(_missing_kernel(), unified())
        trace = trace_schedule(schedule)
        by_producer = trace.stall_by_producer()
        assert by_producer
        assert max(by_producer, key=by_producer.get) == "ld"
        assert sum(by_producer.values()) == trace.total_stall

    def test_no_stall_no_attribution(self):
        b = LoopBuilder("hits")
        i = b.dim("i", 0, 32)
        a = b.array("A", (4,))
        v = b.load(a, [b.aff(0)], name="ld")
        t = b.fmul(v, v, name="mul")
        b.store(a, [b.aff(1)], t, name="st")
        kernel = b.build()
        schedule = BaselineScheduler().schedule(kernel, unified())
        trace = trace_schedule(schedule)
        # Only the cold miss can stall.
        assert sum(trace.stall_by_producer().values()) <= 15

    def test_level_histogram(self):
        schedule = BaselineScheduler().schedule(_missing_kernel(), unified())
        trace = trace_schedule(schedule)
        histogram = trace.level_histogram()
        assert sum(histogram.values()) == 2 * 64  # one load + one store
        assert histogram.get("main", 0) >= 60

    def test_events_for(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        trace = trace_schedule(schedule, n_iterations=8)
        events = trace.events_for("mul")
        assert len(events) == 8
        assert all(e.op == "mul" for e in events)

    def test_report_renders(self):
        schedule = BaselineScheduler().schedule(_missing_kernel(), unified())
        trace = trace_schedule(schedule)
        report = trace.report()
        assert "stall cycles" in report
        assert "ld" in report

    def test_memory_events_have_levels(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        trace = trace_schedule(schedule, n_iterations=4)
        for event in trace.events:
            op = saxpy.loop.operation(event.op)
            if op.is_memory:
                assert event.level is not None
            else:
                assert event.level is None
