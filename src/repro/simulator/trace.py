"""Execution tracing: per-instance events and stall attribution.

The plain simulator returns aggregate cycle counts; this tracer replays a
schedule recording one :class:`TraceEvent` per operation instance —
issue time, data-ready time, the memory level that served it, and any
lockstep stall it *caused* — then summarizes where the stall cycles went
(per operation, per memory level).  Used by the examples and by tests
that pin down simulator semantics; handy when debugging a scheduler
change that moved cycles around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..scheduler.result import Schedule
from .executor import LockstepSimulator

__all__ = ["TraceEvent", "Trace", "trace_schedule"]


@dataclass(frozen=True)
class TraceEvent:
    """One operation instance's execution record."""

    op: str
    iteration: int
    entry: int  # which loop entry (0..NTIMES-1)
    issue: int  # offset-adjusted issue cycle (global clock)
    ready: int  # when the result became available
    level: Optional[str]  # memory level for loads/stores, else None
    stall_caused: int  # lockstep stall this instance's operands caused
    stalled_on: Optional[str] = None  # producer whose lateness caused it


@dataclass
class Trace:
    """All events of one traced run plus aggregation helpers."""

    schedule: Schedule
    events: List[TraceEvent] = field(default_factory=list)
    total_stall: int = 0

    def stall_by_producer(self) -> Dict[str, int]:
        """Stall cycles attributed to the operand producer that was late."""
        out: Dict[str, int] = {}
        for event in self.events:
            if event.stall_caused and event.stalled_on is not None:
                out[event.stalled_on] = (
                    out.get(event.stalled_on, 0) + event.stall_caused
                )
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def level_histogram(self) -> Dict[str, int]:
        """Access counts per memory level."""
        out: Dict[str, int] = {}
        for event in self.events:
            if event.level is not None:
                out[event.level] = out.get(event.level, 0) + 1
        return out

    def events_for(self, op: str) -> List[TraceEvent]:
        return [e for e in self.events if e.op == op]

    def report(self, top: int = 8) -> str:
        """Human-readable stall attribution report."""
        lines = [
            f"trace of {self.schedule.kernel.name} on "
            f"{self.schedule.machine.name}: {len(self.events)} instances, "
            f"{self.total_stall} stall cycles",
            f"memory levels: {self.level_histogram()}",
            "top stall sources:",
        ]
        for op, cycles in list(self.stall_by_producer().items())[:top]:
            lines.append(f"  {op:16s} {cycles:8d} cycles")
        if not self.stall_by_producer():
            lines.append("  (none)")
        return "\n".join(lines)


class _TracingSimulator(LockstepSimulator):
    """LockstepSimulator that records per-instance events.

    Re-implements the inner loop of :meth:`LockstepSimulator._run_once`
    with event capture; the timing semantics are identical, which the
    test suite asserts by comparing total stall cycles.
    """

    def __init__(self, schedule: Schedule, n_iterations=None, n_times=None):
        # exact=True: a trace wants one event per instance, so every
        # entry must actually execute — no steady-state replay.
        super().__init__(
            schedule, n_iterations=n_iterations, n_times=n_times, exact=True
        )
        self.trace = Trace(schedule=schedule)
        self._entry_index = 0

    def _run_once(  # noqa: D102 - see class doc
        self, outer, lrb, base, entry=0, detector=None
    ):
        # exact=True in __init__ guarantees detector is None here: a
        # trace records every instance, never a steady-state replay.
        assert detector is None
        loop = self.loop
        placements = self.schedule.placements
        inner = loop.inner
        offset = 0
        ready: Dict[Tuple[str, int], int] = {}

        for nominal, iteration, op_index in self._instances:
            name = self._op_names[op_index]
            placement = placements[name]
            op = loop.operation(name)
            issue = base + nominal + offset
            stall_here = 0

            late_producer: Optional[str] = None
            for flow in self._flow_inputs.get(name, ()):
                src_iter = iteration - flow.distance
                if src_iter < 0:
                    continue
                produced = ready.get((flow.producer, src_iter))
                if produced is None:
                    continue
                operand_ready = produced + (lrb if flow.cross_cluster else 0)
                if operand_ready > issue:
                    stall = operand_ready - issue
                    stall_here += stall
                    offset += stall
                    issue += stall
                    late_producer = flow.producer

            level: Optional[str] = None
            if op.is_memory:
                point = dict(outer)
                point[inner.var] = inner.lower + iteration * inner.step
                address = loop.ref_of(op).address(point)
                result = self.memory.access(
                    placement.cluster, address, op.is_store, issue
                )
                ready[(name, iteration)] = result.ready_time
                ready_time = result.ready_time
                level = result.level
            else:
                ready_time = issue + self.machine.latency(op.opclass)
                ready[(name, iteration)] = ready_time

            self.trace.events.append(
                TraceEvent(
                    op=name,
                    iteration=iteration,
                    entry=self._entry_index,
                    issue=issue,
                    ready=ready_time,
                    level=level,
                    stall_caused=stall_here,
                    stalled_on=late_producer,
                )
            )
        self._entry_index += 1
        self.trace.total_stall += offset
        return offset


def trace_schedule(
    schedule: Schedule,
    n_iterations: Optional[int] = None,
    n_times: Optional[int] = None,
) -> Trace:
    """Replay a schedule and return its execution trace."""
    simulator = _TracingSimulator(
        schedule, n_iterations=n_iterations, n_times=n_times
    )
    simulator.run()
    return simulator.trace
