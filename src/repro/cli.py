"""Command-line interface.

Exposes the main experiments without writing Python::

    python -m repro.cli table1
    python -m repro.cli suite
    python -m repro.cli schedule tomcatv --machine 2-cluster --scheduler rmca
    python -m repro.cli simulate swim --machine 4-cluster --threshold 0.25
    python -m repro.cli fig5 --clusters 2 --latencies 1 4 --jobs 4 --out fig5.json
    python -m repro.cli fig6 --clusters 4 --csv fig6.csv

Every command prints its table/chart to stdout; the figure commands can
additionally persist the raw records (``--csv`` / ``--out`` JSON).
``figure5``/``figure6`` (aliases ``fig5``/``fig6``) run their cells
through the experiment grid: ``--jobs N`` fans them out over N worker
processes, repeated invocations reuse the on-disk cell cache under
``--cache-dir`` (or ``$REPRO_GRID_CACHE``), and per-cell progress is
reported on stderr (suppress with ``--no-progress``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.compare import make_scheduler
from .cme import SamplingCME
from .harness.charts import render_figure
from .harness.grid import CellSpec, ExperimentGrid, ProgressCallback
from .harness.io import figure_to_csv, figure_to_json
from .harness.report import format_table
from .harness.sweep import figure5, figure6
from .machine import ALL_PRESETS, preset
from .simulator import simulate
from .workloads import SPEC_KERNELS, kernel_by_name, suite_stats

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Modulo Scheduling for a Fully-Distributed "
            "Clustered VLIW Architecture' (MICRO-33, 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 machine configurations")
    sub.add_parser("suite", help="print the workload suite statistics")

    for name, help_text in (
        ("schedule", "modulo-schedule a kernel and print the kernel table"),
        ("simulate", "schedule and simulate a kernel"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("kernel", choices=sorted(SPEC_KERNELS))
        cmd.add_argument(
            "--machine", default="2-cluster", choices=sorted(ALL_PRESETS)
        )
        cmd.add_argument(
            "--scheduler", default="rmca", choices=("baseline", "rmca")
        )
        cmd.add_argument("--threshold", type=float, default=1.0)
        cmd.add_argument("--max-points", type=int, default=512)

    for name, alias in (("figure5", "fig5"), ("figure6", "fig6")):
        cmd = sub.add_parser(
            name, aliases=[alias], help=f"regenerate {name} of the paper"
        )
        cmd.add_argument("--clusters", type=int, default=2, choices=(2, 4))
        cmd.add_argument(
            "--thresholds", type=float, nargs="+",
            default=[1.0, 0.75, 0.25, 0.0],
        )
        cmd.add_argument("--kernels", nargs="+", choices=sorted(SPEC_KERNELS))
        cmd.add_argument("--max-points", type=int, default=512)
        cmd.add_argument("--csv", help="write per-kernel records as CSV")
        cmd.add_argument("--out", help="write the figure as JSON")
        cmd.add_argument(
            "--jobs", type=_positive_int, default=1, metavar="N",
            help="worker processes for the experiment grid (default: 1)",
        )
        cmd.add_argument(
            "--no-cache", action="store_true",
            help="recompute every cell (disable memory and disk caching)",
        )
        cmd.add_argument(
            "--cache-dir", metavar="DIR",
            help="on-disk cell cache directory (default: $REPRO_GRID_CACHE)",
        )
        cmd.add_argument(
            "--no-progress", action="store_true",
            help="suppress per-cell progress reporting on stderr",
        )
        if name == "figure5":
            cmd.add_argument(
                "--latencies", type=int, nargs="+", default=[1, 2, 4]
            )
        else:
            cmd.add_argument(
                "--bus-counts", type=int, nargs="+", default=[1, 2]
            )
            cmd.add_argument(
                "--bus-latencies", type=int, nargs="+", default=[1, 4]
            )
    return parser


def _cmd_table1() -> int:
    rows = []
    for name in ("unified", "2-cluster", "4-cluster", "heterogeneous"):
        machine = preset(name)
        desc = machine.describe()
        rows.append(
            (
                name,
                desc["clusters"],
                desc["issue_width"],
                desc["total_registers"],
                desc["total_cache"],
            )
        )
    print(
        format_table(
            ["config", "clusters", "issue width", "registers", "L1 bytes"],
            rows,
        )
    )
    return 0


def _cmd_suite() -> int:
    rows = [
        (name, s["dims"], s["operations"], s["memory_operations"],
         s["niter"], s["ntimes"])
        for name, s in suite_stats().items()
    ]
    print(
        format_table(
            ["kernel", "dims", "ops", "mem ops", "NITER", "NTIMES"], rows
        )
    )
    return 0


def _cmd_schedule(args: argparse.Namespace, run_simulation: bool) -> int:
    kernel = kernel_by_name(args.kernel)
    machine = preset(args.machine)
    locality = SamplingCME(max_points=args.max_points)
    engine = make_scheduler(args.scheduler, args.threshold, locality)
    schedule = engine.schedule(kernel, machine)
    schedule.validate()
    print(schedule.format_reservation_table())
    print(
        f"II={schedule.ii} (MII={schedule.mii})  SC={schedule.stage_count}  "
        f"comms/iter={schedule.n_communications}  "
        f"prefetched={schedule.prefetched_loads() or '-'}"
    )
    if run_simulation:
        result = simulate(schedule)
        print(
            f"cycles: total={result.total_cycles} "
            f"(compute={result.compute_cycles}, stall={result.stall_cycles})"
        )
        print(f"memory: {result.memory.as_dict()}")
    return 0


def _progress_printer(stream) -> "ProgressCallback":
    """Per-cell progress line, overwritten in place on a terminal."""
    def report(done: int, total: int, spec: CellSpec, source: str) -> None:
        end = "\r" if stream.isatty() and done < total else "\n"
        print(
            f"[{done}/{total}] {spec} ({source})",
            end=end, file=stream, flush=True,
        )
    return report


def _cmd_figure(args: argparse.Namespace, which: str) -> int:
    locality = SamplingCME(max_points=args.max_points)
    kernels = (
        None
        if not args.kernels
        else [kernel_by_name(name) for name in args.kernels]
    )
    grid = ExperimentGrid(
        locality=locality,
        n_jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=None if args.no_progress else _progress_printer(sys.stderr),
    )
    if which == "figure5":
        figure = figure5(
            n_clusters=args.clusters,
            latencies=tuple(args.latencies),
            thresholds=tuple(args.thresholds),
            kernels=kernels,
            grid=grid,
        )
    else:
        figure = figure6(
            n_clusters=args.clusters,
            bus_counts=tuple(args.bus_counts),
            bus_latencies=tuple(args.bus_latencies),
            thresholds=tuple(args.thresholds),
            kernels=kernels,
            grid=grid,
        )
    stats = grid.stats
    if not args.no_progress:
        print(
            f"cells: {stats.requested} requested, {stats.computed} computed, "
            f"{stats.memory_hits + stats.disk_hits} cached, "
            f"{stats.deduplicated} deduplicated",
            file=sys.stderr,
        )
    print(render_figure(figure))
    if args.csv:
        print(f"records written to {figure_to_csv(figure, args.csv)}")
    if args.out:
        print(f"figure written to {figure_to_json(figure, args.out)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "suite":
        return _cmd_suite()
    if args.command == "schedule":
        return _cmd_schedule(args, run_simulation=False)
    if args.command == "simulate":
        return _cmd_schedule(args, run_simulation=True)
    aliases = {"fig5": "figure5", "fig6": "figure6"}
    command = aliases.get(args.command, args.command)
    if command in ("figure5", "figure6"):
        return _cmd_figure(args, command)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
