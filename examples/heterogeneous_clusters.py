#!/usr/bin/env python
"""Scheduling for heterogeneous clusters.

The paper assumes homogeneous clusters "for the sake of simplicity" and
notes that the techniques generalize.  This example runs the suite on the
``heterogeneous`` preset — a big cluster (3 FUs/type, 48 registers, 6KB)
next to a small one (1 FU/type, 16 registers, 2KB) — and shows how the
schedulers distribute work and what it costs relative to the symmetric
2-cluster machine.

Usage::

    python examples/heterogeneous_clusters.py
"""

from repro import SamplingCME, make_scheduler, simulate, two_cluster
from repro.machine import heterogeneous
from repro.workloads import spec_suite


def main():
    locality = SamplingCME(max_points=512)
    machines = {"2-cluster": two_cluster(), "heterogeneous": heterogeneous()}
    kernels = spec_suite(["tomcatv", "hydro2d", "su2cor", "turb3d"])

    print(f"{'kernel':10s} {'machine':14s} {'II':>3s} "
          f"{'big/small ops':>14s} {'total cycles':>12s}")
    totals = {name: 0 for name in machines}
    for kernel in kernels:
        for name, machine in machines.items():
            engine = make_scheduler("rmca", 0.25, locality)
            schedule = engine.schedule(kernel, machine)
            schedule.validate()
            result = simulate(schedule)
            totals[name] += result.total_cycles
            counts = [
                len(schedule.ops_in_cluster(c))
                for c in range(machine.n_clusters)
            ]
            split = f"{counts[0]}/{counts[1]}"
            print(
                f"{kernel.name:10s} {name:14s} {schedule.ii:3d} "
                f"{split:>14s} {result.total_cycles:12d}"
            )
    print()
    ratio = totals["heterogeneous"] / totals["2-cluster"]
    print(f"heterogeneous / symmetric total cycles: {ratio:.2f}")
    print(
        "The schedulers lean on the big cluster (more FU slots and a"
        " larger cache image) and only spill work the small cluster can"
        " absorb — no algorithm changes were needed, as the paper"
        " predicted."
    )


if __name__ == "__main__":
    main()
