"""Tests for the closed-form cycle model."""

import pytest

from repro.analysis.costmodel import (
    memory_access_latency,
    ncycle_compute,
    predict_cycles,
)
from repro.cme import SamplingCME
from repro.ir import LoopBuilder
from repro.machine import BusConfig, unified
from repro.scheduler import BaselineScheduler, SchedulerConfig
from repro.simulator import simulate


class TestNcycleCompute:
    def test_paper_formula(self):
        # NTIMES * (NITER + SC - 1) * II
        assert ncycle_compute(ii=3, stage_count=4, niter=100) == 309
        assert ncycle_compute(ii=4, stage_count=3, niter=100, ntimes=2) == 816

    def test_validation(self):
        with pytest.raises(ValueError):
            ncycle_compute(0, 1, 10)
        with pytest.raises(ValueError):
            ncycle_compute(1, 0, 10)
        with pytest.raises(ValueError):
            ncycle_compute(1, 1, -1)

    def test_matches_schedule_compute_cycles(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        assert schedule.compute_cycles(50) == ncycle_compute(
            schedule.ii, schedule.stage_count, 50
        )


class TestMemoryAccessLatency:
    def test_local_hit(self):
        assert memory_access_latency(2, False, False, 1, 10) == 2

    def test_remote_hit(self):
        # cache + bus + remote cache
        assert memory_access_latency(2, True, False, 1, 10) == 2 + 1 + 2

    def test_main_memory(self):
        assert memory_access_latency(2, True, True, 1, 10) == 2 + 1 + 10

    def test_waiting_terms(self):
        lat = memory_access_latency(
            2, True, True, 1, 10, waiting_entry=3, waiting_bus=4
        )
        assert lat == 2 + 3 + 4 + 1 + 10

    def test_paper_example_numbers(self):
        """Section 3: 2-cycle cache, 2-cycle bus, 10-cycle memory: a miss
        costs 2 + 2 + 10 = 14 total, 12 beyond the hit latency."""
        miss = memory_access_latency(2, True, True, 2, 10)
        assert miss == 14
        assert miss - 2 == 12


class TestPredictCycles:
    def _stream(self):
        b = LoopBuilder("stream")
        i = b.dim("i", 0, 128)
        a = b.array("A", (1024,))
        v = b.load(a, [b.aff(i=8)], name="ld")
        t = b.fmul(v, v, name="mul")
        b.store(a, [b.aff(i=8)], t, name="st")
        return b.build()

    def test_prediction_close_to_simulation_for_streaming(self):
        kernel = self._stream()
        machine = unified(memory_bus=BusConfig(count=None, latency=1))
        locality = SamplingCME(max_points=256)
        schedule = BaselineScheduler(
            SchedulerConfig(threshold=1.0), locality=locality
        ).schedule(kernel, machine)
        predicted = predict_cycles(schedule, locality)
        measured = simulate(schedule)
        assert predicted.compute_cycles == measured.compute_cycles
        # Every load misses.  The prediction charges the full miss lateness
        # per consumer; the simulator lets later iterations' loads issue
        # during a stall (non-blocking overlap), so the prediction is an
        # overlap-free upper bound of the right magnitude.
        assert measured.stall_cycles <= predicted.stall_cycles
        assert predicted.stall_cycles <= 3 * measured.stall_cycles

    def test_prefetched_load_predicts_no_stall(self):
        kernel = self._stream()
        machine = unified(memory_bus=BusConfig(count=None, latency=1))
        locality = SamplingCME(max_points=256)
        schedule = BaselineScheduler(
            SchedulerConfig(threshold=0.0), locality=locality
        ).schedule(kernel, machine)
        assert schedule.prefetched_loads() == ["ld"]
        predicted = predict_cycles(schedule, locality)
        assert predicted.stall_cycles == 0

    def test_loads_without_consumers_ignored(self):
        b = LoopBuilder("deadload")
        i = b.dim("i", 0, 64)
        a = b.array("A", (512,))
        b.load(a, [b.aff(i=8)], name="ld_dead")
        v = b.load(a, [b.aff(i=1)], name="ld_live")
        b.store(a, [b.aff(i=1)], v, name="st")
        kernel = b.build()
        locality = SamplingCME(max_points=128)
        schedule = BaselineScheduler().schedule(kernel, unified())
        predicted = predict_cycles(schedule, locality)
        # ld_dead feeds nothing, ld_live feeds only a store (flow edge):
        # the store does consume it, so prediction covers ld_live only.
        live_ratio = locality.miss_ratio(
            kernel.loop, kernel.loop.operation("ld_live"),
            schedule.memory_ops_in_cluster(schedule.cluster_of("ld_live")),
            unified().cluster(0).cache,
        )
        per_iter = live_ratio * (unified().miss_latency - 2)
        assert predicted.stall_cycles == pytest.approx(per_iter * 64)

    def test_prediction_fields(self):
        kernel = self._stream()
        locality = SamplingCME(max_points=128)
        schedule = BaselineScheduler().schedule(kernel, unified())
        predicted = predict_cycles(schedule, locality, niter=10, ntimes=2)
        assert predicted.total_cycles == (
            predicted.compute_cycles + predicted.stall_cycles
        )
        assert 0 <= predicted.stall_fraction <= 1
