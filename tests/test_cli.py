"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "gcc"])

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["schedule", "swim", "--machine", "16-cluster"]
            )

    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure5"])
        assert args.clusters == 2
        assert args.latencies == [1, 2, 4]
        assert args.thresholds == [1.0, 0.75, 0.25, 0.0]
        assert args.jobs == 1
        assert not args.no_cache
        assert args.cache_dir is None

    def test_fig_aliases(self):
        args = build_parser().parse_args(["fig5", "--jobs", "4"])
        assert args.command == "fig5"
        assert args.jobs == 4
        args = build_parser().parse_args(["fig6", "--no-cache"])
        assert args.no_cache


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "unified" in out
        assert "heterogeneous" in out

    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        for name in ("tomcatv", "apsi"):
            assert name in out

    def test_schedule(self, capsys):
        assert main(
            ["schedule", "applu", "--machine", "unified",
             "--scheduler", "baseline", "--max-points", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "II=" in out
        assert "slot" in out

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "applu", "--machine", "2-cluster",
             "--threshold", "0.5", "--max-points", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "cycles: total=" in out

    def test_figure6_with_outputs(self, capsys, tmp_path):
        csv_path = tmp_path / "fig.csv"
        json_path = tmp_path / "fig.json"
        assert main(
            [
                "figure6",
                "--clusters", "2",
                "--thresholds", "1.0",
                "--kernels", "applu",
                "--bus-counts", "1",
                "--bus-latencies", "1",
                "--max-points", "64",
                "--csv", str(csv_path),
                "--out", str(json_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert csv_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["title"].startswith("Figure 6")

    def test_figure5_small(self, capsys):
        assert main(
            [
                "figure5",
                "--thresholds", "1.0",
                "--kernels", "applu",
                "--latencies", "1",
                "--max-points", "64",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "Figure 5" in captured.out
        assert "cells:" in captured.err  # progress summary on stderr

    def test_fig5_alias_with_jobs_and_disk_cache(self, capsys, tmp_path):
        argv = [
            "fig5",
            "--jobs", "2",
            "--thresholds", "1.0",
            "--kernels", "applu",
            "--latencies", "1",
            "--max-points", "64",
            "--cache-dir", str(tmp_path),
            "--no-progress",
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "Figure 5" in first.out
        assert first.err == ""  # --no-progress silences stderr
        assert list(tmp_path.glob("*/*.pkl"))  # disk cache populated
        # A second invocation rides the disk cache and prints the same.
        assert main(argv) == 0
        assert capsys.readouterr().out == first.out

    def test_fig6_no_cache(self, capsys):
        assert main(
            [
                "fig6",
                "--thresholds", "1.0",
                "--kernels", "applu",
                "--bus-counts", "1",
                "--bus-latencies", "1",
                "--max-points", "64",
                "--no-cache",
                "--no-progress",
            ]
        ) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--jobs", "0"])


class TestServiceCommands:
    def test_scenarios_json_matches_listing(self, capsys):
        from repro.harness.scenarios import scenario_listing

        assert main(["scenarios", "--json"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out) == json.loads(json.dumps(scenario_listing()))

    def test_export_csv(self, capsys, tmp_path):
        out_path = tmp_path / "smoke.csv"
        assert main(
            ["export", "fig6-smoke", "--format", "csv",
             "--out", str(out_path), "--no-progress"]
        ) == 0
        assert "records written" in capsys.readouterr().out
        header = out_path.read_text().splitlines()[0]
        assert "total_cycles" in header and "norm_total" in header

    def test_export_npz_round_trips(self, capsys, tmp_path):
        from repro.harness.scenarios import run_scenario
        from repro.service import load_npz, outcome_records

        out_path = tmp_path / "smoke.npz"
        assert main(
            ["export", "fig6-smoke", "--out", str(out_path),
             "--no-progress"]
        ) == 0
        assert load_npz(out_path) == outcome_records(
            run_scenario("fig6-smoke")
        )

    def test_export_unknown_scenario_fails(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["export", "fig7", "--no-progress"])

    def test_serve_disk_backend_needs_directory(self, capsys):
        assert main(["serve", "--backend", "disk"]) == 2
        assert "--backend-dir" in capsys.readouterr().err

    def test_submit_streams_and_prints_result(self, capsys):
        from repro.service import ServerThread

        with ServerThread() as srv:
            assert main(
                ["submit", "fig6-smoke", "--url", srv.url]
            ) == 0
        captured = capsys.readouterr()
        assert "stage-store hits" in captured.out
        assert json.loads(captured.out.split("\n", 1)[1])["kind"] == "figure"
        assert "done" in captured.err

    def test_submit_unreachable_service_fails(self, capsys):
        assert main(
            ["submit", "fig6-smoke", "--url", "http://127.0.0.1:9",
             "--timeout", "2"]
        ) == 1
        assert "service error" in capsys.readouterr().err

    def test_submit_unknown_scenario_fails(self, capsys):
        from repro.service import ServerThread

        with ServerThread() as srv:
            assert main(["submit", "fig7", "--url", srv.url]) == 1
        assert "unknown scenario" in capsys.readouterr().err
