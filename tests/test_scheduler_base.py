"""Tests for the assign-and-schedule engine (both schedulers share it)."""

import pytest

from repro.cme import SamplingCME
from repro.ir import LoopBuilder
from repro.machine import BusConfig, two_cluster, unified
from repro.scheduler import (
    BaselineScheduler,
    SchedulerConfig,
    SchedulingError,
)
from repro.scheduler.lifetimes import cluster_pressures


def _wide_kernel(n_loads=6):
    b = LoopBuilder("wide")
    i = b.dim("i", 0, 64)
    a = b.array("A", (128,))
    out = b.array("OUT", (128,))
    values = [b.load(a, [b.aff(k, i=1)], name=f"ld{k}") for k in range(n_loads)]
    total = values[0]
    for v in values[1:]:
        total = b.fadd(total, v)
    b.store(out, [b.aff(i=1)], total, name="st")
    return b.build()


class TestBasicScheduling:
    def test_achieves_mii_when_unconstrained(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        assert schedule.ii == schedule.mii

    def test_valid_on_all_machines(
        self, saxpy, unified_machine, two_cluster_machine, four_cluster_machine
    ):
        for machine in (unified_machine, two_cluster_machine, four_cluster_machine):
            schedule = BaselineScheduler().schedule(saxpy, machine)
            schedule.validate()

    def test_all_ops_placed(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        assert set(schedule.placements) == {
            op.name for op in stencil.loop.operations
        }

    def test_earliest_time_is_zero(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        assert min(p.time for p in schedule.placements.values()) == 0

    def test_recurrence_respected(self, recurrence, unified_machine):
        schedule = BaselineScheduler().schedule(recurrence, unified_machine)
        schedule.validate()
        assert schedule.ii >= 2  # FADD latency over distance 1

    def test_single_cluster_has_no_comms(self, stencil, unified_machine):
        schedule = BaselineScheduler().schedule(stencil, unified_machine)
        assert schedule.communications == []


class TestCommunicationAllocation:
    def test_cross_cluster_edges_have_comms(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        schedule.validate()  # validate() checks comm timeliness per edge

    def test_comm_value_reuse_single_transfer(self):
        """A value consumed twice in the same remote cluster crosses once."""
        b = LoopBuilder("reuse")
        i = b.dim("i", 0, 32)
        a = b.array("A", (64,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        x = b.fadd(v, v, name="use1")
        y = b.fmul(v, v, name="use2")
        z = b.fsub(x, y, name="join")
        b.store(a, [b.aff(i=1)], z, name="st")
        kernel = b.build()
        machine = two_cluster()
        schedule = BaselineScheduler().schedule(kernel, machine)
        schedule.validate()
        by_pair = {}
        for comm in schedule.communications:
            key = (comm.producer, comm.dst_cluster)
            by_pair[key] = by_pair.get(key, 0) + 1
        # At most one transfer per (producer, destination cluster): the
        # engine reuses an in-flight communication when the deadline allows.
        assert all(count == 1 for count in by_pair.values())

    def test_saturated_bus_raises_ii(self):
        """With a single 4-cycle register bus, every communication blocks
        the bus for 4 cycles, so a schedule that needs two comms cannot
        keep II below 8 unless it avoids communications altogether."""
        kernel = _wide_kernel(6)
        slow_bus = two_cluster(register_bus=BusConfig(count=1, latency=4))
        fast_bus = two_cluster(register_bus=BusConfig(count=None, latency=1))
        slow = BaselineScheduler().schedule(kernel, slow_bus)
        fast = BaselineScheduler().schedule(kernel, fast_bus)
        slow.validate()
        fast.validate()
        assert slow.ii >= fast.ii

    def test_unbounded_bus_always_schedulable(self, stencil):
        machine = two_cluster(register_bus=BusConfig(count=None, latency=2))
        schedule = BaselineScheduler().schedule(stencil, machine)
        schedule.validate()


class TestRegisterPressure:
    def test_pressure_within_register_files(self, stencil, four_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, four_cluster_machine)
        for cluster, pressure in cluster_pressures(schedule).items():
            assert pressure <= four_cluster_machine.cluster(cluster).n_registers

    def test_pressure_check_can_be_disabled(self, saxpy, unified_machine):
        config = SchedulerConfig(check_register_pressure=False)
        schedule = BaselineScheduler(config).schedule(saxpy, unified_machine)
        schedule.validate()


class TestFailureModes:
    def test_max_ii_exhaustion(self, stencil, two_cluster_machine):
        config = SchedulerConfig(max_ii=1)
        # The stencil needs II >= 2 on the 2-cluster machine (5 loads on
        # 4 memory units), so capping II at 1 must fail.
        with pytest.raises(SchedulingError, match="no schedule"):
            BaselineScheduler(config).schedule(stencil, two_cluster_machine)


class TestBindingPrefetch:
    def _streaming(self):
        b = LoopBuilder("stream")
        i = b.dim("i", 0, 256)
        a = b.array("A", (2048,))
        v = b.load(a, [b.aff(i=8)], name="ld")  # always misses
        t = b.fmul(v, v, name="mul")
        b.store(a, [b.aff(i=8)], t, name="st")
        return b.build()

    def test_threshold_one_never_prefetches(self, sampling_cme):
        kernel = self._streaming()
        config = SchedulerConfig(threshold=1.0)
        schedule = BaselineScheduler(config, locality=sampling_cme).schedule(
            kernel, unified()
        )
        assert schedule.prefetched_loads() == []

    def test_low_threshold_prefetches_missing_load(self, sampling_cme):
        kernel = self._streaming()
        config = SchedulerConfig(threshold=0.5)
        schedule = BaselineScheduler(config, locality=sampling_cme).schedule(
            kernel, unified()
        )
        assert "ld" in schedule.prefetched_loads()
        placement = schedule.placements["ld"]
        assert placement.assumed_latency == unified().miss_latency

    def test_no_locality_means_no_prefetch(self):
        kernel = self._streaming()
        config = SchedulerConfig(threshold=0.0)
        schedule = BaselineScheduler(config, locality=None).schedule(
            kernel, unified()
        )
        assert schedule.prefetched_loads() == []

    def test_hitting_load_not_prefetched(self, sampling_cme):
        b = LoopBuilder("hits")
        i = b.dim("i", 0, 64)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(0)], name="ld_inv")  # temporal: never misses
        t = b.fmul(v, v, name="mul")
        b.store(a, [b.aff(0)], t, name="st")
        kernel = b.build()
        config = SchedulerConfig(threshold=0.5)
        schedule = BaselineScheduler(config, locality=sampling_cme).schedule(
            kernel, unified()
        )
        assert schedule.prefetched_loads() == []

    def test_recurrence_guard_blocks_prefetch(self, sampling_cme):
        """A missing load inside a recurrence keeps the hit latency when
        the miss latency would raise the II."""
        b = LoopBuilder("recload")
        i = b.dim("i", 0, 128)
        a = b.array("A", (2048,))
        v = b.load(a, [b.aff(i=8)], name="ld")
        acc = b.fadd(b.prev_value("acc", 1), v, dest="acc", name="accum")
        b.store(a, [b.aff(i=8)], acc, name="st")
        kernel = b.build()
        kernel.ddg.add_edge(
            __import__("repro.ir.ddg", fromlist=["DepEdge"]).DepEdge(
                "accum", "ld", "flow", 1
            )
        )
        config = SchedulerConfig(threshold=0.0)
        schedule = BaselineScheduler(config, locality=sampling_cme).schedule(
            kernel, unified()
        )
        # The recurrence through ld (latency 2) + accum (2) over distance 1
        # gives RecMII 4; prefetching ld at 13 would force II >= 15.
        assert "ld" not in schedule.prefetched_loads()
        assert schedule.ii < unified().miss_latency


class TestOrderingFallback:
    """The SMS ordering can sandwich a node between an already-placed
    predecessor and successor on distance-0 flow edges; the empty window
    then fails at *every* II (distance-0 bounds do not relax with II).
    The engine must fall back to program order instead of raising."""

    def test_sandwiched_node_schedules_via_program_order_fallback(self):
        # random_kernel(3327) is the hypothesis-discovered witness: the
        # SMS order emits iadd6 after both load3 (its producer) and
        # fmul7 (its consumer), whose greedy placements leave no slot.
        from repro.workloads import GeneratorConfig, random_kernel

        kernel = random_kernel(
            3327,
            GeneratorConfig(
                max_extent=24, min_extent=6, max_loads=4, max_arith=5
            ),
        )
        schedule = BaselineScheduler().schedule(kernel, two_cluster())
        schedule.validate()
        assert schedule.ii >= schedule.mii

    def test_program_order_only_config_still_raises_when_infeasible(self):
        """The fallback must not mask genuine infeasibility."""
        b = LoopBuilder("tiny")
        i = b.dim("i", 0, 8)
        a = b.array("A", (16,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        b.store(a, [b.aff(i=1)], v, name="st")
        kernel = b.build()
        config = SchedulerConfig(max_ii=0)  # empty II search space
        with pytest.raises(SchedulingError):
            BaselineScheduler(config).schedule(kernel, two_cluster())
