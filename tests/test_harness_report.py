"""Tests for the report/chart rendering helpers."""

import pytest

from repro.harness.charts import render_bar, render_figure
from repro.harness.report import figure_table, format_float, format_table
from repro.harness.sweep import Bar, FigureData


class TestFormatFloat:
    def test_float_rendering(self):
        assert format_float(1.23456) == "1.235"
        assert format_float(1.0, digits=1) == "1.0"

    def test_ints_pass_through(self):
        assert format_float(42) == "42"

    def test_strings_pass_through(self):
        assert format_float("abc") == "abc"

    def test_bools_pass_through(self):
        assert format_float(True) == "True"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # Columns aligned: every row has the rule width or less.
        assert all(len(line) <= len(lines[1]) for line in lines)

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table


def _figure():
    figure = FigureData(title="Test Figure")
    figure.bars.append(
        Bar(group="g1", scheduler="baseline", threshold=1.0,
            norm_compute=0.4, norm_stall=0.6)
    )
    figure.bars.append(
        Bar(group="g1", scheduler="rmca", threshold=1.0,
            norm_compute=0.4, norm_stall=0.3)
    )
    return figure


class TestFigureData:
    def test_groups(self):
        assert _figure().groups == ["g1"]

    def test_bar_lookup(self):
        figure = _figure()
        bar = figure.bar("g1", "rmca", 1.0)
        assert bar.norm_total == pytest.approx(0.7)

    def test_bar_lookup_missing(self):
        with pytest.raises(KeyError):
            _figure().bar("g1", "rmca", 0.0)

    def test_bars_in_group(self):
        assert len(_figure().bars_in_group("g1")) == 2
        assert _figure().bars_in_group("nope") == []


class TestFigureRendering:
    def test_figure_table_contains_all_bars(self):
        text = figure_table(_figure())
        assert "Test Figure" in text
        assert "baseline" in text
        assert "rmca" in text

    def test_render_bar_width(self):
        bar = _figure().bars[0]
        line = render_bar(bar, scale=1.0, width=20)
        body = line.split("|")[1]
        assert body.count("#") == 8   # 0.4 of 20
        assert body.count(".") == 12  # stall fills to 1.0

    def test_render_bar_scale_validation(self):
        with pytest.raises(ValueError):
            render_bar(_figure().bars[0], scale=0)

    def test_render_figure(self):
        text = render_figure(_figure(), width=10)
        assert "Test Figure" in text
        assert "g1" in text
        assert "thr=1.00" in text

    def test_render_empty_figure(self):
        assert "(no bars)" in render_figure(FigureData(title="empty"))
