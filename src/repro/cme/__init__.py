"""Cache Miss Equations: reuse analysis and miss estimators."""

from .analytic import AnalyticCME
from .equations import EquationCME, MissBreakdown
from .incremental import IncrementalCME
from .locality import (
    SAMPLED_ENGINES,
    LocalityAnalyzer,
    default_analyzer,
    locality_fingerprint,
)
from .reuse import (
    ReuseInfo,
    analyze_reuse,
    group_pairs,
    innermost_stride,
    self_spatial,
    self_temporal,
)
from .sampling import MissEstimate, SamplingCME
from .trace import TraceStore, loop_fingerprint

__all__ = [
    "AnalyticCME",
    "EquationCME",
    "IncrementalCME",
    "LocalityAnalyzer",
    "MissBreakdown",
    "MissEstimate",
    "ReuseInfo",
    "SAMPLED_ENGINES",
    "SamplingCME",
    "TraceStore",
    "analyze_reuse",
    "default_analyzer",
    "group_pairs",
    "innermost_stride",
    "locality_fingerprint",
    "loop_fingerprint",
    "self_spatial",
    "self_temporal",
]
