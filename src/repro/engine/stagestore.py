"""Per-stage content-addressed result store.

The experiment grid's cell cache dedups *whole cells* — but most of the
work inside a cell is shared far more widely than the cell key admits:

* the **analyze** product (a loop's CME address trace) depends only on
  the loop content and the analyzer configuration — every machine,
  scheduler, threshold and scenario probing the same kernel re-walks the
  same iteration space;
* the **schedule** product depends on kernel × machine × scheduler ×
  threshold × analyzer, but *not* on the steady mode, simulate engine or
  iteration overrides that the cell cache keys on — the four groups of
  ``fig6-steady-ablation`` compute the same schedules four times;
* the **simulate/measure** product depends only on the schedule
  *content* (``Schedule.fingerprint()`` — scheduler name and threshold
  deliberately excluded, the same key family the warm-state store uses)
  × simulate engine × steady mode × iteration overrides — a fig6 column
  sweeps thresholds that frequently collapse to byte-identical
  schedules, and every duplicate re-simulates a result some other cell
  already measured.

:class:`StageStore` content-addresses all three products, following the
established :class:`~repro.cme.trace.TraceStore` /
:class:`~repro.simulator.warmstate.WarmStateStore` shape: an in-memory
map per stage, fronted by an optional disk layer under
``<cache_dir>/stages/`` where corrupt, truncated or foreign pickles are
unlinked and treated as misses, never as errors.  The whole-cell cache
stays the outermost layer — stage stores are only consulted for cells
the grid actually executes.  For process fan-out the in-memory layers
ship to the workers pre-primed (:func:`repro.harness.grid._init_worker`)
and each worker's newly computed entries travel back with its results
(:meth:`drain` / :meth:`merge`); values are content-addressed, so the
merge is deterministic regardless of completion order.

The same key families drive plan-based execution
(:mod:`repro.engine.plan`): the planner consumes them *up front* —
one task per unique analyze/schedule/simulate key across the whole
grid — so hits are planned away before anything runs instead of being
discovered cell by cell.

This module is also the canonical home of the grid's content
fingerprints (:func:`kernel_fingerprint`, :func:`machine_key`), which
the stages need without importing the harness layer.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
import uuid
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..cme.trace import AddressTrace
from ..ir.builder import Kernel
from ..machine.config import MachineConfig
from ..scheduler.result import Schedule
from ..simulator.stats import SimulationResult

__all__ = [
    "STAGE_STORE_VERSION",
    "STAGE_STORE_STAGES",
    "StageStore",
    "kernel_fingerprint",
    "machine_key",
]

#: Bump when a key schema or value layout changes: older disk entries
#: are then treated as misses and rewritten.
STAGE_STORE_VERSION = 1

#: The stages with a content-addressed result store, in pipeline order.
STAGE_STORE_STAGES = ("analyze", "schedule", "simulate")

#: What a healthy disk entry's value must be, per stage — anything else
#: is a foreign object and treated as rot.
_VALUE_TYPES = {
    "analyze": AddressTrace,
    "schedule": Schedule,
    "simulate": SimulationResult,
}


# ----------------------------------------------------------------------
# Content fingerprints (shared with the grid's cell cache)
# ----------------------------------------------------------------------
def kernel_fingerprint(kernel: Kernel) -> str:
    """Content hash of a kernel's loop structure and dependence graph.

    Everything the schedulers and the CME analyzers read is covered: loop
    dims, operations (name/class/operands/reference), the memory-reference
    table and the DDG edge multiset.  Two kernels with equal fingerprints
    produce identical cells on identical machines.
    """
    edges = sorted(
        (e.src, e.dst, e.kind, e.distance) for e in kernel.ddg.edges()
    )
    digest = hashlib.sha256()
    digest.update(repr(kernel.loop).encode())
    digest.update(repr(edges).encode())
    return digest.hexdigest()[:16]


def machine_key(machine: MachineConfig) -> str:
    """Canonical JSON encoding of a machine (hashable cache-key part)."""
    return json.dumps(
        machine.to_dict(), sort_keys=True, separators=(",", ":")
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class StageStore:
    """In-memory + on-disk content-addressed maps of stage results.

    One instance holds the three per-stage layers.  All keys are pure
    content addresses (fingerprints over what the stage *reads*), so a
    store is safe to pickle into worker processes, share between grids
    and scenarios, and persist across runs.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: Dict[str, Dict[str, object]] = {
            stage: {} for stage in STAGE_STORE_STAGES
        }
        #: Entries added locally since the last :meth:`drain` — what a
        #: worker ships back to the parent with its results.
        self._fresh: Dict[str, Dict[str, object]] = {
            stage: {} for stage in STAGE_STORE_STAGES
        }
        self._counters: Dict[str, Dict[str, int]] = {
            stage: {"hits": 0, "misses": 0, "stores": 0}
            for stage in STAGE_STORE_STAGES
        }
        # One store may serve several threads at once (the experiment
        # service runs jobs off the event loop; the grid merges worker
        # deltas while progress callbacks fire), so every mutation of
        # the entry maps and counters happens under this lock.
        self._lock = threading.RLock()

    def __getstate__(self):
        # A pickled copy (shipped to a worker) starts with clean local
        # telemetry and nothing pending to drain: the worker's hits and
        # fresh entries travel back per task and are added to the
        # parent's own counters — shipping the parent's history would
        # double-count it.
        state = self.__dict__.copy()
        del state["_lock"]  # locks don't pickle; workers get their own
        state["_fresh"] = {stage: {} for stage in STAGE_STORE_STAGES}
        state["_counters"] = {
            stage: {"hits": 0, "misses": 0, "stores": 0}
            for stage in STAGE_STORE_STAGES
        }
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def analyze_key(loop_fp: str, locality_fp: str) -> str:
        """Address of one loop's analyze product under one analyzer
        configuration (the locality fingerprint encodes the sampling
        window, so equal keys imply equal traces)."""
        return "|".join(
            [f"s{STAGE_STORE_VERSION}", "analyze", loop_fp, locality_fp]
        )

    @staticmethod
    def schedule_key(
        kernel_name: str,
        kernel_fp: str,
        machine: str,
        scheduler: str,
        threshold: float,
        locality_fp: str,
    ) -> str:
        """Address of one scheduling run's product.

        Deliberately *excludes* the steady mode, simulate engine and
        iteration overrides the cell cache keys on: the schedule does
        not depend on how it will be simulated, so cells differing only
        in simulation strategy share one entry.
        """
        return "|".join(
            [
                f"s{STAGE_STORE_VERSION}",
                "schedule",
                kernel_name,
                kernel_fp,
                machine,
                scheduler,
                repr(threshold),
                locality_fp,
            ]
        )

    @staticmethod
    def simulate_key(
        schedule_fp: str,
        sim: str,
        steady: str,
        n_iterations: Optional[int],
        n_times: Optional[int],
    ) -> str:
        """Address of one simulation's product.

        ``schedule_fp`` is :meth:`Schedule.fingerprint` — the same key
        family the warm-state store uses: scheduler name and threshold
        are excluded, so cells whose schedules land byte-identical
        (neighbouring thresholds, agreeing schedulers) share the result.
        """
        return "|".join(
            [
                f"s{STAGE_STORE_VERSION}",
                "simulate",
                schedule_fp,
                sim,
                steady,
                repr(n_iterations),
                repr(n_times),
            ]
        )

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def lookup(self, stage: str, key: str) -> Optional[object]:
        """Return the stored value for ``key`` or ``None`` (a miss)."""
        with self._lock:
            value = self._memory[stage].get(key)
            if value is not None:
                self._counters[stage]["hits"] += 1
                return value
            value = self._disk_load(stage, key)
            if value is not None:
                self._memory[stage][key] = value
                self._counters[stage]["hits"] += 1
                return value
            self._counters[stage]["misses"] += 1
            return None

    def store(self, stage: str, key: str, value: object) -> None:
        """Publish a freshly computed stage result."""
        with self._lock:
            self._memory[stage][key] = value
            self._fresh[stage][key] = value
            self._counters[stage]["stores"] += 1
        self._disk_store(stage, key, value)

    def publish(self, stage: str, key: str, value: object) -> bool:
        """Store ``value`` only if the key is absent (idempotent put).

        Used for results that were computed outside the store's view
        (e.g. traces primed directly on the analyzer) — counted as a
        store the first time, a no-op afterwards.
        """
        with self._lock:
            if key in self._memory[stage]:
                return False
            self.store(stage, key, value)
            return True

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entries) for entries in self._memory.values())

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def counts(self, stage: str) -> Dict[str, int]:
        """Hit/miss/store counters of one stage (a copy)."""
        with self._lock:
            return dict(self._counters[stage])

    def telemetry(self) -> Dict[str, Dict[str, int]]:
        """Per-stage counters plus entry counts, for reports/benchmarks."""
        with self._lock:
            return {
                stage: {
                    **self._counters[stage],
                    "entries": len(self._memory[stage]),
                }
                for stage in STAGE_STORE_STAGES
            }

    # ------------------------------------------------------------------
    # Process fan-out
    # ------------------------------------------------------------------
    def drain(self) -> Dict[str, Dict[str, object]]:
        """Ship-and-reset the local delta: fresh entries plus counters.

        Called by pool workers after each cell; the returned mapping is
        merged into the parent store with :meth:`merge`.
        """
        with self._lock:
            delta = {
                "entries": {
                    stage: self._fresh[stage]
                    for stage in STAGE_STORE_STAGES
                },
                "counters": {
                    stage: self._counters[stage]
                    for stage in STAGE_STORE_STAGES
                },
            }
            self._fresh = {stage: {} for stage in STAGE_STORE_STAGES}
            self._counters = {
                stage: {"hits": 0, "misses": 0, "stores": 0}
                for stage in STAGE_STORE_STAGES
            }
            return delta

    def merge(self, delta: Dict[str, Dict[str, object]]) -> None:
        """Fold one worker's :meth:`drain` into this store.

        Values are content-addressed — two workers computing the same
        key produce equal values — so first-wins insertion keeps the
        merge deterministic regardless of completion order.
        """
        with self._lock:
            for stage, entries in delta.get("entries", {}).items():
                memory = self._memory[stage]
                for key, value in entries.items():
                    memory.setdefault(key, value)
            for stage, counters in delta.get("counters", {}).items():
                mine = self._counters[stage]
                for name, value in counters.items():
                    mine[name] += value

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _disk_path(self, stage: str, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self.cache_dir / stage / digest[:2] / f"{digest}.pkl"

    def _disk_load(self, stage: str, key: str) -> Optional[object]:
        path = self._disk_path(stage, key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                record = pickle.load(handle)
            if (
                not isinstance(record, dict)
                or record.get("version") != STAGE_STORE_VERSION
                or record.get("stage") != stage
                or record.get("key") != key
                or not isinstance(record.get("value"), _VALUE_TYPES[stage])
            ):
                raise ValueError("stale or foreign stage-store entry")
            return record["value"]
        except Exception:
            # Corrupt / truncated / foreign / colliding entry: a cache
            # must never turn disk rot into a failed sweep.  Drop the
            # file and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_store(self, stage: str, key: str, value: object) -> None:
        path = self._disk_path(stage, key)
        if path is None:
            return
        record = {
            "version": STAGE_STORE_VERSION,
            "stage": stage,
            "key": key,
            "value": value,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)  # atomic on POSIX: readers never see partials
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def clear(self) -> None:
        """Drop every entry: all in-memory layers and the disk layer."""
        with self._lock:
            for stage in STAGE_STORE_STAGES:
                self._memory[stage].clear()
                self._fresh[stage].clear()
        self.clear_disk()

    def clear_disk(self) -> None:
        """Remove every on-disk entry (the in-memory maps are untouched)."""
        if self.cache_dir is None or not self.cache_dir.exists():
            return
        for path in self.cache_dir.glob("*/*/*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
