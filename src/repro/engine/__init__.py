"""Layered cell-execution engine.

The experiment cell — schedule one kernel on one machine with one
scheduler/threshold, simulate it, measure it — used to be a monolithic
function; this package decomposes it into an explicit pipeline of five
small stages with typed inputs/outputs and per-stage timing records.
The grid, the sweeps, the scenario runner and the CLI all consume it.

:mod:`~repro.engine.plan` adds the plan-based execution layer on top:
an :class:`ExecutionPlanner` that dedups a whole grid's stage work *up
front* by the :class:`StageStore` key families and emits a
:class:`StagePlan` of unique, content-keyed tasks (with same-kernel
simulations co-batched through the vectorized engine) — the grid's
default execution strategy since the per-cell pipeline discovers the
same dedup only reactively, one cell at a time.
"""

from .pipeline import (
    CellOutcome,
    CellPipeline,
    PipelineReport,
    StageRecord,
    default_stages,
    execute_cell,
)
from .plan import (
    AssemblyNode,
    ExecutionPlanner,
    PlanTask,
    SimulateBatch,
    StagePlan,
)
from .result import CELL_EXECUTIONS, ExecutionCounter, RunResult
from .stagestore import (
    STAGE_STORE_STAGES,
    STAGE_STORE_VERSION,
    StageStore,
)
from .stages import (
    SCHEDULER_NAMES,
    AnalyzeStage,
    BuildStage,
    CellContext,
    CellRequest,
    MeasureStage,
    ScheduleStage,
    SimulateStage,
    Stage,
    make_scheduler,
)

__all__ = [
    "AnalyzeStage",
    "AssemblyNode",
    "BuildStage",
    "CELL_EXECUTIONS",
    "CellContext",
    "CellOutcome",
    "CellPipeline",
    "CellRequest",
    "ExecutionCounter",
    "ExecutionPlanner",
    "MeasureStage",
    "PipelineReport",
    "PlanTask",
    "RunResult",
    "SCHEDULER_NAMES",
    "STAGE_STORE_STAGES",
    "STAGE_STORE_VERSION",
    "ScheduleStage",
    "SimulateBatch",
    "SimulateStage",
    "Stage",
    "StagePlan",
    "StageRecord",
    "StageStore",
    "default_stages",
    "execute_cell",
    "make_scheduler",
]
