"""Edge cases and failure injection across modules."""

import pytest

from repro.ir import LoopBuilder
from repro.machine import BusConfig, two_cluster, unified
from repro.memory import DistributedMemorySystem, LineState
from repro.scheduler import BaselineScheduler, expand
from repro.simulator import simulate


class TestDegenerateKernels:
    def test_single_operation_kernel(self):
        b = LoopBuilder("one")
        i = b.dim("i", 0, 16)
        a = b.array("A", (16,))
        b.load(a, [b.aff(i=1)], name="only")
        kernel = b.build()
        schedule = BaselineScheduler().schedule(kernel, two_cluster())
        schedule.validate()
        assert schedule.ii == 1
        result = simulate(schedule)
        assert result.memory.accesses == 16

    def test_store_only_kernel(self):
        b = LoopBuilder("stores")
        i = b.dim("i", 0, 16)
        a = b.array("A", (16,))
        b.store(a, [b.aff(i=1)], b.live_in("c"), name="st")
        kernel = b.build()
        schedule = BaselineScheduler().schedule(kernel, unified())
        schedule.validate()
        result = simulate(schedule)
        assert result.stall_cycles == 0  # nothing consumes the stores

    def test_pure_arithmetic_kernel(self):
        b = LoopBuilder("arith")
        i = b.dim("i", 0, 16)
        v = b.fadd(b.live_in("x"), b.live_in("y"), name="a1")
        for k in range(5):
            v = b.fmul(v, v, name=f"m{k}")
        kernel = b.build()
        schedule = BaselineScheduler().schedule(kernel, two_cluster())
        schedule.validate()
        result = simulate(schedule)
        assert result.memory.accesses == 0

    def test_single_iteration_outer_loops(self):
        b = LoopBuilder("deep")
        for var in ("m", "l", "k", "j"):
            b.dim(var, 0, 1)
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        b.store(a, [b.aff(i=1)], v, name="st")
        kernel = b.build()
        assert kernel.loop.n_times == 1
        simulate(BaselineScheduler().schedule(kernel, unified()))


class TestMemoryEdgeCases:
    def test_store_upgrade_waits_for_pending_fill(self):
        """A store hitting a Shared line whose fill is in flight upgrades
        only after the data arrives."""
        machine = two_cluster(memory_bus=BusConfig(count=None, latency=1))
        system = DistributedMemorySystem(machine)
        fill = system.access(0, 0, is_store=False, time=0)  # S, in flight
        store = system.access(0, 0, is_store=True, time=1)
        assert store.ready_time >= fill.ready_time
        assert system.caches[0].state_of(0) is LineState.MODIFIED

    def test_dirty_eviction_writes_back(self):
        machine = two_cluster(memory_bus=BusConfig(count=None, latency=1))
        system = DistributedMemorySystem(machine)
        t = system.access(0, 0, is_store=True, time=0).ready_time
        # Same set, different tag (4KB direct-mapped cache).
        system.access(0, 4096, is_store=False, time=t)
        assert system.stats.writebacks >= 1
        assert system.caches[0].state_of(0) is LineState.INVALID

    def test_merged_local_access_counts_hit(self):
        machine = two_cluster(memory_bus=BusConfig(count=None, latency=1))
        system = DistributedMemorySystem(machine)
        system.access(0, 0, is_store=False, time=0)
        merged = system.access(0, 8, is_store=False, time=1)
        assert merged.merged
        assert system.stats.merged == 1
        assert system.stats.local_hits == 1

    def test_write_to_invalid_after_remote_store(self):
        machine = two_cluster(memory_bus=BusConfig(count=None, latency=1))
        system = DistributedMemorySystem(machine)
        t = system.access(0, 0, is_store=False, time=0).ready_time
        t = system.access(1, 0, is_store=True, time=t).ready_time
        # Cluster 0's copy was invalidated; its next store misses and
        # takes exclusive ownership back.
        result = system.access(0, 0, is_store=True, time=t)
        assert result.level in ("remote", "main")
        system.check_coherence([0])


class TestExpansionEdgeCases:
    def test_single_stage_schedule_has_empty_prolog(self):
        b = LoopBuilder("flat")
        i = b.dim("i", 0, 16)
        a = b.array("A", (16,))
        b.load(a, [b.aff(i=1)], name="ld")
        kernel = b.build()
        schedule = BaselineScheduler().schedule(kernel, unified())
        assert schedule.stage_count == 1
        expanded = expand(schedule, 8)
        assert expanded.prolog == []
        assert expanded.epilog == []
        assert len(expanded.kernel) == 8


class TestChartEdgeCases:
    def test_max_scale_override(self):
        from repro.harness.charts import render_figure
        from repro.harness.sweep import Bar, FigureData

        figure = FigureData(title="T")
        figure.bars.append(
            Bar(group="g", scheduler="s", threshold=1.0,
                norm_compute=0.5, norm_stall=0.5)
        )
        text = render_figure(figure, width=10, max_scale=2.0)
        assert "full width = 2.000" in text


class TestIsaErrorPaths:
    def test_corrupted_program_fails_validation(self, saxpy, two_cluster_machine):
        from repro.isa import EncodingError, encode_kernel

        schedule = BaselineScheduler().schedule(saxpy, two_cluster_machine)
        program = encode_kernel(schedule)
        program.instructions.pop()
        with pytest.raises(EncodingError):
            program.validate()


class TestThresholdBoundaries:
    def test_threshold_exactly_at_ratio_not_prefetched(self, sampling_cme):
        """The comparison is strict: ratio <= threshold keeps hit latency."""
        from repro.scheduler import SchedulerConfig

        b = LoopBuilder("stream")
        i = b.dim("i", 0, 128)
        a = b.array("A", (1024,))
        v = b.load(a, [b.aff(i=8)], name="ld")  # ratio 1.0
        t = b.fmul(v, v, name="mul")
        b.store(a, [b.aff(i=8)], t, name="st")
        kernel = b.build()
        config = SchedulerConfig(threshold=1.0)
        schedule = BaselineScheduler(config, locality=sampling_cme).schedule(
            kernel, unified()
        )
        assert schedule.prefetched_loads() == []
