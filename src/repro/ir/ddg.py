"""Data-dependence graph for modulo scheduling.

Nodes are operation names; edges carry

* ``kind`` — ``"flow"`` (true register dependence), ``"anti"``, ``"output"``
  or ``"mem"`` (memory ordering),
* ``distance`` — iteration distance (0 for intra-iteration dependences,
  >0 for loop-carried recurrences).

Edge *latency* is resolved against a machine model at scheduling time
(``latency(producer_opclass)`` for flow edges, 1 for the others), so the
DDG itself stays machine-independent.

The graph wraps :class:`networkx.MultiDiGraph` — multiple dependences
between the same pair of operations (e.g. a flow edge at distance 0 and an
anti edge at distance 1) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import networkx as nx

from .loop import Loop
from .operations import Operation

__all__ = ["DepEdge", "DependenceGraph", "build_ddg"]

_REGISTER_KINDS = ("flow",)
_VALID_KINDS = ("flow", "anti", "output", "mem")


@dataclass(frozen=True)
class DepEdge:
    """One dependence: ``dst`` must wait for ``src`` (modulo distance)."""

    src: str
    dst: str
    kind: str
    distance: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown dependence kind {self.kind!r}")
        if self.distance < 0:
            raise ValueError("dependence distance cannot be negative")


class DependenceGraph:
    """DDG over a loop's operations."""

    def __init__(self, loop: Loop, edges: Optional[List[DepEdge]] = None):
        self.loop = loop
        self._graph = nx.MultiDiGraph()
        # Lazy adjacency caches: the schedulers query in/out edges on
        # every placement attempt, and materializing networkx edge views
        # each time dominated the schedule stage.  The caches preserve
        # networkx's exact edge order (comm allocation reads edges in
        # order), are invalidated by add_edge, and are handed out as
        # tuples so no caller can corrupt them.
        self._edge_cache: Optional[Tuple[DepEdge, ...]] = None
        self._in_cache: Optional[Dict[str, Tuple[DepEdge, ...]]] = None
        self._out_cache: Optional[Dict[str, Tuple[DepEdge, ...]]] = None
        for op in loop.operations:
            self._graph.add_node(op.name, op=op)
        for edge in edges or []:
            self.add_edge(edge)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, edge: DepEdge) -> None:
        """Insert a dependence edge (endpoints must be loop operations)."""
        for end in (edge.src, edge.dst):
            if end not in self._graph:
                raise KeyError(f"operation {end!r} is not in the loop")
        self._graph.add_edge(
            edge.src, edge.dst, kind=edge.kind, distance=edge.distance
        )
        self._edge_cache = None
        self._in_cache = None
        self._out_cache = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nx(self) -> nx.MultiDiGraph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    @property
    def n_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self._graph.number_of_edges()

    def op(self, name: str) -> Operation:
        """Operation object for a node name."""
        return self._graph.nodes[name]["op"]

    def nodes(self) -> List[str]:
        """All node names (program order of the loop body)."""
        return [op.name for op in self.loop.operations]

    def edges(self) -> Tuple[DepEdge, ...]:
        """All dependence edges (cached; networkx iteration order)."""
        if self._edge_cache is None:
            self._edge_cache = tuple(
                DepEdge(src, dst, data["kind"], data["distance"])
                for src, dst, data in self._graph.edges(data=True)
            )
        return self._edge_cache

    def _build_adjacency(self) -> None:
        ins: Dict[str, Tuple[DepEdge, ...]] = {}
        outs: Dict[str, Tuple[DepEdge, ...]] = {}
        for op in self.loop.operations:
            name = op.name
            ins[name] = tuple(
                DepEdge(src, dst, data["kind"], data["distance"])
                for src, dst, data in self._graph.in_edges(name, data=True)
            )
            outs[name] = tuple(
                DepEdge(src, dst, data["kind"], data["distance"])
                for src, dst, data in self._graph.out_edges(name, data=True)
            )
        self._in_cache = ins
        self._out_cache = outs

    def in_edges(self, name: str) -> Tuple[DepEdge, ...]:
        """Dependences that must be satisfied before ``name`` issues."""
        if self._in_cache is None:
            self._build_adjacency()
        return self._in_cache[name]

    def out_edges(self, name: str) -> Tuple[DepEdge, ...]:
        """Dependences carried from ``name`` to its consumers."""
        if self._out_cache is None:
            self._build_adjacency()
        return self._out_cache[name]

    def predecessors(self, name: str) -> Set[str]:
        return set(self._graph.predecessors(name))

    def successors(self, name: str) -> Set[str]:
        return set(self._graph.successors(name))

    def register_edges(self) -> Iterator[DepEdge]:
        """Flow edges only — the ones that cost inter-cluster bus traffic."""
        for edge in self.edges():
            if edge.kind in _REGISTER_KINDS:
                yield edge

    def crossing_register_edges(
        self, assignment: Dict[str, int]
    ) -> List[DepEdge]:
        """Flow edges whose endpoints sit in different clusters.

        ``assignment`` maps (a subset of) op names to cluster ids; edges
        with an unassigned endpoint are ignored.  This is the quantity the
        baseline scheduler's output-edge heuristic minimizes.
        """
        crossing = []
        for edge in self.register_edges():
            src_cluster = assignment.get(edge.src)
            dst_cluster = assignment.get(edge.dst)
            if src_cluster is None or dst_cluster is None:
                continue
            if src_cluster != dst_cluster:
                crossing.append(edge)
        return crossing

    # ------------------------------------------------------------------
    # Cycle analysis (RecMII support)
    # ------------------------------------------------------------------
    def simple_cycles(self) -> Iterator[List[str]]:
        """Elementary cycles (recurrences) of the DDG."""
        yield from nx.simple_cycles(self._graph)

    def has_recurrences(self) -> bool:
        """True when at least one dependence cycle exists."""
        try:
            next(self.simple_cycles())
            return True
        except StopIteration:
            return False

    def nodes_on_recurrences(self) -> Set[str]:
        """Operations that belong to some dependence cycle."""
        on_cycle: Set[str] = set()
        for component in nx.strongly_connected_components(self._graph):
            if len(component) > 1:
                on_cycle |= component
            else:
                (node,) = component
                if self._graph.has_edge(node, node):
                    on_cycle.add(node)
        return on_cycle

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DependenceGraph({self.loop.name}: "
            f"{self.n_nodes} nodes, {self.n_edges} edges)"
        )


def build_ddg(loop: Loop, extra_edges: Optional[List[DepEdge]] = None) -> DependenceGraph:
    """Construct the DDG from register names plus explicit extra edges.

    Intra-iteration flow dependences are inferred from register
    def-use chains of the body in program order.  Loop-carried register
    recurrences and memory dependences cannot be inferred from names alone
    and are supplied through ``extra_edges`` (the builder DSL generates
    them).
    """
    graph = DependenceGraph(loop)
    last_def: Dict[str, str] = {}
    for op in loop.operations:
        for src in op.srcs:
            producer = last_def.get(src)
            if producer is not None:
                graph.add_edge(DepEdge(producer, op.name, "flow", 0))
        if op.dest is not None:
            prior = last_def.get(op.dest)
            if prior is not None:
                graph.add_edge(DepEdge(prior, op.name, "output", 0))
            last_def[op.dest] = op.name
    for edge in extra_edges or []:
        graph.add_edge(edge)
    return graph
