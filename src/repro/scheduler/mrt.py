"""Modulo reservation table (MRT).

Two resource families are tracked modulo the II:

* **Functional units** — per ``(cluster, fu_type)``, with the per-cluster
  capacities of the machine model; an operation occupies its unit for one
  cycle (units are fully pipelined).
* **Register buses** — shared by all clusters; a transfer occupies one
  particular bus for ``latency`` *consecutive* cycles, exactly as the
  paper specifies ("this bus will be busy during the entire bus latency").
  With a bounded bus pool a transfer longer than the II conflicts with its
  own next-iteration instance and is therefore unschedulable; with an
  unbounded pool (Section 5.2) every transfer conceptually gets a fresh
  bus, so allocation never fails but usage is still recorded for
  statistics.

The conflict checks sit on the scheduler's innermost path (every
candidate slot of every cluster of every operation probes them), so both
families are backed by precomputed tables instead of per-probe loops:

* each bus is one **II-bit occupancy bitset**, and the ``latency``
  consecutive slots a transfer starting in slot ``s`` would occupy are
  precomputed once per II as a **window mask** — a fit test is a single
  ``row & window == 0`` instead of a Python loop over the latency;
* FU capacities are resolved once per ``(cluster, fu_type)`` at
  construction instead of walking the machine model per probe.

All mutations go through a :class:`Transaction` so a failed placement can
be rolled back without copying the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.operations import FUType
from ..machine.config import MachineConfig

__all__ = ["BusReservation", "Transaction", "ModuloReservationTable"]


@dataclass(frozen=True)
class BusReservation:
    """A register-bus transfer committed into the table."""

    bus: int  # -1 when the pool is unbounded
    start: int  # absolute schedule time of the first busy cycle
    latency: int


@dataclass
class Transaction:
    """Undo log for one tentative placement."""

    fu_slots: List[Tuple[int, int, FUType]] = field(default_factory=list)
    #: Bounded buses: ``(bus index, window mask)`` per reservation.
    bus_slots: List[Tuple[int, int]] = field(default_factory=list)
    unbounded_slots: List[int] = field(default_factory=list)


class ModuloReservationTable:
    """Reservation table for one scheduling attempt at a fixed II."""

    def __init__(self, machine: MachineConfig, ii: int):
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.machine = machine
        self.ii = ii
        # (slot, cluster, fu_type) -> used count
        self._fu_used: Dict[Tuple[int, int, FUType], int] = {}
        # (cluster, fu_type) -> capacity, resolved once
        self._fu_capacity: Dict[Tuple[int, FUType], int] = {
            (cluster, fu): machine.cluster(cluster).n_units(fu)
            for cluster in range(machine.n_clusters)
            for fu in FUType
        }
        # Bounded buses: one II-bit occupancy bitset per bus.
        n_buses = machine.register_bus.count
        self._bus_rows: Optional[List[int]] = (
            None if n_buses is None else [0] * n_buses
        )
        # Window masks: the latency consecutive slots (mod II) a transfer
        # starting in slot s occupies.  None when the transfer cannot fit
        # any II-cycle window (it would overlap its own next instance).
        latency = machine.register_bus.latency
        if latency > ii:
            self._window_masks: Optional[List[int]] = None
        else:
            self._window_masks = [
                self._rotated_window(start, latency) for start in range(ii)
            ]
        # unbounded pool: slot -> concurrent transfer count (stats only)
        self._unbounded_used: Dict[int, int] = {}

    def _rotated_window(self, start: int, latency: int) -> int:
        mask = 0
        for k in range(latency):
            mask |= 1 << ((start + k) % self.ii)
        return mask

    # ------------------------------------------------------------------
    # Functional units
    # ------------------------------------------------------------------
    def fu_free(self, time: int, cluster: int, fu: FUType) -> bool:
        """True when the cluster has a free unit of kind ``fu`` at ``time``."""
        slot = time % self.ii
        capacity = self._fu_capacity[(cluster, fu)]
        return self._fu_used.get((slot, cluster, fu), 0) < capacity

    def reserve_fu(
        self, time: int, cluster: int, fu: FUType, txn: Transaction
    ) -> bool:
        """Reserve a unit; returns False (no side effect) when full."""
        if not self.fu_free(time, cluster, fu):
            return False
        slot = time % self.ii
        key = (slot, cluster, fu)
        self._fu_used[key] = self._fu_used.get(key, 0) + 1
        txn.fu_slots.append(key)
        return True

    # ------------------------------------------------------------------
    # Register buses
    # ------------------------------------------------------------------
    def reserve_bus(
        self, start: int, txn: Transaction
    ) -> Optional[BusReservation]:
        """Try to reserve some bus from ``start`` for the bus latency.

        Returns the reservation, or ``None`` when every bus is busy in
        the window (never ``None`` for unbounded pools).
        """
        latency = self.machine.register_bus.latency
        if self._bus_rows is None:
            slot = start % self.ii
            for k in range(latency):
                s = (slot + k) % self.ii
                self._unbounded_used[s] = self._unbounded_used.get(s, 0) + 1
                txn.unbounded_slots.append(s)
            return BusReservation(bus=-1, start=start, latency=latency)
        if self._window_masks is None:
            return None  # would overlap its own next-iteration instance
        window = self._window_masks[start % self.ii]
        for index, row in enumerate(self._bus_rows):
            if row & window == 0:
                self._bus_rows[index] = row | window
                txn.bus_slots.append((index, window))
                return BusReservation(bus=index, start=start, latency=latency)
        return None

    def peak_bus_usage(self) -> int:
        """Maximum concurrent transfers in any slot (unbounded pools)."""
        if self._bus_rows is not None:
            return max(
                (row.bit_count() for row in self._bus_rows), default=0
            )
        return max(self._unbounded_used.values(), default=0)

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def rollback(self, txn: Transaction) -> None:
        """Undo every reservation recorded in the transaction."""
        for key in txn.fu_slots:
            self._fu_used[key] -= 1
        for index, window in txn.bus_slots:
            assert self._bus_rows is not None
            self._bus_rows[index] &= ~window
        for slot in txn.unbounded_slots:
            self._unbounded_used[slot] -= 1
        txn.fu_slots.clear()
        txn.bus_slots.clear()
        txn.unbounded_slots.clear()
