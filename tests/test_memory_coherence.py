"""Unit tests for the snoopy MSI controller."""

import pytest

from repro.machine.config import CacheConfig
from repro.memory.cache import ClusterCache, LineState
from repro.memory.coherence import BusOp, MSIController


def _system(n=2):
    caches = [
        ClusterCache(CacheConfig(size=1024, line_size=32), cluster_id=k)
        for k in range(n)
    ]
    return caches, MSIController(caches)


class TestBusRd:
    def test_no_holders(self):
        caches, msi = _system()
        result = msi.snoop(0, 0, BusOp.BUS_RD)
        assert result.supplier is None
        assert not result.writeback
        assert result.invalidated == ()

    def test_shared_supplier(self):
        caches, msi = _system()
        caches[1].fill(0, LineState.SHARED)
        result = msi.snoop(0, 0, BusOp.BUS_RD)
        assert result.supplier == 1
        assert not result.supplier_was_dirty
        assert caches[1].state_of(0) is LineState.SHARED

    def test_modified_supplier_downgrades_and_writes_back(self):
        caches, msi = _system()
        caches[1].fill(0, LineState.MODIFIED)
        result = msi.snoop(0, 0, BusOp.BUS_RD)
        assert result.supplier == 1
        assert result.supplier_was_dirty
        assert result.writeback
        assert caches[1].state_of(0) is LineState.SHARED

    def test_requester_own_copy_ignored(self):
        caches, msi = _system()
        caches[0].fill(0, LineState.MODIFIED)
        result = msi.snoop(0, 0, BusOp.BUS_RD)
        assert result.supplier is None
        assert caches[0].state_of(0) is LineState.MODIFIED


class TestBusRdX:
    def test_invalidates_all_remote_copies(self):
        caches, msi = _system(3)
        caches[1].fill(0, LineState.SHARED)
        caches[2].fill(0, LineState.SHARED)
        result = msi.snoop(0, 0, BusOp.BUS_RDX)
        assert set(result.invalidated) == {1, 2}
        assert caches[1].state_of(0) is LineState.INVALID
        assert caches[2].state_of(0) is LineState.INVALID

    def test_dirty_remote_writes_back(self):
        caches, msi = _system()
        caches[1].fill(0, LineState.MODIFIED)
        result = msi.snoop(0, 0, BusOp.BUS_RDX)
        assert result.writeback
        assert result.supplier == 1
        assert caches[1].state_of(0) is LineState.INVALID

    def test_shared_remote_can_supply(self):
        caches, msi = _system()
        caches[1].fill(0, LineState.SHARED)
        result = msi.snoop(0, 0, BusOp.BUS_RDX)
        assert result.supplier == 1


class TestBusUpgr:
    def test_invalidates_without_supplying(self):
        caches, msi = _system()
        caches[1].fill(0, LineState.SHARED)
        result = msi.snoop(0, 0, BusOp.BUS_UPGR)
        assert result.supplier is None
        assert result.invalidated == (1,)


class TestInvariants:
    def test_single_modified_holder_enforced(self):
        caches, msi = _system()
        caches[0].fill(0, LineState.MODIFIED)
        caches[1].fill(0, LineState.MODIFIED)  # corrupt state on purpose
        with pytest.raises(AssertionError, match="multiple M holders"):
            msi.check_invariants(0)

    def test_modified_excludes_shared(self):
        caches, msi = _system()
        caches[0].fill(0, LineState.MODIFIED)
        caches[1].fill(0, LineState.SHARED)
        with pytest.raises(AssertionError, match="coexists"):
            msi.check_invariants(0)

    def test_clean_states_pass(self):
        caches, msi = _system()
        caches[0].fill(0, LineState.SHARED)
        caches[1].fill(0, LineState.SHARED)
        msi.check_invariants(0)

    def test_protocol_preserves_invariants_under_traffic(self):
        """Random-ish access pattern never corrupts MSI."""
        caches, msi = _system(4)
        pattern = [
            (0, 0, BusOp.BUS_RD, LineState.SHARED),
            (1, 0, BusOp.BUS_RD, LineState.SHARED),
            (2, 0, BusOp.BUS_RDX, LineState.MODIFIED),
            (3, 0, BusOp.BUS_RD, LineState.SHARED),
            (0, 0, BusOp.BUS_RDX, LineState.MODIFIED),
            (1, 0, BusOp.BUS_UPGR, LineState.MODIFIED),
        ]
        for requester, addr, op, new_state in pattern:
            msi.snoop(requester, addr, op)
            caches[requester].fill(addr, new_state)
            msi.check_invariants(addr)

    def test_holders_listing(self):
        caches, msi = _system(3)
        caches[0].fill(0, LineState.SHARED)
        caches[2].fill(0, LineState.SHARED)
        assert msi.holders(0) == [(0, LineState.SHARED), (2, LineState.SHARED)]


class TestStats:
    def test_counters_accumulate(self):
        caches, msi = _system(3)
        caches[1].fill(0, LineState.SHARED)
        caches[2].fill(0, LineState.SHARED)
        msi.snoop(0, 0, BusOp.BUS_RDX)
        assert msi.n_invalidations == 2
        assert msi.n_interventions == 1

    def test_reset(self):
        caches, msi = _system()
        caches[1].fill(0, LineState.MODIFIED)
        msi.snoop(0, 0, BusOp.BUS_RD)
        msi.reset_stats()
        assert msi.n_writebacks == 0
        assert msi.n_interventions == 0
