"""Schedule quality metrics.

Quantities the paper's discussion revolves around: inter-cluster
communications per iteration, workload balance across clusters, II
inflation over the MII, bus occupancy and register pressure.  All are
pure functions of a :class:`~repro.scheduler.result.Schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..ir.operations import FUType
from ..scheduler.lifetimes import cluster_pressures
from ..scheduler.result import Schedule

__all__ = ["ScheduleMetrics", "schedule_metrics", "workload_balance"]


def workload_balance(schedule: Schedule) -> float:
    """Ratio min/max of per-cluster operation counts (1.0 = perfectly
    balanced; 0.0 = some cluster is empty).  Single-cluster machines are
    balanced by definition."""
    machine = schedule.machine
    if machine.n_clusters == 1:
        return 1.0
    counts = [0] * machine.n_clusters
    for placement in schedule.placements.values():
        counts[placement.cluster] += 1
    top = max(counts)
    return min(counts) / top if top else 1.0


@dataclass(frozen=True)
class ScheduleMetrics:
    """One schedule's static quality summary."""

    ii: int
    mii: int
    stage_count: int
    comms_per_iteration: float
    balance: float
    max_pressure: int
    bus_busy_fraction: float
    ipc: float

    @property
    def ii_inflation(self) -> float:
        """II over the lower bound (1.0 = optimal)."""
        return self.ii / self.mii if self.mii else float("inf")


def schedule_metrics(schedule: Schedule) -> ScheduleMetrics:
    """Compute all static metrics for a schedule."""
    machine = schedule.machine
    n_ops = len(schedule.placements)
    busy = 0
    for comm in schedule.communications:
        busy += comm.latency
    bus_capacity = (
        float("inf")
        if machine.register_bus.count is None
        else machine.register_bus.count * schedule.ii
    )
    bus_fraction = 0.0 if bus_capacity == float("inf") else busy / bus_capacity
    if machine.register_bus.count is None and schedule.communications:
        # For unbounded pools report the fraction of one hypothetical bus.
        bus_fraction = busy / schedule.ii
    pressures = cluster_pressures(schedule)
    return ScheduleMetrics(
        ii=schedule.ii,
        mii=schedule.mii,
        stage_count=schedule.stage_count,
        comms_per_iteration=schedule.comms_per_iteration(),
        balance=workload_balance(schedule),
        max_pressure=max(pressures.values(), default=0),
        bus_busy_fraction=bus_fraction,
        ipc=n_ops / schedule.ii if schedule.ii else 0.0,
    )
