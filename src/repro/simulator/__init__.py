"""Lockstep multiVLIWprocessor execution simulator."""

from .executor import LockstepSimulator, SteadyState, simulate
from .stats import SimulationResult
from .trace import Trace, TraceEvent, trace_schedule

__all__ = [
    "LockstepSimulator",
    "SimulationResult",
    "SteadyState",
    "Trace",
    "TraceEvent",
    "simulate",
    "trace_schedule",
]
