"""Lockstep execution of a modulo-scheduled loop.

All clusters run in lockstep: any stall in one cluster stalls every
cluster (Section 2.1), so the simulator keeps a single global *stall
offset*.  Operation instances are replayed in nominal schedule order
(iteration ``i`` of operation ``v`` nominally issues at ``i*II + t_v``);
when an instance's operand is not ready at its (offset-adjusted) issue
time the offset grows by the difference — that is exactly the paper's
NCYCLE_stall.

Memory instances run through the full distributed-memory timing model
(:class:`~repro.memory.hierarchy.DistributedMemorySystem`): local MSI
lookup, MSHR allocation, memory-bus arbitration, remote-cache or
main-memory fill, in-flight merging.  The scheduler's *assumed* latency
only influenced where consumers were placed; actual readiness comes from
the memory system, which is how optimistic hit-latency scheduling turns
into stalls when a load misses.

Steady-state entry memoization
------------------------------
``NTIMES`` entries of the innermost loop mostly repeat each other: after
a warm-up transient, the memory system settles into a per-entry pattern
and re-walking all ``NITER × ops`` instances is redundant.  The engine
exploits this without changing a single bit of the results:

* before each entry it takes a *normalized signature* of the memory
  system (:meth:`DistributedMemorySystem.state_signature`) — relative in
  time to the entry's start and shifted in address space by the
  cumulative per-entry address delta, so a stencil sweeping rows hashes
  equal once its relative cache contents stop changing;
* entry execution is a pure function of that signature plus the entry's
  address stream, so when a signature repeats (same outer-point phase,
  same normalized state) the engine proves the remaining entries replay
  the recorded cycle — it verifies the future address deltas match the
  shift under which the states compared equal — and replays their
  (stall, statistics-delta) records instead of re-simulating;
* entries whose address stream is not a uniform, line-aligned shift of
  the previous one act as barriers: detection restarts after them, and
  kernels that never converge (cache thrashing, irregular outer strides)
  simply run every entry exactly as before.

``exact=True`` disables the machinery entirely; results are guaranteed —
and tested — to be bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..ir.loop import Loop
from ..machine.config import MachineConfig
from ..memory.hierarchy import DistributedMemorySystem
from ..scheduler.result import Schedule
from .stats import SimulationResult

__all__ = ["LockstepSimulator", "SteadyState", "simulate"]


@dataclass(frozen=True)
class _FlowInput:
    producer: str
    distance: int
    cross_cluster: bool


@dataclass(frozen=True)
class SteadyState:
    """How a memoized run split its entries (``simulator.steady_state``)."""

    detected_at: int  #: index of the first replayed entry
    period: int  #: length of the repeating entry cycle
    simulated_entries: int  #: entries executed instance by instance
    replayed_entries: int  #: entries replayed from the memo record


def _validate_count(name: str, value: Optional[int], default: int) -> int:
    """Resolve an iteration-count override, rejecting non-positive values.

    ``value or default`` would silently swallow an explicit ``0``; the
    override is applied iff it ``is not None``, and whichever count wins
    must be at least 1 — a loop that is never entered has no schedule to
    execute.
    """
    resolved = default if value is None else value
    if not isinstance(resolved, int) or isinstance(resolved, bool):
        raise ValueError(f"{name} must be an int, got {resolved!r}")
    if resolved < 1:
        raise ValueError(f"{name} must be >= 1, got {resolved}")
    return resolved


class LockstepSimulator:
    """Executes one schedule on one machine instance.

    Parameters
    ----------
    schedule:
        The modulo schedule to execute.
    n_iterations:
        Override NITER (defaults to the loop's own trip count).
    n_times:
        Override NTIMES (defaults to the loop's outer trip-count product).
        Cache state persists across executions, as on real hardware.
    exact:
        ``True`` forces every entry to be simulated instance by instance,
        disabling steady-state memoization.  Results are bit-identical
        either way; the flag exists as an escape hatch and for the
        equivalence tests that prove it.
    """

    def __init__(
        self,
        schedule: Schedule,
        n_iterations: Optional[int] = None,
        n_times: Optional[int] = None,
        exact: bool = False,
    ):
        self.schedule = schedule
        self.loop: Loop = schedule.kernel.loop
        self.machine: MachineConfig = schedule.machine
        self.n_iterations = _validate_count(
            "n_iterations", n_iterations, self.loop.n_iterations
        )
        self.n_times = _validate_count(
            "n_times", n_times, self.loop.n_times
        )
        self.exact = exact
        #: Populated by :meth:`run` when memoization kicked in.
        self.steady_state: Optional[SteadyState] = None
        self.memory = DistributedMemorySystem(self.machine)
        self._flow_inputs = self._collect_flow_inputs()
        self._instance_order = self._build_instance_order()
        self._build_fast_tables()

    # ------------------------------------------------------------------
    def _collect_flow_inputs(self) -> Dict[str, List[_FlowInput]]:
        """Flow operands of every operation, with cross-cluster flags."""
        ddg = self.schedule.kernel.ddg
        placements = self.schedule.placements
        inputs: Dict[str, List[_FlowInput]] = {}
        for edge in ddg.edges():
            if edge.kind != "flow":
                continue
            src = placements[edge.src]
            dst = placements[edge.dst]
            inputs.setdefault(edge.dst, []).append(
                _FlowInput(
                    producer=edge.src,
                    distance=edge.distance,
                    cross_cluster=src.cluster != dst.cluster,
                )
            )
        return inputs

    def _build_instance_order(self) -> List[Tuple[int, int, str]]:
        """All (nominal_time, iteration, op) instances of one execution,
        sorted by nominal time (ties: schedule slot order)."""
        placements = self.schedule.placements
        ii = self.schedule.ii
        instances: List[Tuple[int, int, str]] = []
        for i in range(self.n_iterations):
            for name, placement in placements.items():
                instances.append((i * ii + placement.time, i, name))
        instances.sort()
        return instances

    def _build_fast_tables(self) -> None:
        """Index-based mirrors of the per-instance lookups.

        The entry hot loop runs ``NITER × ops`` times per entry; resolving
        operations by name and rebuilding iteration-point dictionaries
        there is pure overhead, so everything that is constant across
        instances is precomputed once: operation indices, clusters,
        functional-unit latencies, flow-operand index lists (with the
        register-bus penalty folded in) and, for memory operations, the
        per-iteration address stride of the affine reference.
        """
        loop = self.loop
        placements = self.schedule.placements
        lrb = self.machine.register_bus.latency
        names = list(placements)
        index_of = {name: i for i, name in enumerate(names)}
        self._op_names = names
        self._n_ops = len(names)
        self._cluster = [placements[n].cluster for n in names]
        self._is_memory = []
        self._is_store = []
        self._fu_latency = []
        self._mem_ref = []
        for name in names:
            op = loop.operation(name)
            self._is_memory.append(op.is_memory)
            self._is_store.append(op.is_store)
            self._fu_latency.append(
                0 if op.is_memory else self.machine.latency(op.opclass)
            )
            self._mem_ref.append(loop.ref_of(op) if op.is_memory else None)
        self._flows: List[Tuple[Tuple[int, int, int], ...]] = [
            tuple(
                (
                    index_of[flow.producer],
                    flow.distance,
                    lrb if flow.cross_cluster else 0,
                )
                for flow in self._flow_inputs.get(name, ())
            )
            for name in names
        ]
        self._instances = [
            (nominal, iteration, index_of[name])
            for nominal, iteration, name in self._instance_order
        ]

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute NTIMES entries of the loop and aggregate the cycles."""
        schedule = self.schedule
        lrb = self.machine.register_bus.latency
        total_stall = 0

        outer_points = list(self._outer_points())
        n_points = len(outer_points)
        entry_compute = (self.n_iterations + schedule.stage_count - 1) * schedule.ii
        memoize = not self.exact and self.n_times > 1
        shift_table = self._entry_shift_table(outer_points) if memoize else None
        shift_unit = self.memory.signature_shift_unit() if memoize else 1
        # keyed signature -> (entry index, cumulative shift at that entry)
        history: Dict[Tuple[object, ...], Tuple[int, int]] = {}
        records: List[Tuple[int, Dict[str, int]]] = []
        cumulative_shift = 0

        clock = 0  # global time: memory-system state spans loop entries
        entry = 0
        while entry < self.n_times:
            if memoize:
                if entry > 0:
                    delta = shift_table[(entry - 1) % n_points]
                    if delta is None:
                        # Non-uniform address step: states on either side
                        # are incomparable, restart detection here.
                        history.clear()
                        cumulative_shift = 0
                    else:
                        cumulative_shift += delta
                # Signatures normalize only by line-aligned shifts; the
                # sub-line remainder is keyed alongside, so two entries
                # compare iff their cumulative shifts differ by a whole
                # number of shift units (e.g. a 328-byte row stride on
                # 32-byte lines matches every 4th entry: 4*328 % 32 == 0).
                remainder = cumulative_shift % shift_unit
                key = (
                    remainder,
                    self.memory.state_signature(
                        clock, cumulative_shift - remainder
                    ),
                )
                match = history.get(key)
                if match is not None and self._replay_is_sound(
                    match, entry, cumulative_shift - match[1], outer_points
                ):
                    total_stall += self._replay(match[0], entry, records)
                    break
                history[key] = (entry, cumulative_shift)
            counters_before = self.memory.counters() if memoize else None
            outer = outer_points[entry % n_points]
            stall = self._run_once(outer, lrb, clock)
            total_stall += stall
            clock += entry_compute + stall
            if memoize:
                after = self.memory.counters()
                records.append(
                    (
                        stall,
                        {
                            key: after[key] - counters_before[key]
                            for key in after
                        },
                    )
                )
            entry += 1

        compute = schedule.compute_cycles(self.n_iterations, self.n_times)
        comms = schedule.n_communications * self.n_iterations * self.n_times
        return SimulationResult(
            kernel=schedule.kernel.name,
            machine=self.machine.name,
            scheduler=schedule.scheduler_name,
            threshold=schedule.threshold,
            ii=schedule.ii,
            stage_count=schedule.stage_count,
            n_times=self.n_times,
            n_iterations=self.n_iterations,
            compute_cycles=compute,
            stall_cycles=total_stall,
            memory=self.memory.stats,
            register_comms=comms,
        )

    # ------------------------------------------------------------------
    # Steady-state memoization
    # ------------------------------------------------------------------
    def _entry_shift_table(
        self, outer_points: List[Dict[str, int]]
    ) -> List[Optional[int]]:
        """Per outer-point phase ``i``: the uniform byte shift every
        memory reference undergoes from the entry at point ``i`` to the
        entry at point ``(i+1) % P`` — or ``None`` when the references
        move by *different* amounts, in which case no shift of the
        memory state can align the two entries and detection must
        restart.  A uniform but non-line-aligned shift is returned as
        is: :meth:`run` normalizes signatures by the line-aligned part
        only and keys the sub-line remainder alongside, so such entries
        still match once their cumulative shifts differ by whole
        lines."""
        addresses = self._entry_base_addresses(outer_points)
        n_points = len(outer_points)
        table: List[Optional[int]] = []
        for i in range(n_points):
            here = addresses[i]
            there = addresses[(i + 1) % n_points]
            if not here:  # no memory operations: entries trivially align
                table.append(0)
                continue
            deltas = {b - a for a, b in zip(here, there)}
            table.append(deltas.pop() if len(deltas) == 1 else None)
        return table

    def _entry_base_addresses(
        self, outer_points: List[Dict[str, int]]
    ) -> List[List[int]]:
        """First-iteration address of each memory op at each outer point.

        Affine references move by a constant per inner iteration, so the
        whole address stream of an entry is determined by these bases
        plus the (outer-independent) inner strides."""
        loop = self.loop
        inner = loop.inner
        refs = [
            self._mem_ref[i] for i in range(self._n_ops) if self._is_memory[i]
        ]
        result = []
        for outer in outer_points:
            point = dict(outer)
            point[inner.var] = inner.lower
            result.append([ref.address(point) for ref in refs])
        return result

    def _replay_is_sound(
        self,
        match: Tuple[int, int],
        entry: int,
        shift: int,
        outer_points: List[Dict[str, int]],
    ) -> bool:
        """Prove that entries ``entry..n_times-1`` replay the recorded
        cycle ``match[0]..entry-1``.

        The signature match establishes that the memory state before
        ``entry`` equals the state before ``match[0]`` translated by
        ``shift`` bytes.  Entry execution is a deterministic function of
        (state, address stream), so the replay is exact iff every future
        entry's address stream is the corresponding cycle entry's stream
        translated by that same ``shift`` — checked here against the
        affine reference bases (streams repeat with the outer-point
        period, so only ``min(remaining, P)`` offsets are distinct)."""
        start = match[0]
        addresses = self._entry_base_addresses(outer_points)
        n_points = len(outer_points)
        remaining = self.n_times - entry
        for offset in range(min(remaining, n_points)):
            old = addresses[(start + offset) % n_points]
            new = addresses[(entry + offset) % n_points]
            if any(b - a != shift for a, b in zip(old, new)):
                return False
        return True

    def _replay(
        self,
        start: int,
        entry: int,
        records: List[Tuple[int, Dict[str, int]]],
    ) -> int:
        """Replay entries ``entry..n_times-1`` from the recorded cycle
        ``records[start:entry]``; returns the stall cycles they add and
        applies their statistics deltas to the memory system."""
        period = entry - start
        cycle = records[start:entry]
        remaining = self.n_times - entry
        full, partial = divmod(remaining, period)
        stall = 0
        if full:
            stall += full * sum(record[0] for record in cycle)
            for _, delta in cycle:
                self.memory.add_counters(delta, full)
        for record_stall, delta in cycle[:partial]:
            stall += record_stall
            self.memory.add_counters(delta, 1)
        self.steady_state = SteadyState(
            detected_at=entry,
            period=period,
            simulated_entries=entry,
            replayed_entries=remaining,
        )
        return stall

    # ------------------------------------------------------------------
    def _outer_points(self) -> Iterator[Dict[str, int]]:
        """Iteration points of the outer dims (one per loop entry)."""
        outer = self.loop.outer_dims
        if not outer:
            yield {}
            return

        def walk(depth: int, partial: Dict[str, int]) -> Iterator[Dict[str, int]]:
            if depth == len(outer):
                yield dict(partial)
                return
            for value in outer[depth].values():
                partial[outer[depth].var] = value
                yield from walk(depth + 1, partial)
            partial.pop(outer[depth].var, None)

        yield from walk(0, {})

    def _run_once(self, outer: Dict[str, int], lrb: int, base: int) -> int:
        """One entry of the innermost loop starting at global time ``base``;
        returns its stall cycles."""
        loop = self.loop
        inner = loop.inner
        n_ops = self._n_ops
        offset = 0
        ready: List[Optional[int]] = [None] * (self.n_iterations * n_ops)

        # Per-entry address bases: address(iteration) = base + stride*i.
        mem_base: List[int] = [0] * n_ops
        mem_stride: List[int] = [0] * n_ops
        for op_index in range(n_ops):
            ref = self._mem_ref[op_index]
            if ref is None:
                continue
            point = dict(outer)
            point[inner.var] = inner.lower
            first = ref.address(point)
            point[inner.var] = inner.lower + inner.step
            mem_base[op_index] = first
            mem_stride[op_index] = ref.address(point) - first

        clusters = self._cluster
        is_memory = self._is_memory
        is_store = self._is_store
        fu_latency = self._fu_latency
        flows = self._flows
        access = self.memory.access

        for nominal, iteration, op_index in self._instances:
            issue = base + nominal + offset

            # Lockstep operand wait.
            for src_index, distance, extra in flows[op_index]:
                src_iter = iteration - distance
                if src_iter < 0:
                    continue  # live-in from before this loop entry
                produced = ready[src_iter * n_ops + src_index]
                if produced is None:
                    continue
                operand_ready = produced + extra
                if operand_ready > issue:
                    offset += operand_ready - issue
                    issue = operand_ready

            if is_memory[op_index]:
                result = access(
                    clusters[op_index],
                    mem_base[op_index] + mem_stride[op_index] * iteration,
                    is_store[op_index],
                    issue,
                )
                ready[iteration * n_ops + op_index] = result.ready_time
            else:
                ready[iteration * n_ops + op_index] = issue + fu_latency[op_index]
        return offset


def simulate(
    schedule: Schedule,
    n_iterations: Optional[int] = None,
    n_times: Optional[int] = None,
    exact: bool = False,
) -> SimulationResult:
    """Convenience one-shot simulation."""
    return LockstepSimulator(
        schedule, n_iterations=n_iterations, n_times=n_times, exact=exact
    ).run()
