"""Tests for modulo variable expansion and register assignment."""

import pytest

from repro.cme import SamplingCME
from repro.ir import LoopBuilder
from repro.machine import two_cluster, unified
from repro.scheduler import BaselineScheduler, SchedulerConfig
from repro.scheduler.mve import (
    AllocationError,
    allocate_registers,
)
from repro.workloads import kernel_by_name


class TestUnrollFactor:
    def test_short_lifetimes_factor_small(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        assignment = allocate_registers(schedule)
        # saxpy at II=1 with 2-cycle ops: lifetimes of a couple cycles.
        assert 1 <= assignment.unroll_factor <= 4

    def test_prefetched_load_raises_factor(self, sampling_cme):
        b = LoopBuilder("stream")
        i = b.dim("i", 0, 256)
        a = b.array("A", (2048,))
        v = b.load(a, [b.aff(i=8)], name="ld")
        t = b.fmul(v, v, name="mul")
        b.store(a, [b.aff(i=8)], t, name="st")
        kernel = b.build()
        machine = unified()
        plain = allocate_registers(
            BaselineScheduler(
                SchedulerConfig(threshold=1.0), locality=sampling_cme
            ).schedule(kernel, machine)
        )
        prefetched = allocate_registers(
            BaselineScheduler(
                SchedulerConfig(threshold=0.5), locality=sampling_cme
            ).schedule(kernel, machine)
        )
        # A 13-cycle lifetime at II=1 needs ~13 copies.
        assert prefetched.unroll_factor > plain.unroll_factor

    def test_degree_vs_factor(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        assignment = allocate_registers(schedule)
        for name, placement in schedule.placements.items():
            op = stencil.loop.operation(name)
            if op.dest is None:
                continue
            degree = assignment.degree_of(name, placement.cluster)
            assert 1 <= degree <= assignment.unroll_factor


class TestAssignment:
    def test_every_value_gets_registers(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        assignment = allocate_registers(schedule)
        for name, placement in schedule.placements.items():
            op = stencil.loop.operation(name)
            if op.dest is None:
                continue
            for copy in range(assignment.unroll_factor):
                reg = assignment.register_of(name, placement.cluster, copy)
                assert reg >= 0

    def test_usage_within_register_files(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        assignment = allocate_registers(schedule)
        for cluster, used in assignment.used_per_cluster.items():
            assert used <= two_cluster_machine.cluster(cluster).n_registers

    def test_communicated_value_backed_in_both_clusters(self):
        b = LoopBuilder("cross")
        i = b.dim("i", 0, 32)
        a = b.array("A", (64,))
        out = b.array("OUT", (64,))
        values = [b.load(a, [b.aff(k, i=1)], name=f"ld{k}") for k in range(5)]
        total = values[0]
        for v in values[1:]:
            total = b.fadd(total, v)
        b.store(out, [b.aff(i=1)], total, name="st")
        kernel = b.build()
        schedule = BaselineScheduler().schedule(kernel, two_cluster())
        if not schedule.communications:
            pytest.skip("no communication in this schedule")
        assignment = allocate_registers(schedule)
        comm = schedule.communications[0]
        clusters = {
            cl for (op, cl, _c) in assignment.registers if op == comm.producer
        }
        assert {comm.src_cluster, comm.dst_cluster} <= clusters

    def test_copy_indices_wrap(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        assignment = allocate_registers(schedule)
        factor = assignment.unroll_factor
        assert assignment.register_of("mul", 0, 0) == assignment.register_of(
            "mul", 0, factor
        )

    def test_validation_passes_for_engine_output(self):
        for name in ("su2cor", "applu", "fir"):
            if name == "fir":
                from repro.workloads import DSP_KERNELS

                kernel = DSP_KERNELS["fir"]()
            else:
                kernel = kernel_by_name(name)
            schedule = BaselineScheduler().schedule(kernel, two_cluster())
            assignment = allocate_registers(schedule)
            assert assignment.unroll_factor >= 1


class TestAllocationFailure:
    def test_tiny_register_file_fails(self, sampling_cme):
        """Aggressive prefetching on a tiny file exceeds capacity."""
        from dataclasses import replace

        b = LoopBuilder("pressure")
        i = b.dim("i", 0, 256)
        a = b.array("A", (2048,))
        out = b.array("OUT", (2048,))
        loads = [b.load(a, [b.aff(k, i=8)], name=f"ld{k}") for k in range(4)]
        total = loads[0]
        for v in loads[1:]:
            total = b.fadd(total, v)
        b.store(out, [b.aff(i=8)], total, name="st")
        kernel = b.build()
        machine = unified()
        schedule = BaselineScheduler(
            SchedulerConfig(threshold=0.0, check_register_pressure=False),
            locality=sampling_cme,
        ).schedule(kernel, machine)
        tiny = replace(
            machine,
            clusters=(replace(machine.clusters[0], n_registers=4),),
        )
        schedule.machine = tiny
        with pytest.raises(AllocationError, match="needs"):
            allocate_registers(schedule)
