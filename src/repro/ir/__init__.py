"""Loop intermediate representation: operations, references, loops, DDGs."""

from .builder import Kernel, LoopBuilder, Value
from .ddg import DepEdge, DependenceGraph, build_ddg
from .depanalysis import analyze_memory_dependences, exact_distance, may_alias
from .loop import Loop, LoopDim
from .operations import FUType, OpClass, Operation
from .references import AffineExpr, Array, ArrayReference

__all__ = [
    "AffineExpr",
    "Array",
    "ArrayReference",
    "DepEdge",
    "analyze_memory_dependences",
    "DependenceGraph",
    "FUType",
    "Kernel",
    "Loop",
    "LoopBuilder",
    "LoopDim",
    "OpClass",
    "Operation",
    "Value",
    "build_ddg",
]
