"""Record the PR 4 incremental-CME win: schedule-stage seconds across
sampled-CME engines on the fig6 and streaming scenarios.

Runs each scenario once per engine — the from-scratch sampled reference
(``SamplingCME``) and the incremental engine (``IncrementalCME``) — on a
cold, cache-disabled, single-job grid with steady-state detection in its
default ``auto`` mode.  Results must be identical across engines (bars
for figure scenarios, per-cell cycle/stall/memory digests for grid
scenarios); timings, the per-stage second split (the schedule stage is
where the CME lives) and the derived speedups go to
``benchmarks/BENCH_pr4.json``.

The acceptance bar of PR 4 is the **schedule-stage** speedup: >= 1.5x on
both scenarios, with bit-identical figures.  The PR 3 recordings
(``benchmarks/BENCH_pr3.json``, same container/protocol) are quoted as
the wall-clock baseline.

Usage::

    PYTHONPATH=src python benchmarks/record_perf.py [--out PATH]
        [--skip-fig6] [--repeats N]

Single-job on purpose: the point is the per-cell speedup, not process
fan-out (which composes with it).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.cme import SAMPLED_ENGINES
from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import run_scenario

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_pr4.json"
PR3_RECORDING = pathlib.Path(__file__).parent / "BENCH_pr3.json"

#: The engines under comparison; both are bit-identical sampled CMEs.
ENGINES = {
    "sampling": lambda: SAMPLED_ENGINES["sampling"](512),
    "incremental": lambda: SAMPLED_ENGINES["incremental"](512),
}


def _digest(outcome):
    """Engine-independent fingerprint of a scenario's results."""
    if outcome.figure is not None:
        return [
            (bar.group, bar.scheduler, bar.threshold,
             bar.norm_compute, bar.norm_stall)
            for bar in outcome.figure.bars
        ]
    return [
        (result.kernel, result.machine, result.scheduler, result.threshold,
         result.total_cycles, result.stall_cycles,
         result.simulation.memory.as_dict())
        for result in outcome.results
    ]


def _measure(scenario_name: str, engine: str, repeats: int) -> dict:
    best = None
    for _ in range(repeats):
        grid = ExperimentGrid(locality=ENGINES[engine](), cache=False)
        start = time.perf_counter()
        outcome = run_scenario(scenario_name, grid=grid, steady="auto")
        seconds = time.perf_counter() - start
        sample = {
            "seconds": round(seconds, 3),
            "cells_requested": grid.stats.requested,
            "cells_computed": grid.stats.computed,
            "stage_seconds": {
                stage: round(value, 3)
                for stage, value in grid.stats.stage_seconds.items()
            },
            "digest": _digest(outcome),
        }
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    return best


def _pr3_baseline() -> dict:
    """Quote the PR 3 recording (same protocol) when it is available."""
    if not PR3_RECORDING.exists():
        return {"note": "BENCH_pr3.json not found"}
    data = json.loads(PR3_RECORDING.read_text())
    quoted = {}
    for name, entry in data.get("scenarios", {}).items():
        auto = entry.get("modes", {}).get("auto", {})
        quoted[name] = {
            "seconds": auto.get("seconds"),
            "schedule_stage_seconds": auto.get("stage_seconds", {}).get(
                "schedule"
            ),
        }
    return quoted


def record(scenarios, out: pathlib.Path, repeats: int) -> dict:
    results = {}
    for name in scenarios:
        runs = {}
        for engine in ENGINES:
            print(f"[{name}] cme={engine} ...", flush=True)
            runs[engine] = _measure(name, engine, repeats)
            print(
                f"[{name}]   {runs[engine]['seconds']}s "
                f"(schedule "
                f"{runs[engine]['stage_seconds'].get('schedule')}s), "
                f"{runs[engine]['cells_computed']} cells computed",
                flush=True,
            )
        reference = runs["sampling"]["digest"]
        for engine, run in runs.items():
            if run["digest"] != reference:
                raise AssertionError(
                    f"{name}: cme={engine} results diverge from the "
                    f"from-scratch reference"
                )
            del run["digest"]
        schedule_ref = runs["sampling"]["stage_seconds"].get("schedule")
        schedule_inc = runs["incremental"]["stage_seconds"].get("schedule")
        results[name] = {
            "engines": runs,
            "speedup_total": round(
                runs["sampling"]["seconds"]
                / runs["incremental"]["seconds"], 2
            ),
            #: In-run engine A/B — conservative: the 'sampling' side
            #: already benefits from this PR's scheduler-side hot-path
            #: work (DDG adjacency caches, O(1) op lookup, hand-rolled
            #: rec_mii), so this isolates the CME engine alone.
            "speedup_schedule_stage": (
                round(schedule_ref / schedule_inc, 2)
                if schedule_ref is not None
                and schedule_inc  # 0.0 denominator: unmeasurably fast
                else None
            ),
        }
    pr3 = _pr3_baseline()
    for name, entry in results.items():
        before = (pr3.get(name) or {}).get("schedule_stage_seconds")
        after = entry["engines"]["incremental"]["stage_seconds"].get(
            "schedule"
        )
        #: The PR's actual before/after: PR 3 code vs this PR, same
        #: protocol.  This is the acceptance number.
        entry["speedup_schedule_vs_pr3"] = (
            round(before / after, 2)
            if before is not None
            and after  # 0.0 denominator: unmeasurably fast
            else None
        )
    payload = {
        "pr": 4,
        "protocol": (
            "single-job ExperimentGrid, cell cache disabled, steady=auto, "
            f"best of {repeats} cold runs per engine, identical results "
            "asserted across engines; 'sampling' is the from-scratch "
            "functional-cache sweep, 'incremental' the trace-sharing "
            "set-decomposed engine (both bit-identical sampled CMEs)"
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "pr3_baseline": pr3,
        "scenarios": results,
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--skip-fig6", action="store_true",
        help="record only the streaming suite (fig6 is the larger grid)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold runs per engine; the fastest is recorded (default: 3)",
    )
    args = parser.parse_args(argv)
    scenarios = ["streaming"]
    if not args.skip_fig6:
        scenarios.append("fig6-2cluster")
    payload = record(scenarios, args.out, args.repeats)
    failed = False
    for name, entry in payload["scenarios"].items():
        # The acceptance number is the PR's before/after (PR 3 recording
        # vs this PR); the in-run engine A/B is quoted alongside as the
        # CME-isolated view.
        speedup = entry.get("speedup_schedule_vs_pr3")
        if speedup is None:
            speedup = entry["speedup_schedule_stage"]
        print(
            f"{name}: schedule stage {speedup}x vs PR 3 "
            f"({entry['speedup_schedule_stage']}x vs in-run reference)"
        )
        if speedup is None or speedup < 1.5:
            print(
                f"WARNING: {name} schedule-stage speedup is "
                f"{speedup}x (< 1.5x)"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
