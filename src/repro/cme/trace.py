"""Content-addressed address traces for the CME engines.

The sampled CME sweeps a reference set over a (possibly truncated) prefix
of the iteration space.  The *addresses* each memory operation touches in
that window are a pure function of the loop content — independent of
which other operations share the cache and of the cache geometry.  This
module precomputes them once per ``(loop content, window)`` and derives,
per cache geometry, the per-set access streams the incremental engine
replays:

* :func:`loop_fingerprint` — content hash of a loop (dims, operations,
  reference table), cached on the loop object so repeated queries are a
  dictionary lookup.  It replaces the fragile ``id(loop)`` memo keys: an
  id can be recycled by the allocator after a loop is garbage-collected,
  aliasing a stale estimate onto a fresh, different loop.
* :class:`AddressTrace` — per-operation byte-address arrays over the
  first ``max_points`` iteration points, plus each operation's program
  position (the interleaving key).
* :class:`GeometryTrace` — per-operation, per-cache-set access streams
  ``set -> [(point, line), ...]`` for one ``(line_size, n_sets)``
  geometry, derived from an :class:`AddressTrace`.
* :class:`TraceStore` — the content-addressed cache of both.  Every key
  is derived from loop content, so a store is safe to pickle and ship to
  grid worker processes (unlike the historical id-keyed memos, which had
  to be dropped on every pickle).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.loop import Loop
from ..machine.config import CacheConfig

__all__ = [
    "loop_fingerprint",
    "AddressTrace",
    "GeometryTrace",
    "TraceStore",
]

#: Attribute used to cache a loop's content fingerprint on the object
#: itself — the fingerprint dies with the loop, so id reuse can never
#: resurrect a stale one.  Loops are de-facto immutable (tuples of
#: frozen dataclasses), which is what makes the caching sound.
_FINGERPRINT_ATTR = "_cme_content_fingerprint"


def loop_fingerprint(loop: Loop) -> str:
    """Content hash of everything the CME estimators read from a loop.

    Covers the loop dims (trip counts and steps), the operation table
    (names, classes, reference indices, program order) and the memory
    reference table (arrays, bases, subscripts).  Two loops with equal
    fingerprints produce identical address streams, so estimates keyed
    on the fingerprint are shareable across loop objects, pickling and
    process fan-out.
    """
    cached = loop.__dict__.get(_FINGERPRINT_ATTR)
    if cached is None:
        digest = hashlib.sha256()
        digest.update(repr(loop.dims).encode())
        digest.update(repr(loop.operations).encode())
        digest.update(repr(loop.refs).encode())
        cached = digest.hexdigest()[:16]
        loop.__dict__[_FINGERPRINT_ATTR] = cached
    return cached


@dataclass
class AddressTrace:
    """Byte addresses each memory operation touches, per iteration point.

    ``positions`` maps operation names to their program position — the
    intra-point interleaving key: the global access order of any
    operation subset is ``(point, position)``-ascending.
    """

    loop_fp: str
    max_points: int
    n_points: int
    positions: Dict[str, int]
    addresses: Dict[str, List[int]]

    @classmethod
    def build(cls, loop: Loop, max_points: int) -> "AddressTrace":
        mem_ops = [
            (index, op)
            for index, op in enumerate(loop.operations)
            if op.is_memory
        ]
        positions = {op.name: index for index, op in mem_ops}
        refs = [(op.name, loop.ref_of(op)) for _, op in mem_ops]
        addresses: Dict[str, List[int]] = {name: [] for name, _ in refs}
        n_points = 0
        for point in loop.iteration_points(limit=max_points):
            for name, ref in refs:
                addresses[name].append(ref.address(point))
            n_points += 1
        return cls(
            loop_fp=loop_fingerprint(loop),
            max_points=max_points,
            n_points=n_points,
            positions=positions,
            addresses=addresses,
        )


@dataclass
class GeometryTrace:
    """Per-set access streams of one address trace under one geometry.

    ``by_set[op][s]`` lists the accesses operation ``op`` makes to cache
    set ``s`` as merge-ready event tuples ``(point, position, line,
    op_name)`` in point order — the sort key ``(point, position)`` is
    the global interleaving order, so replaying a set under any op
    subset is "concatenate the ops' lists, sort, walk".  ``line`` is the
    global line number (``address // line_size``); within one set,
    distinct lines correspond to distinct tags, so LRU over lines is
    exactly LRU over tags.
    """

    line_size: int
    n_sets: int
    trace: AddressTrace
    by_set: Dict[str, Dict[int, List[Tuple[int, int, int, str]]]] = field(
        default_factory=dict
    )

    @classmethod
    def build(
        cls, trace: AddressTrace, line_size: int, n_sets: int
    ) -> "GeometryTrace":
        by_set: Dict[str, Dict[int, List[Tuple[int, int, int, str]]]] = {}
        for name, addresses in trace.addresses.items():
            position = trace.positions[name]
            per_set: Dict[int, List[Tuple[int, int, int, str]]] = {}
            for point, address in enumerate(addresses):
                line = address // line_size
                per_set.setdefault(line % n_sets, []).append(
                    (point, position, line, name)
                )
            by_set[name] = per_set
        return cls(
            line_size=line_size, n_sets=n_sets, trace=trace, by_set=by_set
        )

    def sets_of(
        self, op_name: str
    ) -> Dict[int, List[Tuple[int, int, int, str]]]:
        """The per-set streams of one operation ({} for unknown names)."""
        return self.by_set.get(op_name, {})


class TraceStore:
    """Content-addressed cache of address and geometry traces.

    Both layers key on the loop fingerprint (plus the sampling window
    and, for geometry traces, the cache shape), so a store can be shared
    between analyzers, survive pickling, and ship to worker processes
    pre-warmed.
    """

    def __init__(self) -> None:
        self._addresses: Dict[Tuple[str, int], AddressTrace] = {}
        self._geometries: Dict[Tuple[str, int, int, int], GeometryTrace] = {}
        self.address_builds = 0
        self.geometry_builds = 0

    def __len__(self) -> int:
        return len(self._addresses)

    def address_trace(self, loop: Loop, max_points: int) -> AddressTrace:
        key = (loop_fingerprint(loop), max_points)
        trace = self._addresses.get(key)
        if trace is None:
            trace = AddressTrace.build(loop, max_points)
            self._addresses[key] = trace
            self.address_builds += 1
        return trace

    def peek_address_trace(
        self, loop_fp: str, max_points: int
    ) -> "AddressTrace | None":
        """The cached address trace for a key, or ``None`` — never builds."""
        return self._addresses.get((loop_fp, max_points))

    def install_address_trace(self, trace: AddressTrace) -> None:
        """Adopt an externally supplied trace (e.g. from a stage store).

        First-wins: an already-cached trace for the same content key is
        kept — both encode the same addresses, so either is correct.
        """
        self._addresses.setdefault((trace.loop_fp, trace.max_points), trace)

    def geometry_trace(
        self, loop: Loop, max_points: int, cache: CacheConfig
    ) -> GeometryTrace:
        key = (
            loop_fingerprint(loop),
            max_points,
            cache.line_size,
            cache.n_sets,
        )
        geometry = self._geometries.get(key)
        if geometry is None:
            geometry = GeometryTrace.build(
                self.address_trace(loop, max_points),
                cache.line_size,
                cache.n_sets,
            )
            self._geometries[key] = geometry
            self.geometry_builds += 1
        return geometry
