"""Steady-state detection and replay subsystem.

Two detectors behind one :class:`~repro.steady.base.SteadyStateDetector`
protocol — signature capture, period detection, exactness proof,
counters-delta replay:

* :class:`~repro.steady.entry.EntrySteadyDetector` memoizes repeated
  *loop entries* (``NTIMES`` granularity);
* :class:`~repro.steady.iteration.IterationSteadyDetector` fast-forwards
  repeated *iterations* of the modulo pipeline inside a single entry —
  the detector that covers ``NTIMES=1`` streaming kernels.

Both are bit-identical to exact simulation by construction and by test
(``tests/test_simulator_steady_state.py``,
``tests/test_steady_iteration.py``).
"""

from .base import (
    STEADY_MODES,
    IterationSteadyState,
    Replay,
    SteadyState,
    SteadyStateDetector,
    SteadyStateReport,
    resolve_steady_mode,
    validate_steady_mode,
)
from .entry import EntrySteadyDetector
from .iteration import IterationSteadyDetector

__all__ = [
    "STEADY_MODES",
    "EntrySteadyDetector",
    "IterationSteadyDetector",
    "IterationSteadyState",
    "Replay",
    "SteadyState",
    "SteadyStateDetector",
    "SteadyStateReport",
    "resolve_steady_mode",
    "validate_steady_mode",
]
