"""The distributed memory system: timing model tying caches, MSHRs,
buses, coherence and main memory together.

Implements the access-latency formula of Section 2.2:

    LAT = LAT_cache                                  (always)
        + MISS_LC * ( NC_waiting_entry               (MSHR full)
                    + NC_waiting_bus                 (bus arbitration)
                    + LAT_memory_bus                 (transfer)
                    + (remote-hit ? LAT_cache : LAT_main_memory) )

with two refinements the paper also models: a bus can be busy with
coherence traffic, and a main-memory access completes earlier when an
earlier miss already started loading the same line (in-flight merging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd as _gcd
from typing import Dict, List, Optional, Tuple

from ..machine.config import MachineConfig
from .cache import CacheLine, ClusterCache, LineState
from .coherence import BusOp, MSIController
from .membus import MemoryBusPool

__all__ = ["AccessLevel", "AccessResult", "MemoryStats", "DistributedMemorySystem"]

# Module-level aliases keep the enum descriptor lookups out of
# access_batch's per-access loop.
_MODIFIED = LineState.MODIFIED
_SHARED = LineState.SHARED
_INVALID = LineState.INVALID


class AccessLevel:
    """Where an access was satisfied (string constants, not an enum, so
    results aggregate cheaply into dictionaries)."""

    LOCAL = "local"
    REMOTE = "remote"
    MAIN = "main"


@dataclass(frozen=True)
class AccessResult:
    """Timing outcome of one load/store."""

    ready_time: int  # when the data is available to consumers
    level: str  # AccessLevel constant
    mshr_wait: int = 0
    bus_wait: int = 0
    merged: bool = False  # satisfied by an in-flight fill


@dataclass
class MemoryStats:
    """Aggregate counters for one simulation run."""

    accesses: int = 0
    local_hits: int = 0
    remote_hits: int = 0
    main_memory: int = 0
    merged: int = 0
    mshr_wait_cycles: int = 0
    bus_wait_cycles: int = 0
    coherence_upgrades: int = 0
    writebacks: int = 0

    @property
    def local_miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.local_hits / self.accesses

    def as_dict(self) -> Dict[str, float]:
        return {
            "accesses": self.accesses,
            "local_hits": self.local_hits,
            "remote_hits": self.remote_hits,
            "main_memory": self.main_memory,
            "merged": self.merged,
            "mshr_wait_cycles": self.mshr_wait_cycles,
            "bus_wait_cycles": self.bus_wait_cycles,
            "coherence_upgrades": self.coherence_upgrades,
            "writebacks": self.writebacks,
            "local_miss_ratio": self.local_miss_ratio,
        }


class DistributedMemorySystem:
    """N local caches + shared memory buses + main memory."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine
        self.caches = [
            ClusterCache(cluster.cache, index)
            for index, cluster in enumerate(machine.clusters)
        ]
        self.bus = MemoryBusPool(machine.memory_bus)
        self.msi = MSIController(self.caches)
        self.stats = MemoryStats()
        # line address -> completion time of an in-flight main-memory fill
        self._main_in_flight: Dict[int, int] = {}
        # Lazily built reference tables for access_batch (no state of its
        # own: every entry aliases a component above).  Invalidated
        # whenever translate()/reset() rebind the underlying containers.
        self._batch_tables: Optional[Tuple] = None

    # ------------------------------------------------------------------
    def access(self, cluster: int, address: int, is_store: bool, time: int) -> AccessResult:
        """Perform one memory access issued by ``cluster`` at ``time``."""
        cache = self.caches[cluster]
        config = cache.config
        line_addr = config.line_address(address)
        self.stats.accesses += 1
        hit_latency = config.hit_latency

        # A line whose fill is still in flight is present in the tags but
        # its data has not arrived; dependent accesses complete no earlier
        # than the fill (secondary misses merge into the MSHR entry).
        # Boundary audit (PR 5): ``<=`` is the correct comparison — the
        # model-wide convention is that anything completing at cycle T is
        # available to a request issued *at* T (consumer stalls require
        # ``operand_ready > issue``, MSHR releases at T satisfy a T
        # allocation, and the supplier/main merge checks below mirror it
        # with ``> bus_grant``).  tests/test_memory_hierarchy.py pins
        # every one of these boundary cycles.
        pending = cache.in_flight.get(line_addr)
        if pending is not None and pending <= time:
            pending = None

        if cache.is_hit(address, is_store):
            cache.touch(address)
            self.stats.local_hits += 1
            ready = time + hit_latency
            if pending is not None:
                self.stats.merged += 1
                return AccessResult(
                    ready_time=max(ready, pending),
                    level=AccessLevel.LOCAL,
                    merged=True,
                )
            return AccessResult(ready_time=ready, level=AccessLevel.LOCAL)

        # Write hit on a Shared line: upgrade (BusUpgr), no data transfer.
        if is_store and cache.state_of(address) is LineState.SHARED:
            request = time + hit_latency
            if pending is not None and pending > request:
                request = pending
            grant = self.bus.acquire(request)
            bus_wait = grant - request
            self.msi.snoop(cluster, line_addr, BusOp.BUS_UPGR)
            cache.set_state(address, LineState.MODIFIED)
            self.stats.local_hits += 1  # data was local; only permission moved
            self.stats.coherence_upgrades += 1
            self.stats.bus_wait_cycles += bus_wait
            return AccessResult(
                ready_time=grant + self.bus.latency,
                level=AccessLevel.LOCAL,
                bus_wait=bus_wait,
            )

        detect = time + hit_latency  # the local lookup that discovers the miss
        mshr_grant = cache.mshr.allocate(detect)
        mshr_wait = mshr_grant - detect
        bus_grant = self.bus.acquire(mshr_grant)
        bus_wait = bus_grant - mshr_grant
        transfer_done = bus_grant + self.bus.latency

        op = BusOp.BUS_RDX if is_store else BusOp.BUS_RD
        snoop = self.msi.snoop(cluster, line_addr, op)

        # A remote holder whose own fill has not completed cannot supply
        # the data yet; such requests resolve through the main-memory path
        # below, merging with the fill already in flight.
        supplier = snoop.supplier
        if supplier is not None:
            supplier_pending = self.caches[supplier].in_flight.get(line_addr)
            if supplier_pending is not None and supplier_pending > bus_grant:
                supplier = None

        merged = False
        if supplier is not None:
            # Remote cache supplies the line: one remote-cache access.
            remote_latency = self.caches[supplier].config.hit_latency
            complete = transfer_done + remote_latency
            level = AccessLevel.REMOTE
            self.stats.remote_hits += 1
        else:
            # Main memory, with in-flight merging across clusters.
            pending = self._main_in_flight.get(line_addr)
            full = transfer_done + self.machine.main_memory_latency
            if pending is not None and pending > bus_grant:
                complete = max(pending, transfer_done)
                self.stats.merged += 1
                merged = True
            else:
                complete = full
            self._main_in_flight[line_addr] = complete
            level = AccessLevel.MAIN
            self.stats.main_memory += 1

        new_state = LineState.MODIFIED if is_store else LineState.SHARED
        victim = cache.fill(line_addr, new_state)
        if victim is not None and victim[1] is LineState.MODIFIED:
            # Dirty eviction: the writeback occupies a bus slot later but
            # does not delay the requester.
            self.bus.acquire(complete)
            self.stats.writebacks += 1
        if snoop.writeback:
            self.stats.writebacks += 1

        cache.mshr.hold(complete)
        cache.in_flight[line_addr] = complete
        self.stats.mshr_wait_cycles += mshr_wait
        self.stats.bus_wait_cycles += bus_wait
        return AccessResult(
            ready_time=complete,
            level=level,
            mshr_wait=mshr_wait,
            bus_wait=bus_wait,
            merged=merged,
        )

    # ------------------------------------------------------------------
    def access_batch(
        self,
        clusters: List[int],
        addresses: List[int],
        stores: List[bool],
        nominals: List[int],
        time_base: int,
        slacks: List[int],
        ready_out: List[Optional[int]],
        start: int,
        end: int,
    ) -> int:
        """Run accesses ``start..end`` of the parallel request lists.

        The batched counterpart of :meth:`access`, built for the
        vectorized simulate engine: one Python call resolves a whole run
        of accesses, with every per-access lookup (cache geometry, tag
        scan, MSHR, bus, snoop) inlined and all statistics accumulated
        locally and flushed once.  Semantics are line-for-line those of
        :meth:`access` — the scalar method stays the reference, and the
        equivalence suite proves bit-identical results *and* state.

        Access ``i`` issues at ``time_base + nominals[i]``; issue times
        must be non-decreasing across the batch (the caller's stall
        offset is frozen at ``time_base`` — that is what makes the batch
        valid).  ``ready_out[i]`` receives each access's ready time.

        Returns the number of accesses consumed.  The batch stops early
        — after recording the access — when an access's ready time
        exceeds ``issue + slacks[i]``: such a result may stall a
        downstream consumer, which changes later issue times, so the
        caller must re-anchor before continuing.
        """
        stats = self.stats
        bus = self.bus
        msi = self.msi
        main_in_flight = self._main_in_flight

        tables = self._batch_tables
        if tables is None:
            caches = self.caches
            tables = self._batch_tables = (
                [cache._sets for cache in caches],
                [cache.in_flight for cache in caches],
                [cache.mshr for cache in caches],
                [cache.config.line_size for cache in caches],
                [cache.config.n_sets for cache in caches],
                [cache.config.hit_latency for cache in caches],
                [cache.config.associativity for cache in caches],
                bus._busy_until,  # None when unbounded
                bus.config.latency,
                self.machine.main_memory_latency,
                len(caches),
                [cache._dirty_sets for cache in caches],
            )
        (
            sets_by, inflight_by, mshr_by, ls_by, nsets_by, hl_by,
            assoc_by, bus_busy, bus_latency, main_latency, n_caches,
            dirty_by,
        ) = tables
        modified = _MODIFIED
        shared = _SHARED
        invalid = _INVALID

        # Locally accumulated statistics, flushed before every return.
        d_accesses = d_local = d_remote = d_main = d_merged = 0
        d_mshr_wait = d_bus_wait = d_upgrades = d_writebacks = 0
        d_bus_txn = d_bus_busy = d_bus_pool_wait = 0
        d_inval = d_interv = d_msi_wb = 0

        index = start
        consumed = 0
        while index < end:
            cluster = clusters[index]
            address = addresses[index]
            is_store = stores[index]
            time = time_base + nominals[index]
            line_size = ls_by[cluster]
            n_sets = nsets_by[cluster]
            hit_latency = hl_by[cluster]
            line_index = address // line_size
            set_index = line_index % n_sets
            tag = line_index // n_sets
            line_addr = address - address % line_size
            in_flight = inflight_by[cluster]
            d_accesses += 1

            pending = in_flight.get(line_addr)
            if pending is not None and pending <= time:
                pending = None

            ways = sets_by[cluster].get(set_index)
            found = None
            if ways is not None:
                for line in ways:
                    if line.tag == tag and line.state is not invalid:
                        found = line
                        break

            state = found.state if found is not None else invalid
            if (found is not None) and (
                state is modified or (not is_store and state is shared)
            ):
                # Local hit (same condition as ClusterCache.is_hit).
                if ways[-1] is not found:
                    ways.append(ways.pop(ways.index(found)))  # LRU touch
                    dirty_by[cluster].add(set_index)
                d_local += 1
                ready = time + hit_latency
                if pending is not None:
                    d_merged += 1
                    if pending > ready:
                        ready = pending
                ready_out[index] = ready
                index += 1
                consumed += 1
                if ready > time + slacks[index - 1]:
                    break
                continue

            if is_store and state is shared:
                # Write hit on a Shared line: upgrade, no data transfer.
                request = time + hit_latency
                if pending is not None and pending > request:
                    request = pending
                d_bus_txn += 1
                d_bus_busy += bus_latency
                if bus_busy is None:
                    grant = request
                else:
                    best = 0
                    best_time = bus_busy[0]
                    for b in range(1, len(bus_busy)):
                        if bus_busy[b] < best_time:
                            best = b
                            best_time = bus_busy[b]
                    grant = request if request > best_time else best_time
                    bus_busy[best] = grant + bus_latency
                    d_bus_pool_wait += grant - request
                bus_wait = grant - request
                # Snoop BusUpgr: invalidate every remote copy.
                supplier = None
                for other in range(n_caches):
                    if other == cluster:
                        continue
                    o_ls = ls_by[other]
                    o_line_index = line_addr // o_ls
                    o_set = o_line_index % nsets_by[other]
                    o_tag = o_line_index // nsets_by[other]
                    o_ways = sets_by[other].get(o_set)
                    if not o_ways:
                        continue
                    for o_line in o_ways:
                        if o_line.tag == o_tag and o_line.state is not invalid:
                            if o_line.state is modified:
                                d_msi_wb += 1
                                if supplier is None:
                                    supplier = other
                            o_line.state = invalid
                            d_inval += 1
                            dirty_by[other].add(o_set)
                            break
                if supplier is not None:
                    d_interv += 1
                found.state = modified
                dirty_by[cluster].add(set_index)
                d_local += 1  # data was local; only permission moved
                d_upgrades += 1
                d_bus_wait += bus_wait
                ready = grant + bus_latency
                ready_out[index] = ready
                index += 1
                consumed += 1
                if ready > time + slacks[index - 1]:
                    break
                continue

            # Miss: MSHR allocation, bus, snoop, fill — the full path.
            detect = time + hit_latency
            mshr = mshr_by[cluster]
            in_use = sorted(
                t for t in mshr._release_times if t > detect
            )
            mshr._release_times = in_use
            if len(in_use) < mshr.n_entries:
                mshr_grant = detect
            else:
                mshr_grant = in_use[len(in_use) - mshr.n_entries]
            mshr_wait = mshr_grant - detect
            mshr.total_wait_cycles += mshr_wait

            d_bus_txn += 1
            d_bus_busy += bus_latency
            if bus_busy is None:
                bus_grant = mshr_grant
            else:
                best = 0
                best_time = bus_busy[0]
                for b in range(1, len(bus_busy)):
                    if bus_busy[b] < best_time:
                        best = b
                        best_time = bus_busy[b]
                bus_grant = mshr_grant if mshr_grant > best_time else best_time
                bus_busy[best] = bus_grant + bus_latency
                d_bus_pool_wait += bus_grant - mshr_grant
            bus_wait = bus_grant - mshr_grant
            transfer_done = bus_grant + bus_latency

            # Snoop BusRd / BusRdX across the other caches.
            supplier = None
            snoop_writeback = False
            for other in range(n_caches):
                if other == cluster:
                    continue
                o_ls = ls_by[other]
                o_line_index = line_addr // o_ls
                o_set = o_line_index % nsets_by[other]
                o_tag = o_line_index // nsets_by[other]
                o_ways = sets_by[other].get(o_set)
                if not o_ways:
                    continue
                for o_line in o_ways:
                    if o_line.tag == o_tag and o_line.state is not invalid:
                        if not is_store:  # BUS_RD
                            if supplier is None:
                                supplier = other
                            if o_line.state is modified:
                                snoop_writeback = True
                                d_msi_wb += 1
                            o_line.state = shared
                        else:  # BUS_RDX
                            if o_line.state is modified:
                                snoop_writeback = True
                                d_msi_wb += 1
                                if supplier is None:
                                    supplier = other
                            elif supplier is None:
                                supplier = other
                            o_line.state = invalid
                            d_inval += 1
                        dirty_by[other].add(o_set)
                        break
            if supplier is not None:
                d_interv += 1
                supplier_pending = inflight_by[supplier].get(line_addr)
                if (
                    supplier_pending is not None
                    and supplier_pending > bus_grant
                ):
                    supplier = None

            if supplier is not None:
                complete = transfer_done + hl_by[supplier]
                d_remote += 1
            else:
                pending_main = main_in_flight.get(line_addr)
                if pending_main is not None and pending_main > bus_grant:
                    complete = (
                        pending_main
                        if pending_main > transfer_done
                        else transfer_done
                    )
                    d_merged += 1
                else:
                    complete = transfer_done + main_latency
                main_in_flight[line_addr] = complete
                d_main += 1

            # Fill (inline ClusterCache.fill + the dirty-victim bus slot).
            new_state = modified if is_store else shared
            dirty_by[cluster].add(set_index)
            cache_sets = sets_by[cluster]
            ways = cache_sets.get(set_index)
            if ways is None:
                ways = cache_sets.setdefault(set_index, [])
            revived = None
            for line in ways:
                if line.tag == tag:
                    revived = line
                    break
            if revived is not None:
                revived.state = new_state
                ways.append(ways.pop(ways.index(revived)))  # touch
            else:
                live = [l for l in ways if l.state is not invalid]
                if len(live) >= assoc_by[cluster]:
                    evicted = live[0]
                    ways.remove(evicted)
                    if evicted.state is modified:
                        # Dirty eviction: writeback occupies a bus slot
                        # later but does not delay the requester.
                        d_bus_txn += 1
                        d_bus_busy += bus_latency
                        if bus_busy is not None:
                            best = 0
                            best_time = bus_busy[0]
                            for b in range(1, len(bus_busy)):
                                if bus_busy[b] < best_time:
                                    best = b
                                    best_time = bus_busy[b]
                            grant = (
                                complete
                                if complete > best_time
                                else best_time
                            )
                            bus_busy[best] = grant + bus_latency
                            d_bus_pool_wait += grant - complete
                        d_writebacks += 1
                ways.append(CacheLine(tag=tag, state=new_state))
            if snoop_writeback:
                d_writebacks += 1

            mshr._release_times.append(complete)
            if len(mshr._release_times) > mshr.peak_occupancy:
                mshr.peak_occupancy = len(mshr._release_times)
            in_flight[line_addr] = complete
            d_mshr_wait += mshr_wait
            d_bus_wait += bus_wait
            ready_out[index] = complete
            index += 1
            consumed += 1
            if complete > time + slacks[index - 1]:
                break

        stats.accesses += d_accesses
        stats.local_hits += d_local
        stats.remote_hits += d_remote
        stats.main_memory += d_main
        stats.merged += d_merged
        stats.mshr_wait_cycles += d_mshr_wait
        stats.bus_wait_cycles += d_bus_wait
        stats.coherence_upgrades += d_upgrades
        stats.writebacks += d_writebacks
        bus.total_transactions += d_bus_txn
        bus.total_busy_cycles += d_bus_busy
        bus.total_wait_cycles += d_bus_pool_wait
        msi.n_invalidations += d_inval
        msi.n_interventions += d_interv
        msi.n_writebacks += d_msi_wb
        return consumed

    # ------------------------------------------------------------------
    # Steady-state support: translation-normalized signatures + counters
    # ------------------------------------------------------------------
    def signature_shift_unit(self) -> int:
        """Address-shift granularity under which signatures are exact.

        A uniform shift of the whole address stream commutes with line
        and set mapping only when it is a multiple of every cache's line
        size; shifts passed to :meth:`state_signature` must be multiples
        of this value.
        """
        unit = 1
        for cache in self.caches:
            line = cache.config.line_size
            unit = unit * line // _gcd(unit, line)
        return unit

    def state_signature(
        self,
        base: int,
        addr_shift: int = 0,
        invalid_out: Optional[List[int]] = None,
        live_prune: Optional[object] = None,
        live_out: Optional[List[Tuple[int, int, str]]] = None,
    ) -> Tuple[object, ...]:
        """Hashable canonical form of all timing-relevant state.

        Two memory systems with equal signatures behave identically on
        any future access stream issued at times ``>= base`` whose
        addresses differ by ``addr_shift``: tags/MSI/LRU state, pending
        fills, MSHR occupancy, bus horizons and in-flight main-memory
        fills are all covered, each normalized to ``base``-relative time
        and shifted down by ``addr_shift`` (which must be a multiple of
        :meth:`signature_shift_unit`).  Aggregate statistics are *not*
        part of the signature — they record the past, not the future.

        ``invalid_out`` (a list) strips INVALID cache lines from the
        signature, collecting ``(cluster index, absolute line address)``
        pairs instead — the cluster index preserves cache identity, so
        same-address scars in different caches never collapse or cancel
        in a caller's set arithmetic; the behavioural guarantee then
        holds only for streams that never touch those addresses (see
        :meth:`~repro.memory.cache.ClusterCache.state_signature`).

        ``live_prune``/``live_out`` extend the same escape hatch to live
        (M/S) lines under the stronger per-line proof documented on
        :meth:`~repro.memory.cache.ClusterCache.state_signature`: the
        predicate must certify the line's address is unreachable by any
        cluster *and* its set is unreachable by its own cluster for the
        whole remaining access stream.
        """
        if invalid_out is None and live_prune is None:
            cache_signatures = tuple(
                cache.state_signature(base, addr_shift)
                for cache in self.caches
            )
        else:
            signatures = []
            for index, cache in enumerate(self.caches):
                collected: List[int] = []
                signatures.append(
                    cache.state_signature(
                        base,
                        addr_shift,
                        collected if invalid_out is not None else None,
                        live_prune,
                        live_out,
                    )
                )
                if invalid_out is not None:
                    invalid_out.extend(
                        (index, address) for address in collected
                    )
            cache_signatures = tuple(signatures)
        main_in_flight = self._main_in_flight
        if main_in_flight:
            # Same pruning as the per-cache fast path: completions at or
            # before ``base`` can never merge with a future miss, so the
            # probe drops them in place (preserving batch-table aliases)
            # instead of re-filtering an ever-growing dict every probe.
            expired = [a for a, t in main_in_flight.items() if t <= base]
            for address in expired:
                del main_in_flight[address]
        return (
            cache_signatures,
            self.bus.state_signature(base),
            tuple(
                sorted(
                    (address - addr_shift, t - base)
                    for address, t in main_in_flight.items()
                )
            ),
        )

    def counters(self) -> Dict[str, int]:
        """Snapshot of every additive statistic (for delta replay)."""
        values = {
            "accesses": self.stats.accesses,
            "local_hits": self.stats.local_hits,
            "remote_hits": self.stats.remote_hits,
            "main_memory": self.stats.main_memory,
            "merged": self.stats.merged,
            "mshr_wait_cycles": self.stats.mshr_wait_cycles,
            "bus_wait_cycles": self.stats.bus_wait_cycles,
            "coherence_upgrades": self.stats.coherence_upgrades,
            "writebacks": self.stats.writebacks,
            "bus_total_wait_cycles": self.bus.total_wait_cycles,
            "bus_total_transactions": self.bus.total_transactions,
            "bus_total_busy_cycles": self.bus.total_busy_cycles,
            "msi_invalidations": self.msi.n_invalidations,
            "msi_interventions": self.msi.n_interventions,
            "msi_writebacks": self.msi.n_writebacks,
        }
        for index, cache in enumerate(self.caches):
            values[f"mshr{index}_wait_cycles"] = cache.mshr.total_wait_cycles
        return values

    def translate(self, time_delta: int, addr_shift: int) -> None:
        """Physically shift all live state by ``(time_delta, addr_shift)``.

        The concrete counterpart of :meth:`state_signature`'s
        normalization: after translation, an access stream issued
        ``time_delta`` cycles later at addresses ``addr_shift`` bytes
        higher behaves exactly as the original stream would have before.
        The steady-state machinery uses this to re-anchor the memory
        system after fast-forwarding a detected periodic phase, so that
        whatever executes next (the tail of the loop entry, or further
        entries) sees the state full simulation would have produced.
        ``addr_shift`` must be a multiple of
        :meth:`signature_shift_unit`; aggregate statistics are not
        touched (replayed deltas are applied via :meth:`add_counters`).
        """
        unit = self.signature_shift_unit()
        if addr_shift % unit != 0:
            raise ValueError(
                f"addr_shift {addr_shift} is not a multiple of the "
                f"signature shift unit {unit}"
            )
        for cache in self.caches:
            cache.translate(time_delta, addr_shift)
        self.bus.translate(time_delta)
        if addr_shift or time_delta:
            self._main_in_flight = {
                address + addr_shift: t + time_delta
                for address, t in self._main_in_flight.items()
            }
        self._invalidate_derived()

    def _invalidate_derived(self) -> None:
        """Drop every lazily derived view of the live state, in one place.

        Two such views exist: access_batch's reference tables (which
        alias containers that :meth:`translate`/:meth:`reset` rebind)
        and the per-set signature fragments cached by each
        :class:`ClusterCache`.  Any operation that rewrites state behind
        the mutator hooks — translation, reset, warm-state restore —
        must funnel through here so neither view can go stale.
        """
        self._batch_tables = None
        for cache in self.caches:
            cache.invalidate_fragments()

    def counters_tuple(self) -> Tuple[int, ...]:
        """Fixed-order tuple of the same statistics as :meth:`counters`.

        The iteration-level steady-state detector snapshots counters at
        every modulo-pipeline group boundary; building a keyed dict there
        would dominate the cost it is trying to save.  The order matches
        :meth:`counters` insertion order (asserted by the signature
        coverage guardrail test).
        """
        stats = self.stats
        bus = self.bus
        msi = self.msi
        return (
            stats.accesses,
            stats.local_hits,
            stats.remote_hits,
            stats.main_memory,
            stats.merged,
            stats.mshr_wait_cycles,
            stats.bus_wait_cycles,
            stats.coherence_upgrades,
            stats.writebacks,
            bus.total_wait_cycles,
            bus.total_transactions,
            bus.total_busy_cycles,
            msi.n_invalidations,
            msi.n_interventions,
            msi.n_writebacks,
        ) + tuple(cache.mshr.total_wait_cycles for cache in self.caches)

    def add_counters(self, delta: Dict[str, int], times: int = 1) -> None:
        """Apply ``times`` repetitions of a counter delta.

        The inverse of two :meth:`counters` snapshots: replaying ``n``
        memoized steady-state entries adds ``n`` deltas so aggregate
        statistics match a full simulation exactly.  ``peak_occupancy``
        is deliberately untouched — it is a maximum, and a replayed
        steady-state entry repeats behaviour already observed.
        """
        stats = self.stats
        stats.accesses += delta["accesses"] * times
        stats.local_hits += delta["local_hits"] * times
        stats.remote_hits += delta["remote_hits"] * times
        stats.main_memory += delta["main_memory"] * times
        stats.merged += delta["merged"] * times
        stats.mshr_wait_cycles += delta["mshr_wait_cycles"] * times
        stats.bus_wait_cycles += delta["bus_wait_cycles"] * times
        stats.coherence_upgrades += delta["coherence_upgrades"] * times
        stats.writebacks += delta["writebacks"] * times
        self.bus.total_wait_cycles += delta["bus_total_wait_cycles"] * times
        self.bus.total_transactions += delta["bus_total_transactions"] * times
        self.bus.total_busy_cycles += delta["bus_total_busy_cycles"] * times
        self.msi.n_invalidations += delta["msi_invalidations"] * times
        self.msi.n_interventions += delta["msi_interventions"] * times
        self.msi.n_writebacks += delta["msi_writebacks"] * times
        for index, cache in enumerate(self.caches):
            cache.mshr.total_wait_cycles += (
                delta[f"mshr{index}_wait_cycles"] * times
            )

    # ------------------------------------------------------------------
    def check_coherence(self, addresses: List[int]) -> None:
        """Assert MSI invariants for a set of line addresses (tests)."""
        for address in addresses:
            self.msi.check_invariants(address)

    def reset(self) -> None:
        """Clear all cache state and statistics (fresh run)."""
        for cache in self.caches:
            cache.clear()
            cache.mshr.reset_stats()
        self.bus.reset_stats()
        self.msi.reset_stats()
        self.stats = MemoryStats()
        self._main_in_flight.clear()
        self._invalidate_derived()

    # ------------------------------------------------------------------
    # Warm-state support: deep, picklable state snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep, picklable copy of all live state *and* statistics.

        The warm-state store content-addresses these snapshots so that
        cells sharing a schedule skip re-simulating warm-up; restoring
        one must therefore reproduce the source system bit for bit —
        including aggregate counters, which the snapshotted run had
        already accumulated by the capture point.  Only plain ints,
        strings, tuples, dicts and lists appear in the result, so it
        pickles compactly and loads without importing simulator state.
        """
        bus = self.bus
        return {
            "caches": [
                {
                    "sets": {
                        index: [(line.tag, line.state.value) for line in ways]
                        for index, ways in cache._sets.items()
                    },
                    "in_flight": dict(cache.in_flight),
                    "mshr": (
                        list(cache.mshr._release_times),
                        cache.mshr.total_wait_cycles,
                        cache.mshr.peak_occupancy,
                    ),
                }
                for cache in self.caches
            ],
            "bus": (
                None if bus._busy_until is None else list(bus._busy_until),
                bus.total_wait_cycles,
                bus.total_transactions,
                bus.total_busy_cycles,
            ),
            "msi": (
                self.msi.n_invalidations,
                self.msi.n_interventions,
                self.msi.n_writebacks,
            ),
            "stats": {
                "accesses": self.stats.accesses,
                "local_hits": self.stats.local_hits,
                "remote_hits": self.stats.remote_hits,
                "main_memory": self.stats.main_memory,
                "merged": self.stats.merged,
                "mshr_wait_cycles": self.stats.mshr_wait_cycles,
                "bus_wait_cycles": self.stats.bus_wait_cycles,
                "coherence_upgrades": self.stats.coherence_upgrades,
                "writebacks": self.stats.writebacks,
            },
            "main_in_flight": dict(self._main_in_flight),
        }

    def restore(self, snap: dict) -> None:
        """Rebuild the exact state captured by :meth:`snapshot`.

        Valid only on a system built from the same machine
        configuration (the warm-state store keys snapshots so this
        holds by construction).  Dict insertion order is part of the
        copy, so signatures and batch walks iterate identically to the
        source system's.
        """
        for cache, data in zip(self.caches, snap["caches"]):
            cache._sets = {
                index: [
                    CacheLine(tag=tag, state=LineState(state))
                    for tag, state in ways
                ]
                for index, ways in data["sets"].items()
            }
            cache.in_flight = dict(data["in_flight"])
            release_times, wait_cycles, peak = data["mshr"]
            cache.mshr._release_times = list(release_times)
            cache.mshr.total_wait_cycles = wait_cycles
            cache.mshr.peak_occupancy = peak
        busy, bus_wait, bus_txn, bus_busy = snap["bus"]
        self.bus._busy_until = None if busy is None else list(busy)
        self.bus.total_wait_cycles = bus_wait
        self.bus.total_transactions = bus_txn
        self.bus.total_busy_cycles = bus_busy
        (
            self.msi.n_invalidations,
            self.msi.n_interventions,
            self.msi.n_writebacks,
        ) = snap["msi"]
        self.stats = MemoryStats(**snap["stats"])
        self._main_in_flight = dict(snap["main_in_flight"])
        self._invalidate_derived()
