"""Pluggable job-record persistence.

The service stores one JSON-serializable record per job (spec, state,
telemetry, result payload, export records).  :class:`ResultBackend` is
the seam that keeps laptop runs zero-dependency while allowing a real
deployment to swap in a shared store: the in-proc :class:`MemoryBackend`
is the default, :class:`DiskBackend` persists records as JSON files so
jobs survive a restart, and an external store only has to implement the
same four methods.

Records are plain dicts of JSON types — by construction (the
:class:`~repro.service.jobs.JobManager` serializes results through
``RunResult.canonical()`` / the figure payload before they get here), so
every backend can persist them without pickling live objects.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "BACKEND_KINDS",
    "ResultBackend",
    "MemoryBackend",
    "DiskBackend",
    "make_backend",
]


class ResultBackend:
    """What the service needs from a job store (the protocol).

    Implementations must tolerate concurrent calls from the job worker
    threads and the event loop; both built-ins rely on single dict/file
    operations being atomic.
    """

    def save(self, record: Dict[str, object]) -> None:
        """Insert or replace the record (keyed by ``record['id']``)."""
        raise NotImplementedError

    def load(self, job_id: str) -> Optional[Dict[str, object]]:
        """The record for ``job_id``, or ``None``."""
        raise NotImplementedError

    def job_ids(self) -> List[str]:
        """Every known job id, in insertion (creation) order."""
        raise NotImplementedError

    def delete(self, job_id: str) -> bool:
        """Remove one record; ``True`` if it existed."""
        raise NotImplementedError


class MemoryBackend(ResultBackend):
    """The default in-proc store: a dict, nothing survives the process."""

    def __init__(self) -> None:
        self._records: Dict[str, Dict[str, object]] = {}

    def save(self, record: Dict[str, object]) -> None:
        self._records[str(record["id"])] = record

    def load(self, job_id: str) -> Optional[Dict[str, object]]:
        return self._records.get(job_id)

    def job_ids(self) -> List[str]:
        return list(self._records)

    def delete(self, job_id: str) -> bool:
        return self._records.pop(job_id, None) is not None


class DiskBackend(ResultBackend):
    """JSON-file-per-job persistence under one directory.

    Writes are atomic (unique temp name + rename, the repo-wide cache
    convention) and corrupt or foreign files are skipped as missing,
    never raised — disk rot must not take the service down.
    """

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.json"

    def save(self, record: Dict[str, object]) -> None:
        path = self._path(str(record["id"]))
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}")
        tmp.write_text(json.dumps(record, sort_keys=True))
        tmp.replace(path)

    def load(self, job_id: str) -> Optional[Dict[str, object]]:
        path = self._path(job_id)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
            if not isinstance(record, dict) or record.get("id") != job_id:
                raise ValueError("foreign job record")
            return record
        except Exception:
            return None

    def job_ids(self) -> List[str]:
        records = []
        for path in sorted(self.directory.glob("*.json")):
            record = self.load(path.stem)
            if record is not None:
                records.append(record)
        records.sort(key=lambda record: record.get("sequence", 0))
        return [str(record["id"]) for record in records]

    def delete(self, job_id: str) -> bool:
        path = self._path(job_id)
        try:
            path.unlink()
            return True
        except OSError:
            return False


BACKEND_KINDS = ("memory", "disk")


def make_backend(
    kind: str, directory: Optional[os.PathLike] = None
) -> ResultBackend:
    """Build a backend by name (the ``repro serve --backend`` choices)."""
    if kind == "memory":
        return MemoryBackend()
    if kind == "disk":
        if directory is None:
            raise ValueError("the disk backend needs a directory")
        return DiskBackend(directory)
    raise ValueError(
        f"unknown backend {kind!r}; choose from {BACKEND_KINDS}"
    )
