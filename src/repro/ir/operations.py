"""Operation model for the loop intermediate representation.

Every node scheduled by the modulo scheduler is an :class:`Operation`.
Operations belong to an :class:`OpClass` (what the operation computes) and
each class executes on exactly one :class:`FUType` (which functional-unit
kind of a cluster can issue it).  The mapping mirrors the three FU kinds of
the multiVLIWprocessor: integer arithmetic, floating-point arithmetic and
memory access (Section 2.1 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["FUType", "OpClass", "Operation"]


class FUType(enum.Enum):
    """Functional-unit kinds available inside a cluster."""

    INTEGER = "integer"
    FP = "fp"
    MEMORY = "memory"


class OpClass(enum.Enum):
    """Semantic class of an operation; determines FU kind and latency."""

    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    ICMP = "icmp"
    SHIFT = "shift"
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    LOAD = "load"
    STORE = "store"

    @property
    def fu_type(self) -> FUType:
        """Functional-unit kind that issues this operation class."""
        return _FU_OF_CLASS[self]

    @property
    def is_memory(self) -> bool:
        """True for loads and stores (the RMCA-special-cased operations)."""
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def writes_register(self) -> bool:
        """True when the operation produces a register value."""
        return self is not OpClass.STORE


_FU_OF_CLASS = {
    OpClass.IADD: FUType.INTEGER,
    OpClass.ISUB: FUType.INTEGER,
    OpClass.IMUL: FUType.INTEGER,
    OpClass.ICMP: FUType.INTEGER,
    OpClass.SHIFT: FUType.INTEGER,
    OpClass.FADD: FUType.FP,
    OpClass.FSUB: FUType.FP,
    OpClass.FMUL: FUType.FP,
    OpClass.FDIV: FUType.FP,
    OpClass.FNEG: FUType.FP,
    OpClass.LOAD: FUType.MEMORY,
    OpClass.STORE: FUType.MEMORY,
}


@dataclass(frozen=True)
class Operation:
    """One operation of a loop body.

    Parameters
    ----------
    name:
        Unique identifier within the loop (``"ld1"``, ``"mul2"``...).
    opclass:
        Semantic class; fixes the FU kind and (via the machine model) the
        latency.
    dest:
        Name of the virtual register written, or ``None`` for stores.
    srcs:
        Names of the virtual registers read (empty for address-invariant
        loads whose address depends only on induction variables).
    ref_index:
        Index into the owning loop's memory-reference table for memory
        operations; ``None`` otherwise.
    """

    name: str
    opclass: OpClass
    dest: Optional[str] = None
    srcs: Tuple[str, ...] = field(default=())
    ref_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.opclass.is_memory and self.ref_index is None:
            raise ValueError(
                f"memory operation {self.name!r} requires a ref_index"
            )
        if not self.opclass.is_memory and self.ref_index is not None:
            raise ValueError(
                f"non-memory operation {self.name!r} cannot carry a ref_index"
            )
        if self.opclass is OpClass.STORE and self.dest is not None:
            raise ValueError(f"store {self.name!r} cannot write a register")

    @property
    def fu_type(self) -> FUType:
        """Functional-unit kind that issues this operation."""
        return self.opclass.fu_type

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.opclass.is_memory

    @property
    def is_load(self) -> bool:
        """True for load operations."""
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for store operations."""
        return self.opclass is OpClass.STORE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(self.srcs)
        head = f"{self.dest} = " if self.dest else ""
        return f"{head}{self.opclass.value}({args}) [{self.name}]"
