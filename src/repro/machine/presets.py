"""Table 1 machine configurations.

Three 12-way-issue machines (Section 5.1):

* **Unified** — one cluster, 4 FUs of each type, 64 registers, single 8KB
  cache.  The normalization baseline.
* **2-cluster** — 2 FUs of each type and 32 registers per cluster, 4KB
  local cache per cluster.
* **4-cluster** — 1 FU of each type and 16 registers per cluster, 2KB
  local cache per cluster.

All caches are direct-mapped, non-blocking (10 MSHR entries), 2-cycle hit;
main memory is 10 cycles.  Default buses follow the "realistic" study of
Section 5.3 (2 register buses @ 1 cycle, 1 memory bus @ 1 cycle) and can
be overridden per experiment.
"""

from __future__ import annotations

from typing import Optional

from .config import BusConfig, CacheConfig, ClusterConfig, MachineConfig

__all__ = [
    "TOTAL_CACHE_BYTES",
    "TOTAL_REGISTERS",
    "unified",
    "two_cluster",
    "four_cluster",
    "heterogeneous",
    "preset",
    "ALL_PRESETS",
]

TOTAL_CACHE_BYTES = 8 * 1024
TOTAL_REGISTERS = 64
_MAIN_MEMORY_LATENCY = 10


def _cache(n_clusters: int) -> CacheConfig:
    return CacheConfig(
        size=TOTAL_CACHE_BYTES // n_clusters,
        line_size=32,
        associativity=1,
        mshr_entries=10,
        hit_latency=2,
    )


def _machine(
    name: str,
    n_clusters: int,
    fu_per_type: int,
    register_bus: Optional[BusConfig],
    memory_bus: Optional[BusConfig],
) -> MachineConfig:
    cluster = ClusterConfig(
        n_integer=fu_per_type,
        n_fp=fu_per_type,
        n_memory=fu_per_type,
        n_registers=TOTAL_REGISTERS // n_clusters,
        cache=_cache(n_clusters),
    )
    return MachineConfig(
        name=name,
        clusters=(cluster,) * n_clusters,
        register_bus=(
            BusConfig(count=2, latency=1)
            if register_bus is None
            else register_bus
        ),
        memory_bus=(
            BusConfig(count=1, latency=1)
            if memory_bus is None
            else memory_bus
        ),
        main_memory_latency=_MAIN_MEMORY_LATENCY,
    )


def unified(
    register_bus: Optional[BusConfig] = None,
    memory_bus: Optional[BusConfig] = None,
) -> MachineConfig:
    """Single-cluster 12-way baseline (buses exist but are never needed
    for register traffic; the memory bus still connects cache to memory)."""
    return _machine("unified", 1, 4, register_bus, memory_bus)


def two_cluster(
    register_bus: Optional[BusConfig] = None,
    memory_bus: Optional[BusConfig] = None,
) -> MachineConfig:
    """2-cluster configuration: 2 FUs/type and 32 registers per cluster."""
    return _machine("2-cluster", 2, 2, register_bus, memory_bus)


def four_cluster(
    register_bus: Optional[BusConfig] = None,
    memory_bus: Optional[BusConfig] = None,
) -> MachineConfig:
    """4-cluster configuration: 1 FU/type and 16 registers per cluster."""
    return _machine("4-cluster", 4, 1, register_bus, memory_bus)


def heterogeneous(
    register_bus: Optional[BusConfig] = None,
    memory_bus: Optional[BusConfig] = None,
) -> MachineConfig:
    """A 2-cluster machine with asymmetric clusters.

    The paper assumes homogeneous clusters "for the sake of simplicity"
    but notes the techniques generalize; this preset exercises that
    generalization: a *big* cluster (3 FUs of each type, 48 registers,
    6KB cache) next to a *small* one (1 FU of each type, 16 registers,
    2KB cache), still 12-way issue with 64 registers and 8KB of L1 in
    total.
    """
    big = ClusterConfig(
        n_integer=3,
        n_fp=3,
        n_memory=3,
        n_registers=48,
        cache=CacheConfig(
            size=6 * 1024, line_size=32, associativity=1,
            mshr_entries=10, hit_latency=2,
        ),
    )
    small = ClusterConfig(
        n_integer=1,
        n_fp=1,
        n_memory=1,
        n_registers=16,
        cache=_cache(4),
    )
    return MachineConfig(
        name="heterogeneous",
        clusters=(big, small),
        register_bus=(
            BusConfig(count=2, latency=1)
            if register_bus is None
            else register_bus
        ),
        memory_bus=(
            BusConfig(count=1, latency=1)
            if memory_bus is None
            else memory_bus
        ),
        main_memory_latency=_MAIN_MEMORY_LATENCY,
    )


ALL_PRESETS = {
    "unified": unified,
    "2-cluster": two_cluster,
    "4-cluster": four_cluster,
    "heterogeneous": heterogeneous,
}


def preset(name: str, **kwargs) -> MachineConfig:
    """Look a preset up by name (``"unified"``, ``"2-cluster"``, ...)."""
    try:
        factory = ALL_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; choose from {sorted(ALL_PRESETS)}"
        ) from None
    return factory(**kwargs)
